//! Fig. 7 — inference latency vs hidden size for the recursive portion of
//! TreeLSTM at batch size 10: DyNet and Cavs latencies are dominated by
//! runtime overheads at small hidden sizes.

use cortex_backend::device::DeviceSpec;

use crate::registry::ModelId;
use crate::runner::{baseline, Baseline};
use crate::table::{ms, Table};
use crate::Scale;

/// Hidden sizes along the figure's x-axis (1 to 512, powers of two).
pub fn hidden_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
        Scale::Smoke => vec![1, 4, 16, 64],
    }
}

/// Regenerates the Fig. 7 series.
pub fn run(scale: Scale) -> String {
    let gpu = DeviceSpec::v100();
    let intel = DeviceSpec::intel_cascadelake();
    let data = ModelId::TreeLstm.dataset(10, super::SEED);
    let mut t = Table::new(
        "Fig. 7: latency vs hidden size, recursive TreeLSTM, batch 10",
        &[
            "hidden",
            "DyNet GPU (ms)",
            "Cavs GPU (ms)",
            "DyNet Intel (ms)",
            "Cavs Intel (ms)",
        ],
    );
    for h in hidden_sizes(scale) {
        let model = ModelId::TreeLstm.build_recursive_only(h);
        let dy_g = baseline(Baseline::DyNet, &model, &data, &gpu);
        let cv_g = baseline(Baseline::Cavs, &model, &data, &gpu);
        let dy_i = baseline(Baseline::DyNet, &model, &data, &intel);
        let cv_i = baseline(Baseline::Cavs, &model, &data, &intel);
        t.row_owned(vec![
            h.to_string(),
            ms(dy_g.latency_ms),
            ms(cv_g.latency_ms),
            ms(dy_i.latency_ms),
            ms(cv_i.latency_ms),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_dominate_at_small_hidden_sizes() {
        // Fig. 7's point: latency barely moves from H=1 to H=64 because
        // runtime overheads, not compute, dominate.
        let gpu = DeviceSpec::v100();
        let data = ModelId::TreeLstm.dataset(10, super::super::SEED);
        let tiny = baseline(
            Baseline::DyNet,
            &ModelId::TreeLstm.build_recursive_only(1),
            &data,
            &gpu,
        );
        let mid = baseline(
            Baseline::DyNet,
            &ModelId::TreeLstm.build_recursive_only(64),
            &data,
            &gpu,
        );
        assert!(
            mid.latency_ms < 4.0 * tiny.latency_ms,
            "latency should be overhead-dominated: {} vs {}",
            mid.latency_ms,
            tiny.latency_ms
        );
        // And the overhead share at H=1 is large.
        let overhead = tiny.breakdown.host_s + tiny.breakdown.launch_s + tiny.breakdown.memcpy_s;
        assert!(overhead > 0.5 * tiny.breakdown.total_s);
    }

    #[test]
    fn renders_a_row_per_hidden_size() {
        let out = run(Scale::Smoke);
        assert_eq!(out.lines().count(), 3 + hidden_sizes(Scale::Smoke).len());
    }
}

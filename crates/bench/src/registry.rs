//! The model and workload registry for the evaluation (Table 2).

use cortex_ds::{datasets, RecStructure};
use cortex_models::{dagrnn, mvrnn, seq, treefc, treegru, treelstm, treernn, LeafInit, Model};

use crate::Scale;

/// The five primary evaluation models (Table 2), plus the §7.4 extras.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// TreeFC on perfect binary trees of height 7.
    TreeFc,
    /// DAG-RNN on 10×10 grid DAGs.
    DagRnn,
    /// Child-sum TreeGRU on sentiment-treebank trees.
    TreeGru,
    /// Child-sum TreeLSTM on sentiment-treebank trees.
    TreeLstm,
    /// MV-RNN on sentiment-treebank trees.
    MvRnn,
    /// TreeRNN (§7.4 unrolling experiment).
    TreeRnn,
    /// SimpleTreeGRU (§7.4 refactoring experiment).
    SimpleTreeGru,
    /// Sequential LSTM (Fig. 9).
    SeqLstm,
    /// Sequential GRU (Fig. 9).
    SeqGru,
}

/// The paper's five main evaluation models, in Table 2 order.
pub const MAIN_MODELS: [ModelId; 5] = [
    ModelId::TreeFc,
    ModelId::DagRnn,
    ModelId::TreeGru,
    ModelId::TreeLstm,
    ModelId::MvRnn,
];

impl ModelId {
    /// Table 2 short name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::TreeFc => "TreeFC",
            ModelId::DagRnn => "DAG-RNN",
            ModelId::TreeGru => "TreeGRU",
            ModelId::TreeLstm => "TreeLSTM",
            ModelId::MvRnn => "MV-RNN",
            ModelId::TreeRnn => "TreeRNN",
            ModelId::SimpleTreeGru => "SimpleTreeGRU",
            ModelId::SeqLstm => "LSTM",
            ModelId::SeqGru => "GRU",
        }
    }

    /// The smaller/larger hidden sizes (hs, hl) of §7.1.
    pub fn hidden_sizes(self) -> (usize, usize) {
        match self {
            ModelId::MvRnn => (64, 128),
            _ => (256, 512),
        }
    }

    /// The hs hidden size under a scale.
    pub fn hs(self, scale: Scale) -> usize {
        scale.hidden(self.hidden_sizes().0)
    }

    /// The hl hidden size under a scale.
    pub fn hl(self, scale: Scale) -> usize {
        scale.hidden(self.hidden_sizes().1)
    }

    /// Builds the model at hidden size `h`.
    ///
    /// Leaf initialization follows the paper's protocol: embeddings for
    /// the full models, zero (constant-propagated) when an experiment
    /// isolates the recursive portion — see [`ModelId::build_recursive_only`].
    pub fn build(self, h: usize) -> Model {
        match self {
            ModelId::TreeFc => treefc::tree_fc(h, LeafInit::Embedding),
            ModelId::DagRnn => dagrnn::dag_rnn(h),
            ModelId::TreeGru => treegru::tree_gru(h, LeafInit::Embedding),
            ModelId::TreeLstm => treelstm::tree_lstm(h, LeafInit::Embedding),
            ModelId::MvRnn => mvrnn::mv_rnn(h),
            ModelId::TreeRnn => treernn::tree_rnn(h, LeafInit::Embedding),
            ModelId::SimpleTreeGru => treegru::simple_tree_gru(h, LeafInit::Embedding),
            ModelId::SeqLstm => seq::seq_lstm(h),
            ModelId::SeqGru => seq::seq_gru(h),
        }
    }

    /// Builds the recursive-portion-only variant (zero leaves): the
    /// protocol of footnote 3 / Fig. 7 / Table 4.
    pub fn build_recursive_only(self, h: usize) -> Model {
        match self {
            ModelId::TreeFc => treefc::tree_fc(h, LeafInit::Zero),
            ModelId::TreeGru => treegru::tree_gru(h, LeafInit::Zero),
            ModelId::TreeLstm => treelstm::tree_lstm(h, LeafInit::Zero),
            ModelId::TreeRnn => treernn::tree_rnn(h, LeafInit::Zero),
            ModelId::SimpleTreeGru => treegru::simple_tree_gru(h, LeafInit::Zero),
            other => other.build(h),
        }
    }

    /// The Table 2 dataset for this model at the given batch size.
    pub fn dataset(self, batch_size: usize, seed: u64) -> RecStructure {
        match self {
            ModelId::TreeFc => {
                datasets::batch_of(|s| datasets::perfect_binary_tree(7, s), batch_size, seed)
            }
            ModelId::DagRnn => {
                datasets::batch_of(|s| datasets::grid_dag(10, 10, s), batch_size, seed)
            }
            ModelId::TreeGru
            | ModelId::TreeLstm
            | ModelId::MvRnn
            | ModelId::TreeRnn
            | ModelId::SimpleTreeGru => {
                let corpus = datasets::sentiment_treebank(batch_size, seed);
                let refs: Vec<&RecStructure> = corpus.iter().collect();
                RecStructure::merge(&refs)
            }
            ModelId::SeqLstm | ModelId::SeqGru => {
                datasets::batch_of(|s| datasets::sequence(100, s), batch_size, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_datasets_have_documented_shapes() {
        let t = ModelId::TreeFc.dataset(1, 0);
        assert_eq!(t.num_nodes(), 255, "perfect binary tree of height 7");
        let d = ModelId::DagRnn.dataset(1, 0);
        assert_eq!(d.num_nodes(), 100, "10x10 grid");
        let s = ModelId::SeqLstm.dataset(1, 0);
        assert_eq!(s.num_nodes(), 100, "length-100 sequence");
        let b = ModelId::TreeLstm.dataset(10, 0);
        assert_eq!(b.roots().len(), 10, "batch of 10 sentences");
    }

    #[test]
    fn hidden_sizes_follow_paper() {
        assert_eq!(ModelId::TreeLstm.hidden_sizes(), (256, 512));
        assert_eq!(ModelId::MvRnn.hidden_sizes(), (64, 128));
        assert_eq!(ModelId::TreeLstm.hs(Scale::Smoke), 32);
    }

    #[test]
    fn all_models_build_at_small_hidden() {
        for id in MAIN_MODELS {
            let m = id.build(8);
            assert_eq!(m.name, id.name());
            assert!(m.graph.validate().is_ok());
        }
    }
}

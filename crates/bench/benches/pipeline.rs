//! Criterion micro-benches of the compiler pipeline stages: the
//! real-wall-clock components of the system (linearization §7.5, RA
//! lowering §4, executor kernels, and the Appendix-B leaf-check ablation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cortex_backend::{exec, params::Params};
use cortex_bench_harness::registry::ModelId;
use cortex_core::ra::RaSchedule;
use cortex_ds::datasets;
use cortex_ds::linearizer::Linearizer;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

fn bench_pipeline(c: &mut Criterion) {
    // Linearization over the Table 2 datasets (the §7.5 measurement).
    for (name, data) in [
        ("treebank_bs10", ModelId::TreeLstm.dataset(10, 1)),
        ("grids_bs10", ModelId::DagRnn.dataset(10, 1)),
        ("perfect_trees_bs10", ModelId::TreeFc.dataset(10, 1)),
    ] {
        c.bench_function(&format!("linearize_{name}"), |b| {
            b.iter(|| Linearizer::new().linearize(&data).unwrap())
        });
    }

    // RA lowering (compile time) for the heaviest model.
    let model = ModelId::TreeLstm.build(64);
    c.bench_function("lower_treelstm", |b| {
        b.iter(|| model.lower(&RaSchedule::default()).unwrap())
    });

    // End-to-end execution of the fused program (the "generated code").
    let program = model.lower(&RaSchedule::default()).unwrap();
    let data = ModelId::TreeLstm.dataset(4, 2);
    let lin = Linearizer::new().linearize(&data).unwrap();
    c.bench_function("execute_treelstm_h64_bs4", |b| {
        b.iter_batched(
            || (),
            |()| exec::execute(&program, &lin, &model.params, true).unwrap(),
            BatchSize::SmallInput,
        )
    });

    // Appendix B ablation: leaf check via numbering vs memory load. The
    // paper's claim is about *generated kernels*, where the checked node
    // ids arrive through indirections (`left[node]`, batch gathers) and
    // the `num_children` load misses cache; a big forest probed in
    // scattered order reproduces that regime (a tiny L1-resident array
    // probed sequentially would favor the load and measure nothing real).
    let forest = datasets::batch_of(|s| datasets::random_binary_tree(40, s), 2_000, 3);
    let lin = Linearizer::new().linearize(&forest).unwrap();
    let n = lin.num_nodes() as u32;
    let probes: Vec<u32> =
        (0..n).map(|i| i.wrapping_mul(2_654_435_761) % n).collect();
    c.bench_function("leaf_check_numbering", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &p in &probes {
                acc += u32::from(lin.is_leaf(p));
            }
            acc
        })
    });
    c.bench_function("leaf_check_by_load", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &p in &probes {
                acc += u32::from(lin.is_leaf_by_load(p));
            }
            acc
        })
    });

    // Keep an unused Params import meaningful: parameter initialization
    // cost (table construction for big embeddings).
    c.bench_function("init_params_treegru_h64", |b| {
        b.iter(|| {
            let m = ModelId::TreeGru.build(64);
            let p: &Params = &m.params;
            p.total_bytes()
        })
    });
}

criterion_group! {
    name = pipeline;
    config = config();
    targets = bench_pipeline
}
criterion_main!(pipeline);

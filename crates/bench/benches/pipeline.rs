//! Micro-benches of the compiler pipeline stages: the real-wall-clock
//! components of the system (linearization §7.5, RA lowering §4, executor
//! kernels, and the Appendix-B leaf-check ablation).

use cortex_backend::{exec, params::Params};
use cortex_bench_harness::registry::ModelId;
use cortex_bench_harness::timing::Bench;
use cortex_core::ra::RaSchedule;
use cortex_ds::datasets;
use cortex_ds::linearizer::Linearizer;

fn main() {
    let mut bench = Bench::default();

    // Linearization over the Table 2 datasets (the §7.5 measurement).
    for (name, data) in [
        ("treebank_bs10", ModelId::TreeLstm.dataset(10, 1)),
        ("grids_bs10", ModelId::DagRnn.dataset(10, 1)),
        ("perfect_trees_bs10", ModelId::TreeFc.dataset(10, 1)),
    ] {
        bench.run(&format!("linearize_{name}"), || {
            Linearizer::new().linearize(&data).unwrap()
        });
    }

    // RA lowering (compile time) for the heaviest model.
    let model = ModelId::TreeLstm.build(64);
    bench.run("lower_treelstm", || {
        model.lower(&RaSchedule::default()).unwrap()
    });

    // End-to-end execution of the fused program (the "generated code").
    let program = model.lower(&RaSchedule::default()).unwrap();
    let data = ModelId::TreeLstm.dataset(4, 2);
    let lin = Linearizer::new().linearize(&data).unwrap();
    bench.run("execute_treelstm_h64_bs4", || {
        exec::execute(&program, &lin, &model.params, true).unwrap()
    });

    // Same pipeline through a reusable engine (compiled kernels, wave
    // plans, packed weights and scratch cached across runs).
    let mut engine = exec::Engine::new(&program);
    bench.run("engine_treelstm_h64_bs4", || {
        engine.execute(&lin, &model.params, true).unwrap()
    });

    // Appendix B ablation: leaf check via numbering vs memory load. The
    // paper's claim is about *generated kernels*, where the checked node
    // ids arrive through indirections (`left[node]`, batch gathers) and
    // the `num_children` load misses cache; a big forest probed in
    // scattered order reproduces that regime (a tiny L1-resident array
    // probed sequentially would favor the load and measure nothing real).
    let forest = datasets::batch_of(|s| datasets::random_binary_tree(40, s), 2_000, 3);
    let lin = Linearizer::new().linearize(&forest).unwrap();
    let n = lin.num_nodes() as u32;
    let probes: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2_654_435_761) % n).collect();
    bench.run("leaf_check_numbering", || {
        let mut acc = 0u32;
        for &p in &probes {
            acc += u32::from(lin.is_leaf(p));
        }
        acc
    });
    bench.run("leaf_check_by_load", || {
        let mut acc = 0u32;
        for &p in &probes {
            acc += u32::from(lin.is_leaf_by_load(p));
        }
        acc
    });

    // Parameter initialization cost (table construction for big
    // embeddings).
    bench.run("init_params_treegru_h64", || {
        let m = ModelId::TreeGru.build(64);
        let p: &Params = &m.params;
        p.total_bytes()
    });
}

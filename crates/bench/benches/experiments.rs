//! Criterion benches wrapping every experiment regenerator at smoke scale
//! (hidden sizes ÷8), so `cargo bench` re-derives each table and figure
//! with statistically sampled timings while staying fast.

use criterion::{criterion_group, criterion_main, Criterion};

use cortex_bench_harness::experiments as e;
use cortex_bench_harness::Scale;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

fn bench_experiments(c: &mut Criterion) {
    let s = Scale::Smoke;
    c.bench_function("fig6_speedup_over_pytorch", |b| b.iter(|| e::fig6::run(s)));
    c.bench_function("fig7_latency_vs_hidden", |b| b.iter(|| e::fig7::run(s)));
    c.bench_function("fig9_vs_grnn", |b| b.iter(|| e::fig9::run(s)));
    c.bench_function("fig10a_fusion_spec_persist", |b| b.iter(|| e::fig10::run_a(s)));
    c.bench_function("fig10b_unrolling", |b| b.iter(|| e::fig10::run_b(s)));
    c.bench_function("fig10c_refactoring", |b| b.iter(|| e::fig10::run_c(s)));
    c.bench_function("fig12_peak_memory", |b| b.iter(|| e::fig12::run(s)));
    c.bench_function("table4_cavs_vs_cortex", |b| b.iter(|| e::table4::run(s)));
    c.bench_function("table5_dynet_vs_cortex", |b| b.iter(|| e::table5::run(s)));
    c.bench_function("table6_activity_breakdown", |b| b.iter(|| e::table6::run(s)));
    c.bench_function("sec75_linearization", |b| b.iter(|| e::linearize::run(s)));
    c.bench_function("appc_roofline", |b| b.iter(|| e::roofline::run(s)));
}

criterion_group! {
    name = experiments;
    config = config();
    targets = bench_experiments
}
criterion_main!(experiments);

//! Benches wrapping every experiment regenerator at smoke scale (hidden
//! sizes ÷8), so `cargo bench` re-derives each table and figure with
//! sampled timings while staying fast.

use cortex_bench_harness::experiments as e;
use cortex_bench_harness::timing::Bench;
use cortex_bench_harness::Scale;

fn main() {
    let s = Scale::Smoke;
    let mut b = Bench::new(5, std::time::Duration::from_millis(120));
    b.run("fig6_speedup_over_pytorch", || e::fig6::run(s));
    b.run("fig7_latency_vs_hidden", || e::fig7::run(s));
    b.run("fig9_vs_grnn", || e::fig9::run(s));
    b.run("fig10a_fusion_spec_persist", || e::fig10::run_a(s));
    b.run("fig10b_unrolling", || e::fig10::run_b(s));
    b.run("fig10c_refactoring", || e::fig10::run_c(s));
    b.run("fig12_peak_memory", || e::fig12::run(s));
    b.run("table4_cavs_vs_cortex", || e::table4::run(s));
    b.run("table5_dynet_vs_cortex", || e::table5::run(s));
    b.run("table6_activity_breakdown", || e::table6::run(s));
    b.run("sec75_linearization", || e::linearize::run(s));
    b.run("appc_roofline", || e::roofline::run(s));
}

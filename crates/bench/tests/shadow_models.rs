//! Soundness suite for the static effect summaries: with the `checked`
//! feature, the runtime records every wave gather, store, and fused
//! row-pass access into a shadow state and asserts it stays inside what
//! the static analyses claimed (gathered cells are never stored by the
//! same wave; fused row passes touch only their own row). Runs every
//! Table 2 model under the four Fig. 10a ablation schedules on both
//! runtimes (pc and interp oracle) — any violation panics the test.
#![cfg(feature = "checked")]

use cortex_backend::exec::{Engine, ExecOptions};
use cortex_bench_harness::experiments::fig10::ablation_schedules;
use cortex_bench_harness::registry::ModelId;
use cortex_ds::linearizer::Linearizer;

const ALL_MODELS: [ModelId; 9] = [
    ModelId::TreeFc,
    ModelId::DagRnn,
    ModelId::TreeGru,
    ModelId::TreeLstm,
    ModelId::MvRnn,
    ModelId::TreeRnn,
    ModelId::SimpleTreeGru,
    ModelId::SeqLstm,
    ModelId::SeqGru,
];

#[test]
fn every_model_and_schedule_runs_with_zero_shadow_violations() {
    assert!(cortex_backend::exec::shadow_checking_enabled());
    let mut checks = 0u64;
    for id in ALL_MODELS {
        let model = id.build(16);
        let lin = Linearizer::new().linearize(&id.dataset(2, 7)).unwrap();
        for (tag, schedule) in ablation_schedules() {
            let program = model
                .lower(&schedule)
                .unwrap_or_else(|e| panic!("{} [{tag}]: lower failed: {e}", model.name));
            for opts in [ExecOptions::default(), ExecOptions::interpreted()] {
                let mut engine = Engine::with_options(&program, opts);
                engine
                    .execute(&lin, &model.params, true)
                    .unwrap_or_else(|e| panic!("{} [{tag}]: run failed: {e}", model.name));
                checks += engine.stats().shadow_checks;
            }
        }
    }
    // The suite is vacuous if the hooks never fired: the batched models'
    // default-schedule runs must have recorded wave accesses.
    assert!(checks > 0, "shadow hooks recorded no accesses at all");
}

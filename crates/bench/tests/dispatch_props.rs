//! Property test for the direct-threaded dispatch tier: specializing
//! the verified plan into closure code must be completely unobservable.
//! For every Table 2 model, under every Fig. 10 ablation schedule, over
//! random forests, a threaded engine (the default), a pc-dispatch
//! engine (`threaded: false`) and the AST-walking interp oracle must
//! produce bit-identical outputs AND bit-identical `Profile` counters —
//! both solo and through a depth-16 serving batch, where the plan
//! runtimes park and resume at super-wave flushes.

use cortex_backend::exec::{Engine, ExecOptions};
use cortex_bench_harness::experiments::fig10::ablation_schedules;
use cortex_bench_harness::registry::ModelId;
use cortex_ds::linearizer::Linearizer;
use cortex_rng::Rng;

const ALL_MODELS: [ModelId; 9] = [
    ModelId::TreeFc,
    ModelId::DagRnn,
    ModelId::TreeGru,
    ModelId::TreeLstm,
    ModelId::MvRnn,
    ModelId::TreeRnn,
    ModelId::SimpleTreeGru,
    ModelId::SeqLstm,
    ModelId::SeqGru,
];

#[test]
fn threaded_tier_is_unobservable_across_models_schedules_and_batching() {
    let mut rng = Rng::new(0x7D15);
    let pc_opts = ExecOptions {
        threaded: false,
        ..ExecOptions::default()
    };
    for id in ALL_MODELS {
        let model = id.build(10);
        for (sched, schedule) in ablation_schedules() {
            let ctx = format!("{} [{sched}]", model.name);
            let program = model
                .lower(&schedule)
                .unwrap_or_else(|e| panic!("{ctx}: lower failed: {e}"));
            let mut threaded = Engine::new(&program);
            let mut pc = Engine::with_options(&program, pc_opts);
            let mut oracle = Engine::with_options(&program, ExecOptions::interpreted());

            assert!(
                threaded.plan_stats().threaded_ops > 0,
                "{ctx}: default engine must specialize"
            );
            assert_eq!(
                pc.plan_stats().threaded_ops,
                0,
                "{ctx}: pc engine must not specialize"
            );

            // Solo over a random forest.
            let seed = rng.next_u64();
            let structure = id.dataset(rng.range_usize(1, 3), seed);
            let lin = Linearizer::new()
                .linearize(&structure)
                .unwrap_or_else(|e| panic!("{ctx}: linearize failed: {e}"));
            let (out_t, prof_t) = threaded.execute(&lin, &model.params, true).unwrap();
            let (out_p, prof_p) = pc.execute(&lin, &model.params, true).unwrap();
            let (out_o, prof_o) = oracle.execute(&lin, &model.params, true).unwrap();
            assert_eq!(prof_p, prof_o, "{ctx} (seed {seed}): pc vs oracle Profile");
            assert_eq!(
                prof_t, prof_o,
                "{ctx} (seed {seed}): threaded vs oracle Profile"
            );
            assert_eq!(out_t.len(), out_o.len(), "{ctx}: output set");
            for (tid, t_o) in &out_o {
                assert_eq!(
                    out_p.get(tid),
                    Some(t_o),
                    "{ctx} (seed {seed}): pc tensor {tid:?}"
                );
                assert_eq!(
                    out_t.get(tid),
                    Some(t_o),
                    "{ctx} (seed {seed}): threaded tensor {tid:?}"
                );
            }

            // Depth-16 serving batch: the threaded tier must park and
            // resume (a plain value: step index + loop records) exactly
            // where the pc tier does.
            let batch_seed = rng.next_u64();
            let structures: Vec<_> = (0..16)
                .map(|i| id.dataset(1, batch_seed.wrapping_add(i)))
                .collect();
            let lins: Vec<_> = structures
                .iter()
                .map(|s| Linearizer::new().linearize(s).unwrap())
                .collect();
            let refs: Vec<&_> = lins.iter().collect();
            let many_t = threaded.execute_many(&refs, &model.params, true).unwrap();
            let many_p = pc.execute_many(&refs, &model.params, true).unwrap();
            let many_o = oracle.execute_many(&refs, &model.params, true).unwrap();
            for (r, (out_o, prof_o)) in many_o.iter().enumerate() {
                assert_eq!(&many_p[r].1, prof_o, "{ctx}: request {r} pc Profile");
                assert_eq!(&many_t[r].1, prof_o, "{ctx}: request {r} threaded Profile");
                for (tid, t_o) in out_o {
                    assert_eq!(
                        many_p[r].0.get(tid),
                        Some(t_o),
                        "{ctx}: request {r} pc tensor {tid:?}"
                    );
                    assert_eq!(
                        many_t[r].0.get(tid),
                        Some(t_o),
                        "{ctx}: request {r} threaded tensor {tid:?}"
                    );
                }
            }

            let st = threaded.stats();
            assert!(
                st.threaded_ops > 0,
                "{ctx}: threaded stats must report table"
            );
            assert_eq!(pc.stats().threaded_ops, 0, "{ctx}: pc stats stay zero");
        }
    }
}

//! Acceptance gate for the compile-pipeline verifier: every Table 2
//! model's lowered ExecPlan passes `Program::verify()` with zero
//! findings — at engine build and again after every `set_options`
//! rebuild — and admits its own Table 2 dataset through intake
//! validation.

use cortex_backend::exec::{Engine, ExecOptions};
use cortex_bench_harness::registry::ModelId;
use cortex_ds::linearizer::Linearizer;

const ALL_MODELS: [ModelId; 9] = [
    ModelId::TreeFc,
    ModelId::DagRnn,
    ModelId::TreeGru,
    ModelId::TreeLstm,
    ModelId::MvRnn,
    ModelId::TreeRnn,
    ModelId::SimpleTreeGru,
    ModelId::SeqLstm,
    ModelId::SeqGru,
];

#[test]
fn every_model_plan_verifies_at_build_and_after_rebuilds() {
    for id in ALL_MODELS {
        let model = id.build(16);
        let program = model
            .lower(&cortex_core::ra::RaSchedule::default())
            .unwrap_or_else(|e| panic!("{}: lower failed: {e}", model.name));
        let mut engine = Engine::new(&program);
        assert_eq!(
            engine.verified(),
            Ok(()),
            "{}: fresh build must verify",
            model.name
        );
        assert!(
            engine.plan_arity() <= model.max_children,
            "{}: plan arity {} exceeds the model's max_children {}",
            model.name,
            engine.plan_arity(),
            model.max_children
        );
        // Every option change that rebuilds the plan must re-verify it.
        for opts in [
            ExecOptions::generic(),
            ExecOptions::unstacked(),
            ExecOptions::default(),
        ] {
            engine.set_options(opts);
            assert_eq!(
                engine.verified(),
                Ok(()),
                "{}: rebuild under {opts:?} must verify",
                model.name
            );
        }
    }
}

/// The guarded/exact split the arity-intake check relies on: DagRnn
/// Select-guards every child read (any arity admissible); every other
/// model reads its child slots unguarded and so requires full arity on
/// internal nodes. A model silently changing camp would change which
/// inputs the engine refuses.
#[test]
fn required_arity_matches_each_models_guardedness() {
    for id in ALL_MODELS {
        let model = id.build(16);
        let program = model
            .lower(&cortex_core::ra::RaSchedule::default())
            .unwrap();
        let engine = Engine::new(&program);
        let expected = match id {
            ModelId::DagRnn => 0,
            _ => engine.plan_arity(),
        };
        assert_eq!(
            engine.plan_required_arity(),
            expected,
            "{}: unexpected unguarded child-read arity",
            model.name
        );
    }
}

#[test]
fn every_model_admits_its_own_dataset() {
    for id in ALL_MODELS {
        let model = id.build(16);
        let program = model
            .lower(&cortex_core::ra::RaSchedule::default())
            .unwrap();
        let engine = Engine::new(&program);
        let structure = id.dataset(2, 7);
        let lin = Linearizer::new()
            .linearize(&structure)
            .unwrap_or_else(|e| panic!("{}: linearize failed: {e}", model.name));
        engine
            .validate_input(&lin)
            .unwrap_or_else(|e| panic!("{}: own dataset refused: {e}", model.name));
        assert!(
            engine.footprint(&lin) > 0,
            "{}: footprint estimate must be positive",
            model.name
        );
    }
}

//! CI gates on the static-analysis results: the parallel-safety
//! certifier must certify the wave GEMM surfaces of the headline
//! batched models as `RowDisjoint` (the contract the multicore roadmap
//! item consumes), and the analysis counters must flow end to end from
//! `PlanStats` into `Engine::stats()`.

use cortex_backend::exec::Engine;
use cortex_bench_harness::registry::ModelId;
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::Linearizer;

const ALL_MODELS: [ModelId; 9] = [
    ModelId::TreeFc,
    ModelId::DagRnn,
    ModelId::TreeGru,
    ModelId::TreeLstm,
    ModelId::MvRnn,
    ModelId::TreeRnn,
    ModelId::SimpleTreeGru,
    ModelId::SeqLstm,
    ModelId::SeqGru,
];

#[test]
fn wave_surfaces_of_batched_models_certify_row_disjoint() {
    for id in ALL_MODELS {
        let model = id.build(16);
        let program = model
            .lower(&RaSchedule::default())
            .unwrap_or_else(|e| panic!("{}: lower failed: {e}", model.name));
        let plan = Engine::new(&program).plan_stats();
        println!(
            "{:<16} dead_ops_eliminated={:<3} slots_coalesced={:<3} par_safe_waves={:<2} \
             par_unsafe_waves={}",
            model.name,
            plan.dead_ops_eliminated,
            plan.slots_coalesced,
            plan.par_safe_waves,
            plan.par_unsafe_waves
        );
        if matches!(id, ModelId::TreeLstm | ModelId::TreeGru | ModelId::SeqLstm) {
            assert!(
                plan.par_safe_waves > 0,
                "{}: the wave GEMM surfaces must carry RowDisjoint certificates",
                model.name
            );
        }
    }
}

#[test]
fn analysis_counters_flow_into_engine_stats() {
    for id in ALL_MODELS {
        let model = id.build(16);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut engine = Engine::new(&program);
        let lin = Linearizer::new().linearize(&id.dataset(2, 7)).unwrap();
        engine.execute(&lin, &model.params, true).unwrap();
        let stats = engine.stats();
        let plan = engine.plan_stats();
        assert_eq!(
            stats.dead_ops_eliminated, plan.dead_ops_eliminated as u64,
            "{}",
            model.name
        );
        assert_eq!(
            stats.slots_coalesced, plan.slots_coalesced as u64,
            "{}",
            model.name
        );
        assert_eq!(
            stats.par_safe_waves, plan.par_safe_waves as u64,
            "{}",
            model.name
        );
        assert_eq!(
            stats.par_unsafe_waves,
            stats.par_unsafe_by_reason.iter().sum::<u64>(),
            "{}: the reason histogram must partition par_unsafe_waves",
            model.name
        );
    }
}

//! Property test for the dataflow optimizer: dead-`Let` elimination and
//! slot coalescing must be completely unobservable. For every Table 2
//! model over random forests, an optimized engine, an optimizer-off
//! engine, and the AST-walking interp oracle must produce bit-identical
//! outputs AND bit-identical `Profile` counters — the optimizer may
//! only remove work the accounting never saw.

use cortex_backend::exec::{Engine, ExecOptions};
use cortex_bench_harness::registry::ModelId;
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::Linearizer;
use cortex_rng::Rng;

const ALL_MODELS: [ModelId; 9] = [
    ModelId::TreeFc,
    ModelId::DagRnn,
    ModelId::TreeGru,
    ModelId::TreeLstm,
    ModelId::MvRnn,
    ModelId::TreeRnn,
    ModelId::SimpleTreeGru,
    ModelId::SeqLstm,
    ModelId::SeqGru,
];

#[test]
fn optimizer_is_unobservable_across_models_and_random_forests() {
    let mut rng = Rng::new(0xD01F);
    for id in ALL_MODELS {
        let model = id.build(16);
        let program = model
            .lower(&RaSchedule::default())
            .unwrap_or_else(|e| panic!("{}: lower failed: {e}", model.name));
        let mut optimized = Engine::new(&program);
        let mut plain = Engine::with_options(
            &program,
            ExecOptions {
                optimize: false,
                ..ExecOptions::default()
            },
        );
        let mut oracle = Engine::with_options(&program, ExecOptions::interpreted());
        for _ in 0..3 {
            let batch = rng.range_usize(1, 4);
            let seed = rng.next_u64();
            let structure = id.dataset(batch, seed);
            let lin = Linearizer::new()
                .linearize(&structure)
                .unwrap_or_else(|e| panic!("{}: linearize failed: {e}", model.name));
            let (got, prof) = optimized
                .execute(&lin, &model.params, true)
                .unwrap_or_else(|e| panic!("{}: optimized run failed: {e}", model.name));
            let (want, want_prof) = plain
                .execute(&lin, &model.params, true)
                .unwrap_or_else(|e| panic!("{}: plain run failed: {e}", model.name));
            let (oracle_out, oracle_prof) = oracle
                .execute(&lin, &model.params, true)
                .unwrap_or_else(|e| panic!("{}: oracle run failed: {e}", model.name));
            assert_eq!(
                prof, want_prof,
                "{} (seed {seed}): optimizer changed the Profile",
                model.name
            );
            assert_eq!(
                prof, oracle_prof,
                "{} (seed {seed}): pc runtime disagrees with the oracle",
                model.name
            );
            assert_eq!(got.len(), want.len(), "{}: output set", model.name);
            for (tid, t) in &got {
                assert_eq!(
                    Some(t),
                    want.get(tid),
                    "{} (seed {seed}): optimizer changed tensor {tid:?}",
                    model.name
                );
                assert_eq!(
                    Some(t),
                    oracle_out.get(tid),
                    "{} (seed {seed}): oracle disagrees on tensor {tid:?}",
                    model.name
                );
            }
        }
    }
}

//! Model persistence feasibility (Appendix D: register pressure).
//!
//! Persisting model parameters on-chip (Persistent RNNs, GRNN, DeepCPU)
//! requires them to fit in the device's register/scratchpad budget.
//! Cortex-generated kernels are large — fusion, peeling and unrolling all
//! increase register pressure — so some schedule combinations preclude
//! persistence. Appendix D reports exactly this: *"recursive unrolling
//! precludes us from using persistence for the TreeLSTM and TreeRNN
//! models"*, and loop peeling and persistence cannot be combined for
//! TreeLSTM.
//!
//! This module reproduces that interaction with an explicit budget model:
//! required on-chip bytes = parameter bytes × a pressure multiplier that
//! grows with unrolling and peeling.

use std::collections::HashSet;

use cortex_core::expr::{BoolExpr, TensorId, ValExpr};
use cortex_core::ilir::{IlirProgram, LaunchPattern, Stmt, StorageClass};

use crate::device::DeviceSpec;

/// Extra register pressure per unrolled recursion level.
const UNROLL_PRESSURE_PER_LEVEL: f64 = 0.25;
/// Extra register pressure from loop peeling (duplicated loop bodies).
const PEEL_PRESSURE: f64 = 0.15;

/// The outcome of the persistence feasibility check.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistDecision {
    /// Whether the schedule requested persistence.
    pub requested: bool,
    /// Whether the parameters (at the schedule's register pressure) fit.
    pub feasible: bool,
    /// Parameter bytes that would be persisted.
    pub param_bytes: u64,
    /// Bytes required once pressure multipliers are applied.
    pub required_bytes: u64,
    /// Human-readable explanation when infeasible.
    pub reason: Option<String>,
}

impl PersistDecision {
    /// Whether persistence is actually in effect for a run.
    pub fn active(&self) -> bool {
        self.requested && self.feasible
    }
}

/// Bytes of `Param` storage declared by a program.
pub fn param_bytes(program: &IlirProgram) -> u64 {
    program
        .declared_tensors()
        .filter(|t| t.class == StorageClass::Param)
        .map(|t| t.len(0, 0) as u64 * 4) // params are fully static
        .sum()
}

/// Bytes of *recurrent* parameters: those read inside the wave loops (or
/// per-batch kernels) and therefore re-read every iteration without
/// persistence. One-shot parameters (embedding tables gathered once in
/// leaf/precompute kernels) are excluded — persistent-RNN systems pin
/// only the recurrent weights.
pub fn recurrent_param_bytes(program: &IlirProgram) -> u64 {
    let mut recurrent: HashSet<TensorId> = HashSet::new();
    for kernel in &program.kernels {
        let in_wave_kernel = kernel.launch == LaunchPattern::PerInternalBatch;
        for s in &kernel.body {
            collect_wave_param_reads(s, in_wave_kernel, program, &mut recurrent);
        }
    }
    recurrent
        .iter()
        .filter_map(|id| program.tensor_opt(*id))
        .filter(|t| t.class == StorageClass::Param)
        .map(|t| t.len(0, 0) as u64 * 4)
        .sum()
}

fn collect_wave_param_reads(
    s: &Stmt,
    in_wave: bool,
    program: &IlirProgram,
    out: &mut HashSet<TensorId>,
) {
    match s {
        Stmt::For { dim, body, .. } => {
            let in_wave = in_wave || matches!(dim, Some(d) if d.0 == "d_all_batches");
            for st in body {
                collect_wave_param_reads(st, in_wave, program, out);
            }
        }
        Stmt::Let { body, .. } => {
            for st in body {
                collect_wave_param_reads(st, in_wave, program, out);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for st in then_branch.iter().chain(else_branch) {
                collect_wave_param_reads(st, in_wave, program, out);
            }
        }
        Stmt::Store { value, .. } => {
            if in_wave {
                collect_value_reads(value, out);
            }
        }
        Stmt::Barrier => {}
    }
    let _ = program;
}

fn collect_value_reads(e: &ValExpr, out: &mut HashSet<TensorId>) {
    match e {
        ValExpr::Const(_) => {}
        ValExpr::Load { tensor, .. } => {
            out.insert(*tensor);
        }
        ValExpr::Unary(_, a) => collect_value_reads(a, out),
        ValExpr::Bin(_, a, b) => {
            collect_value_reads(a, out);
            collect_value_reads(b, out);
        }
        ValExpr::Sum { body, .. } => collect_value_reads(body, out),
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            let _ = cond as &BoolExpr;
            collect_value_reads(then, out);
            collect_value_reads(otherwise, out);
        }
    }
}

/// Decides whether model persistence is feasible for `program` on `device`.
pub fn check_persistence(program: &IlirProgram, device: &DeviceSpec) -> PersistDecision {
    let requested = program.meta.schedule.persist;
    let bytes = recurrent_param_bytes(program);
    let mut pressure = 1.0f64;
    if let Some(depth) = program.meta.schedule.unroll {
        pressure += UNROLL_PRESSURE_PER_LEVEL * (depth.saturating_sub(1)) as f64;
    }
    if program.meta.schedule.peel.is_some() {
        pressure += PEEL_PRESSURE;
    }
    let required = (bytes as f64 * pressure).ceil() as u64;
    let feasible = required <= device.onchip_bytes;
    let reason = if requested && !feasible {
        Some(format!(
            "requires {required} on-chip bytes ({bytes} param bytes × {pressure:.2} register \
             pressure) but {} provides {}",
            device.name, device.onchip_bytes
        ))
    } else {
        None
    };
    PersistDecision {
        requested,
        feasible,
        param_bytes: bytes,
        required_bytes: required,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_core::lower::{lower, StructureInfo};
    use cortex_core::ra::{RaGraph, RaSchedule};

    /// A model with `n_mats` H×H recursive weight matrices — a stand-in
    /// for gate counts (4 for LSTM, 3 for GRU).
    fn model_with_params(h: usize, n_mats: usize, schedule: &RaSchedule) -> IlirProgram {
        let mut g = RaGraph::new();
        let ws: Vec<_> = (0..n_mats)
            .map(|i| g.input(&format!("U{i}"), &[h, h]))
            .collect();
        let ph = g.placeholder("h_ph", &[h]);
        let hsum = g.compute("hsum", &[h], |c| {
            c.read(ph, &[c.node().child(0), c.axis(0)])
                .add(c.read(ph, &[c.node().child(1), c.axis(0)]))
        });
        // Chain the matvecs so every weight matrix is live in the
        // recursion body (dead operators are pruned by the cone analysis).
        let mut last = hsum;
        for w in &ws {
            last = g.compute("mv", &[h], |c| {
                let i = c.axis(0);
                let node = c.node();
                c.sum(h, |c, k| {
                    c.read(*w, &[i.clone(), k.clone()])
                        .mul(c.read(last, &[node.clone(), k]))
                })
            });
        }
        let rec = g.compute("rec", &[h], |c| c.read(last, &[c.node(), c.axis(0)]).tanh());
        let zero = g.compute("zero", &[h], |_| cortex_core::expr::ValExpr::Const(0.0));
        let body = g.if_then_else("body", zero, rec).unwrap();
        let out = g.recursion(ph, body).unwrap();
        g.mark_output(out);
        lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap()
    }

    #[test]
    fn lstm_sized_params_persist_at_hs() {
        // 4 × 256×256×4B = 1 MB < the V100 budget.
        let p = model_with_params(256, 4, &RaSchedule::default());
        let d = check_persistence(&p, &DeviceSpec::v100());
        assert_eq!(d.param_bytes, 4 * 256 * 256 * 4);
        assert!(d.active(), "{:?}", d.reason);
    }

    #[test]
    fn unrolling_precludes_persistence_for_lstm_sized_models() {
        // Appendix D: unrolling + persistence do not fit for TreeLSTM.
        let s = RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        };
        let p = model_with_params(256, 4, &s);
        let d = check_persistence(&p, &DeviceSpec::v100());
        assert!(d.requested && !d.feasible, "{d:?}");
    }

    #[test]
    fn peeling_precludes_persistence_for_lstm_sized_models() {
        // Appendix D: peeling + persistence cannot combine for TreeLSTM.
        let s = RaSchedule {
            peel: Some(4),
            ..RaSchedule::default()
        };
        let p = model_with_params(256, 4, &s);
        let d = check_persistence(&p, &DeviceSpec::v100());
        assert!(!d.feasible, "{d:?}");
    }

    #[test]
    fn smaller_models_survive_unrolling() {
        // TreeRNN-sized (no weight matrices beyond a small one).
        let s = RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        };
        let p = model_with_params(64, 1, &s);
        let d = check_persistence(&p, &DeviceSpec::v100());
        assert!(d.active(), "{:?}", d.reason);
    }

    #[test]
    fn large_hidden_sizes_fall_out_of_budget() {
        // hl = 512: 4 MB of gates does not fit the V100 budget.
        let p = model_with_params(512, 4, &RaSchedule::default());
        let d = check_persistence(&p, &DeviceSpec::v100());
        assert!(!d.feasible);
        // CPUs have larger private caches: DeepCPU-style persistence fits.
        let d = check_persistence(&p, &DeviceSpec::intel_cascadelake());
        assert!(d.feasible);
    }

    #[test]
    fn unrequested_persistence_is_not_active() {
        let s = RaSchedule {
            persist: false,
            ..RaSchedule::default()
        };
        let p = model_with_params(64, 1, &s);
        let d = check_persistence(&p, &DeviceSpec::v100());
        assert!(!d.requested && d.feasible && !d.active());
    }
}

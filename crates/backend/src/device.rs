//! Analytic device models (Table 3 backends + Appendix C roofline).
//!
//! A [`DeviceSpec`] converts an execution [`Profile`] into a latency
//! estimate:
//!
//! ```text
//! total = launches·launch_overhead            (kernel-call overheads, §7.2)
//!       + barriers·barrier_cost               (global synchronization, §7.4)
//!       + memcpys                              (vendor-library contiguity, §7.2)
//!       + max over roofline terms per wave:
//!           compute:  flops / (peak · utilization(width))
//!           memory:   bytes / bandwidth
//! ```
//!
//! Utilization models the paper's observation that without dynamic
//! batching a device cannot exploit parallelism across nodes: a wave
//! processing `width` nodes engages `width · warp` lanes out of
//! `parallel_lanes`.

use crate::profile::Profile;

/// Lanes one node's computation keeps busy (one warp on the GPU; one
/// SIMD-threaded core's worth on CPUs).
const NODE_LANES: f64 = 32.0;

/// An execution target for the analytic latency model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name (Table 3 short name).
    pub name: String,
    /// Whether this is a GPU-style device (manually managed scratchpad,
    /// expensive kernel launches — §7.3's fusion argument).
    pub is_gpu: bool,
    /// Seconds per kernel launch (device side).
    pub launch_overhead_s: f64,
    /// Seconds of host API time per launch or copy call ("CPU CUDA API
    /// time" in Table 6).
    pub host_api_call_s: f64,
    /// Global-memory bandwidth in bytes per second.
    pub mem_bandwidth: f64,
    /// Peak single-precision floating-point throughput (flop/s).
    pub peak_flops: f64,
    /// Cost of a device-wide barrier in seconds (lock-based; the lock-free
    /// variant used by GRNN is cheaper — Fig. 9).
    pub global_barrier_s: f64,
    /// Cost of a block-local synchronization in seconds.
    pub block_sync_s: f64,
    /// Concurrent scalar lanes (utilization denominator).
    pub parallel_lanes: f64,
    /// On-chip bytes usable for model persistence (registers + scratchpad
    /// for GPUs, private caches for CPUs — Appendix D's budget).
    pub onchip_bytes: u64,
}

impl DeviceSpec {
    /// An Nvidia-V100-like GPU (Table 3 "GPU").
    pub fn v100() -> Self {
        DeviceSpec {
            name: "GPU".to_string(),
            is_gpu: true,
            launch_overhead_s: 5.0e-6,
            host_api_call_s: 8.0e-6,
            mem_bandwidth: 900.0e9,
            peak_flops: 14.0e12,
            global_barrier_s: 2.5e-6,
            block_sync_s: 0.2e-6,
            parallel_lanes: 5120.0,
            onchip_bytes: 1_200_000,
        }
    }

    /// An Intel-CascadeLake-like 8-core/16-thread CPU (Table 3 "Intel").
    pub fn intel_cascadelake() -> Self {
        DeviceSpec {
            name: "Intel".to_string(),
            is_gpu: false,
            launch_overhead_s: 0.4e-6,
            host_api_call_s: 0.1e-6,
            mem_bandwidth: 80.0e9,
            peak_flops: 1.2e12,
            global_barrier_s: 0.3e-6,
            block_sync_s: 0.05e-6,
            parallel_lanes: 256.0,
            onchip_bytes: 16_000_000,
        }
    }

    /// An ARM-Graviton2-like 8-core CPU (Table 3 "ARM").
    pub fn arm_graviton2() -> Self {
        DeviceSpec {
            name: "ARM".to_string(),
            is_gpu: false,
            launch_overhead_s: 0.5e-6,
            host_api_call_s: 0.1e-6,
            mem_bandwidth: 40.0e9,
            peak_flops: 0.4e12,
            global_barrier_s: 0.4e-6,
            block_sync_s: 0.08e-6,
            parallel_lanes: 128.0,
            onchip_bytes: 8_000_000,
        }
    }

    /// A V100 whose global barrier uses the lock-free implementation of
    /// Xiao & Feng (2010), as GRNN does (Fig. 9).
    pub fn v100_lockfree_barrier() -> Self {
        DeviceSpec {
            global_barrier_s: 1.0e-6,
            name: "GPU (lock-free barrier)".to_string(),
            ..Self::v100()
        }
    }

    /// Fraction of the device kept busy by a wave `width` nodes wide.
    pub fn utilization(&self, width: u64) -> f64 {
        ((width as f64 * NODE_LANES) / self.parallel_lanes).clamp(1.0 / self.parallel_lanes, 1.0)
    }

    /// Estimates the latency of a profiled run.
    pub fn latency(&self, profile: &Profile) -> LatencyEstimate {
        let launch_s = profile.launches as f64 * self.launch_overhead_s;
        let host_api_s = profile.host_api_calls as f64 * self.host_api_call_s;
        let barrier_s = profile.barriers_global as f64 * self.global_barrier_s
            + profile.barriers_block as f64 * self.block_sync_s;
        // Roofline applied per wave: each wave is limited by the slower of
        // its compute (scaled by utilization) and its memory traffic.
        // Cache reuse credits (unrolling) scale wave traffic down.
        let mut accounted_flops = 0u64;
        let mut accounted_bytes = 0u64;
        let wave_bytes_total: u64 = profile.waves.iter().map(|w| w.bytes).sum();
        let reuse_factor = if wave_bytes_total > 0 {
            1.0 - (profile.cache_reuse_bytes.min(wave_bytes_total) as f64 / wave_bytes_total as f64)
        } else {
            1.0
        };
        let mut compute_s = 0.0;
        let mut mem_s = 0.0;
        let mut roofline_s = 0.0;
        for w in &profile.waves {
            let c = w.flops as f64 / (self.peak_flops * self.utilization(w.width));
            let m = w.bytes as f64 * reuse_factor / self.mem_bandwidth;
            compute_s += c;
            mem_s += m;
            // Overlapping memory with compute requires occupancy: a narrow
            // wave has no independent work to hide its loads behind, so it
            // pays close to the serial sum. This is the regime persistent
            // RNNs target — at small batch the per-step weight reload is
            // exposed latency (Diamos et al. 2016).
            let overlap = self.utilization(w.width);
            roofline_s += c.max(m) + (1.0 - overlap) * c.min(m);
            accounted_flops += w.flops;
            accounted_bytes += w.bytes;
        }
        // Work outside any recorded wave: compute at full utilization,
        // residual traffic at full bandwidth.
        let resid_c = profile.flops.saturating_sub(accounted_flops) as f64 / self.peak_flops;
        let resid_m = profile.total_global_bytes().saturating_sub(accounted_bytes) as f64
            / self.mem_bandwidth;
        compute_s += resid_c;
        mem_s += resid_m;
        roofline_s += resid_c.max(resid_m);
        let memcpy_s = profile.memcpy_bytes as f64 / self.mem_bandwidth;
        // Host overheads are measured wall-clock (graph construction,
        // batching, linearization) and added serially, as the paper does.
        let host_s = profile.host_overhead().as_secs_f64() + host_api_s;
        let device_s = launch_s + barrier_s + roofline_s + memcpy_s;
        LatencyEstimate {
            total_s: device_s + host_s,
            launch_s,
            barrier_s,
            compute_s,
            mem_s,
            memcpy_s,
            host_s,
        }
    }
}

/// A latency estimate with its breakdown (Table 6 columns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyEstimate {
    /// End-to-end inference latency in seconds.
    pub total_s: f64,
    /// Kernel-launch overhead.
    pub launch_s: f64,
    /// Synchronization-barrier cost.
    pub barrier_s: f64,
    /// Compute roofline term.
    pub compute_s: f64,
    /// Memory roofline term.
    pub mem_s: f64,
    /// Contiguity memory-copy cost.
    pub memcpy_s: f64,
    /// Host-side overhead (graph construction, batching, linearization,
    /// API calls).
    pub host_s: f64,
}

impl LatencyEstimate {
    /// Latency in milliseconds (the unit the paper's tables use).
    pub fn total_ms(&self) -> f64 {
        self.total_s * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WaveStat;

    #[test]
    fn presets_are_ordered_sensibly() {
        let gpu = DeviceSpec::v100();
        let intel = DeviceSpec::intel_cascadelake();
        let arm = DeviceSpec::arm_graviton2();
        assert!(gpu.peak_flops > intel.peak_flops && intel.peak_flops > arm.peak_flops);
        assert!(gpu.mem_bandwidth > intel.mem_bandwidth);
        assert!(
            gpu.launch_overhead_s > intel.launch_overhead_s,
            "GPU launches are expensive"
        );
    }

    #[test]
    fn utilization_saturates() {
        let gpu = DeviceSpec::v100();
        assert!(gpu.utilization(1) < 0.01);
        assert_eq!(gpu.utilization(1_000_000), 1.0);
        assert!(gpu.utilization(10) > gpu.utilization(1));
    }

    #[test]
    fn launches_dominate_small_work() {
        let gpu = DeviceSpec::v100();
        let many_launches = Profile {
            launches: 1000,
            flops: 1000,
            ..Profile::default()
        };
        let one_launch = Profile {
            launches: 1,
            flops: 1000,
            ..Profile::default()
        };
        let a = gpu.latency(&many_launches);
        let b = gpu.latency(&one_launch);
        assert!(a.total_s > 100.0 * b.total_s);
    }

    #[test]
    fn wider_waves_run_faster() {
        let gpu = DeviceSpec::v100();
        let narrow = Profile {
            flops: 1_000_000,
            waves: vec![WaveStat {
                flops: 1_000_000,
                width: 1,
                bytes: 0,
            }],
            ..Profile::default()
        };
        let wide = Profile {
            flops: 1_000_000,
            waves: vec![WaveStat {
                flops: 1_000_000,
                width: 128,
                bytes: 0,
            }],
            ..Profile::default()
        };
        assert!(gpu.latency(&narrow).compute_s > 10.0 * gpu.latency(&wide).compute_s);
    }

    #[test]
    fn lock_free_barrier_is_cheaper() {
        let locked = DeviceSpec::v100();
        let free = DeviceSpec::v100_lockfree_barrier();
        let p = Profile {
            barriers_global: 100,
            ..Profile::default()
        };
        assert!(free.latency(&p).barrier_s < locked.latency(&p).barrier_s);
    }

    #[test]
    fn roofline_takes_max_of_compute_and_memory() {
        let gpu = DeviceSpec::v100();
        let mem_bound = Profile {
            flops: 10,
            global_bytes_read: 9_000_000_000,
            ..Profile::default()
        };
        let l = gpu.latency(&mem_bound);
        assert!(l.total_s >= l.mem_s);
        assert!((l.mem_s - 0.01).abs() < 1e-6);
    }
}

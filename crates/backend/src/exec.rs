//! The ILIR executor: runs lowered programs against linearized inputs.
//!
//! Where TVM would emit CUDA/LLVM, this executor interprets the lowered
//! kernels directly — with two properties the reproduction depends on:
//!
//! 1. **Exact semantics**: results are bit-identical to what generated
//!    code would produce (validated against pure-Rust reference model
//!    implementations in `cortex-models`).
//! 2. **Complete accounting**: every launch, barrier, load, store and flop
//!    is recorded into a [`Profile`], with global-memory traffic
//!    de-duplicated per wavefront (a hardware cache would do the same
//!    within a kernel) and parameter reads counted once per program under
//!    model persistence or once per wave otherwise — the exact accounting
//!    Appendix C's roofline analysis performs.

use std::collections::HashMap;
use std::rc::Rc;

use cortex_core::expr::{BoolExpr, CmpOp, IdxBinOp, IdxExpr, RtScalar, TensorId, Ufn, ValExpr};
use cortex_core::ilir::{DimExtent, IlirProgram, LaunchPattern, Stmt, StorageClass};
use cortex_ds::linearizer::{Batch, LinearizeError, Linearized};
use cortex_tensor::approx::NonlinearityMode;
use cortex_tensor::{kernels, Tensor};

use crate::device::{DeviceSpec, LatencyEstimate};
use crate::fastdot::DotPlan;
use crate::params::Params;
use crate::persist::{check_persistence, PersistDecision};
use crate::profile::{Profile, WaveStat};
use crate::wave::{
    GroupKind, InnerDim, SiteGroup, SumSite, SuperEntry, SuperKey, SuperWaveAcc, WavePlan,
};

/// Errors from program execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A declared parameter was not bound.
    MissingParam(String),
    /// A bound parameter's shape does not match its declaration.
    ParamShape {
        /// Parameter name.
        name: String,
        /// Declared dims.
        expected: Vec<usize>,
        /// Bound dims.
        found: Vec<usize>,
    },
    /// Building the unrolled schedule failed (e.g. unrolling a DAG).
    Unroll(LinearizeError),
    /// An internal invariant was violated.
    Internal(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingParam(n) => write!(f, "parameter '{n}' is not bound"),
            ExecError::ParamShape {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "parameter '{name}' has shape {found:?}, expected {expected:?}"
                )
            }
            ExecError::Unroll(e) => write!(f, "unrolled schedule: {e}"),
            ExecError::Internal(msg) => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<LinearizeError> for ExecError {
    fn from(e: LinearizeError) -> Self {
        ExecError::Unroll(e)
    }
}

/// One request's raw execution result: output tensors by id plus the
/// exact counters ([`Engine::execute`]'s return shape, also produced
/// per request by [`Engine::execute_many`]).
pub type RunOutput = (HashMap<TensorId, Tensor>, Profile);

/// The result of running a lowered program on a device model.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Output tensors by id (recursion results and marked outputs).
    pub outputs: HashMap<TensorId, Tensor>,
    /// Execution counters.
    pub profile: Profile,
    /// Device-model latency estimate.
    pub latency: LatencyEstimate,
    /// Persistence decision that was in effect.
    pub persist: PersistDecision,
}

/// Runs `program` on the linearized input with the given parameters and
/// device model.
///
/// # Errors
///
/// Returns [`ExecError`] for unbound/ill-shaped parameters or invalid
/// unrolled schedules.
pub fn run(
    program: &IlirProgram,
    lin: &Linearized,
    params: &Params,
    device: &DeviceSpec,
) -> Result<RunResult, ExecError> {
    Engine::new(program).run(lin, params, device)
}

/// Executes without a device model, returning outputs and raw counters.
///
/// # Errors
///
/// See [`run`].
pub fn execute(
    program: &IlirProgram,
    lin: &Linearized,
    params: &Params,
    persist_active: bool,
) -> Result<(HashMap<TensorId, Tensor>, Profile), ExecError> {
    Engine::new(program).execute(lin, params, persist_active)
}

// ---------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------

/// Default for [`ExecOptions::min_wave_width`]: waves narrower than this
/// skip the gather/pack phase and run on the scalar fastdot path.
/// Results and `Profile` are identical either way; this is purely a
/// latency tuning knob.
///
/// Measured with the `tune_wave_width` sweep (single-core x86, h=256):
/// gate stacking makes even width-1 waves profitable — one stacked GEMM
/// replaces `h` per-element stream resolutions — so the default batches
/// everything (`seqlstm_h256_bs1` is 23 ms batched vs 36 ms skipped;
/// thresholds ≥2 only ever lose). Raise this on hardware where the
/// gather/pack phase is comparatively more expensive.
pub const MIN_WAVE_WIDTH: usize = 1;

/// Which executor paths are enabled.
///
/// All configurations compute identical results (a property test
/// asserts agreement on random programs); they differ in speed and serve
/// as each other's cross-checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Run recognized reductions as tight strided loops ([`DotPlan`]).
    /// With this off, every `Sum` goes through the generic interpreter.
    pub fastdot: bool,
    /// Execute recognized reduction *waves* as packed GEMMs (the batched
    /// wavefront engine).
    pub wave_gemm: bool,
    /// Stack compatible sites of a wave into one GEMM per group (shared
    /// gathered rows → vertically stacked weights; shared weight →
    /// row-stacked gathers). With this off every site runs its own GEMM
    /// (the pre-stacking path, kept as a cross-check).
    pub gate_stacking: bool,
    /// Waves narrower than this many rows stay on the scalar fastdot
    /// path ([`MIN_WAVE_WIDTH`]).
    pub min_wave_width: usize,
    /// Serve store loops in bulk (strided row passes, fused whole-wave
    /// epilogues) instead of interpreting them per element. Results are
    /// **bit-identical** either way (in `Exact` nonlinearity mode) and
    /// the `Profile` counters are exactly equal; this switch exists as
    /// the cross-check for that claim and as a diagnostic.
    pub bulk: bool,
    /// Which `tanh`/`sigmoid` implementation the executor applies — the
    /// paper's App. A.5 schedule choice, exposed as a per-engine knob
    /// (TVM-style: exact vs approximate nonlinearities are a scheduling
    /// decision, not a model property).
    ///
    /// [`Exact`](NonlinearityMode::Exact) (the default) uses `libm` and
    /// keeps every executor configuration bit-identical.
    /// [`Rational`](NonlinearityMode::Rational) substitutes the
    /// branch-free rational approximations — SIMD-vectorized over bulk
    /// feature rows via `cortex_tensor::simd` — with end-to-end error
    /// ≤ 1e-4 against the exact results (property-tested). `Profile`
    /// counters are unaffected: the modes differ in arithmetic, never in
    /// accounting. A program whose schedule already requests `Rational`
    /// keeps it regardless of this option.
    pub nonlinearity: NonlinearityMode,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            fastdot: true,
            wave_gemm: true,
            gate_stacking: true,
            min_wave_width: MIN_WAVE_WIDTH,
            bulk: true,
            nonlinearity: NonlinearityMode::Exact,
        }
    }
}

impl ExecOptions {
    /// The generic interpreter: no reduction fast paths at all.
    pub fn generic() -> Self {
        ExecOptions {
            fastdot: false,
            wave_gemm: false,
            gate_stacking: false,
            min_wave_width: 0,
            bulk: false,
            nonlinearity: NonlinearityMode::Exact,
        }
    }

    /// The scalar fast path: per-element strided dots, no wave batching.
    pub fn scalar() -> Self {
        ExecOptions {
            fastdot: true,
            wave_gemm: false,
            gate_stacking: false,
            min_wave_width: 0,
            bulk: true,
            nonlinearity: NonlinearityMode::Exact,
        }
    }

    /// The default batched engine with the rational-nonlinearity
    /// epilogue (App. A.5) enabled.
    pub fn rational() -> Self {
        ExecOptions {
            nonlinearity: NonlinearityMode::Rational,
            ..ExecOptions::default()
        }
    }

    /// The batched engine with gate stacking disabled: one GEMM per site
    /// per wave, exactly the pre-stacking executor.
    pub fn unstacked() -> Self {
        ExecOptions {
            gate_stacking: false,
            ..ExecOptions::default()
        }
    }
}

/// Diagnostic counters of the batched wavefront engine, reset on every
/// [`Engine::execute`]. Unlike [`Profile`] these describe the *executor
/// strategy* (how many GEMMs served the run, how much stacking engaged),
/// not the modeled device work — the scalar and batched paths
/// intentionally report different [`ExecStats`] while their `Profile`s
/// are identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Wave GEMM launches.
    pub wave_gemms: u64,
    /// Total rows across all wave GEMMs.
    pub gemm_rows: u64,
    /// Waves that ran the batched path.
    pub waves_batched: u64,
    /// Reduction sites served from wave GEMMs.
    pub sites_batched: u64,
    /// Multi-site groups executed as one stacked GEMM.
    pub stacked_groups: u64,
    /// Sites that shared a stacked GEMM (members of the above).
    pub stacked_sites: u64,
    /// Waves skipped by the min-width heuristic.
    pub narrow_waves_skipped: u64,
    /// Sites that failed a runtime check (weight window) and fell back
    /// to the scalar path.
    pub fallback_sites: u64,
    /// Stacked-weight matrices (re)packed: 0 in the steady state of a
    /// serving engine, whose packs persist per `(model, params
    /// generation)` across runs and across a batch's requests.
    pub weight_packs: u64,
    /// Merged super-wave GEMMs (one GEMM serving the same wave depth of
    /// several queued requests) executed by [`Engine::execute_many`].
    pub super_gemms: u64,
    /// Rows across merged super-wave GEMMs.
    pub super_gemm_rows: u64,
    /// Sum over merged GEMMs of the number of requests each served (so
    /// `super_gemm_requests / super_gemms` is the mean merge width).
    pub super_gemm_requests: u64,
    /// Waves whose whole body ran as the fused bulk epilogue (one
    /// loop-interchanged row pass per body statement instead of
    /// `wave_len` per-node body walks).
    pub fused_waves: u64,
    /// Wall-clock nanoseconds spent in **fused wave** epilogue passes —
    /// the post-GEMM serve/nonlinearity cost the `Rational` mode
    /// targets. Timed at wave granularity only: per-node bulk loops
    /// outside fused waves are not counted (a clock read per row pass
    /// would distort both the metric and the path).
    pub epilogue_ns: u64,
}

/// A reusable execution engine for one lowered program.
///
/// Compiling kernels (dense slot remapping), analyzing wave plans, and
/// pattern-matching reduction bodies are all done **once** here and then
/// reused by every run. Within a run, packed weight matrices and per-site
/// scratch buffers are shared across all waves and kernel launches;
/// weights are re-packed at the start of each run (parameter bindings may
/// change between runs) while scratch buffers persist. Use this instead
/// of the free [`execute`] function when running the same program many
/// times (benchmarks, serving loops):
///
/// ```ignore
/// let mut engine = Engine::new(&program);
/// for lin in inputs {
///     let (outputs, profile) = engine.execute(&lin, &params, true)?;
/// }
/// ```
pub struct Engine<'p> {
    program: &'p IlirProgram,
    opts: ExecOptions,
    compiled: Rc<Vec<CompiledKernel>>,
    wave_plans: Rc<HashMap<usize, WavePlan>>,
    /// Bulk feature-loop plans, compiled **once per engine** from its
    /// own kernels and keyed by `(kernel index, For statement address)`
    /// — the kernel index makes the key self-describing and collision
    /// -free by construction: there is no runtime insertion, so a key
    /// can never outlive or alias the statement it was built from (the
    /// old per-run `bulk_cache` keyed by bare address relied on
    /// allocator behavior for that).
    bulk_plans: Rc<HashMap<(usize, usize), Rc<BulkPlan>>>,
    /// Fused whole-wave epilogues: parallel `d_batch` loops whose whole
    /// body bulk-serves, keyed like [`Engine::bulk_plans`].
    fused_waves: Rc<HashMap<(usize, usize), FusedWave>>,
    /// Addresses of statements whose subtree contains a planned wave
    /// loop — the only paths the resumable step machine must walk
    /// frame-by-frame; everything else executes atomically.
    wave_ancestors: Rc<std::collections::HashSet<usize>>,
    max_slots: usize,
    caches: Caches,
    /// Shared parameter arena: one read-only allocation per `Param`
    /// tensor, bound once per `(model, params generation)` and shared
    /// by every run and every request of a batch (each interpreter's
    /// `Param` buffers are `Rc` views of these).
    param_arena: HashMap<u32, Rc<Vec<f32>>>,
    /// The `Params::generation` the packed-weight cache and parameter
    /// arena were built against; a different generation invalidates
    /// both.
    params_gen: Option<u64>,
}

/// Packed-weight cache eviction bound: a long-lived serving engine
/// re-packs (cheap, amortized) rather than growing without limit when a
/// program produces more distinct stacked-weight windows than this.
const WEIGHT_CACHE_CAP: usize = 64;

impl<'p> Engine<'p> {
    /// Builds an engine with the default options (all fast paths on).
    pub fn new(program: &'p IlirProgram) -> Self {
        Engine::with_options(program, ExecOptions::default())
    }

    /// Builds an engine with explicit executor options.
    pub fn with_options(program: &'p IlirProgram, opts: ExecOptions) -> Self {
        let compiled: Vec<CompiledKernel> = program
            .kernels
            .iter()
            .map(CompiledKernel::compile)
            .collect();
        let max_slots = compiled.iter().map(|k| k.num_slots).max().unwrap_or(0);
        let wave_plans = if opts.wave_gemm {
            let bodies: Vec<&[Stmt]> = compiled.iter().map(|k| k.body.as_slice()).collect();
            crate::wave::analyze(&bodies, opts.gate_stacking)
        } else {
            HashMap::new()
        };
        let mut wave_ancestors = std::collections::HashSet::new();
        for kernel in &compiled {
            for stmt in &kernel.body {
                collect_wave_ancestors(stmt, &wave_plans, &mut wave_ancestors);
            }
        }
        // Bulk feature-loop plans and fused wave epilogues are purely
        // syntactic: compile them once here, per `(kernel, statement)`,
        // instead of caching per run.
        let mut bulk_plans = HashMap::new();
        for (ki, kernel) in compiled.iter().enumerate() {
            for stmt in &kernel.body {
                collect_bulk_plans(stmt, ki, &mut bulk_plans);
            }
        }
        let mut fused_waves = HashMap::new();
        for (ki, kernel) in compiled.iter().enumerate() {
            for stmt in &kernel.body {
                collect_fused_waves(stmt, ki, &bulk_plans, &mut fused_waves);
            }
        }
        Engine {
            program,
            opts,
            compiled: Rc::new(compiled),
            wave_plans: Rc::new(wave_plans),
            bulk_plans: Rc::new(bulk_plans),
            fused_waves: Rc::new(fused_waves),
            wave_ancestors: Rc::new(wave_ancestors),
            max_slots,
            caches: Caches::default(),
            param_arena: HashMap::new(),
            params_gen: None,
        }
    }

    /// The options this engine was built with.
    pub fn options(&self) -> ExecOptions {
        self.opts
    }

    /// Number of `d_batch` loops that will execute as batched GEMM waves.
    pub fn num_wave_plans(&self) -> usize {
        self.wave_plans.len()
    }

    /// Diagnostic counters of the most recent [`Engine::execute`] call.
    pub fn stats(&self) -> ExecStats {
        self.caches.stats
    }

    /// Executes the program, returning outputs and raw counters.
    ///
    /// # Errors
    ///
    /// See [`execute`].
    pub fn execute(
        &mut self,
        lin: &Linearized,
        params: &Params,
        persist_active: bool,
    ) -> Result<(HashMap<TensorId, Tensor>, Profile), ExecError> {
        self.refresh_weight_cache(params);
        self.caches.stats = ExecStats::default();
        let mut interp = Interp::new(
            self.program,
            lin,
            params,
            persist_active,
            self.opts,
            self.compiled.clone(),
            self.wave_plans.clone(),
            self.bulk_plans.clone(),
            self.fused_waves.clone(),
            self.wave_ancestors.clone(),
            self.max_slots,
            &mut self.param_arena,
        )?;
        std::mem::swap(&mut self.caches, &mut interp.caches);
        let result = interp.run_all();
        std::mem::swap(&mut self.caches, &mut interp.caches);
        result?;
        interp.finish()
    }

    /// Executes the program over a *batch* of independent inputs, fusing
    /// their wavefronts: at each wave depth, the per-request wave GEMMs
    /// of the same stacking group merge into one **super-wave** GEMM
    /// over the concatenation of every request's gathered rows (width
    /// `Σ bs` instead of `bs`), so GEMM launches scale with the number
    /// of wave depths, not with the number of requests.
    ///
    /// Outputs and `Profile`s are returned per request, **exactly**
    /// equal to running each input through [`Engine::execute`] alone:
    /// the merged GEMM computes each output element from the same row
    /// and weight data in the same reduction order, and all accounting
    /// is per-request by construction (the GEMM itself is
    /// accounting-free; counters are charged during each request's own
    /// gather and memo-serve phases). [`Engine::stats`] afterwards
    /// describes the whole batch (one `wave_gemms` launch may serve many
    /// requests — that is the amortization being measured).
    ///
    /// # Errors
    ///
    /// See [`execute`]; the first failing request aborts the batch.
    pub fn execute_many(
        &mut self,
        lins: &[&Linearized],
        params: &Params,
        persist_active: bool,
    ) -> Result<Vec<RunOutput>, ExecError> {
        self.refresh_weight_cache(params);
        self.caches.stats = ExecStats::default();
        if lins.is_empty() {
            return Ok(Vec::new());
        }
        let compiled = self.compiled.clone();
        let mut interps = Vec::with_capacity(lins.len());
        let mut cursors = Vec::with_capacity(lins.len());
        for lin in lins {
            interps.push(Interp::new(
                self.program,
                lin,
                params,
                persist_active,
                self.opts,
                self.compiled.clone(),
                self.wave_plans.clone(),
                self.bulk_plans.clone(),
                self.fused_waves.clone(),
                self.wave_ancestors.clone(),
                self.max_slots,
                &mut self.param_arena,
            )?);
            cursors.push(RunCursor::new(launch_units(&compiled, self.program, lin)));
        }

        // Cooperative round-robin: each request runs until it parks at a
        // planned wave loop (gathered rows registered, GEMM pending) or
        // completes. Once every live request is parked, the accumulated
        // GEMMs flush — merged across requests — results are installed,
        // and everyone resumes. Merging is opportunistic: requests at
        // different depths (or past their last wave) simply stop
        // contributing rows, so mixed-depth batches stay correct.
        let mut acc = SuperWaveAcc::default();
        let mut parked = vec![false; interps.len()];
        loop {
            let mut progressed = false;
            for r in 0..interps.len() {
                if cursors[r].done || parked[r] {
                    continue;
                }
                progressed = true;
                // The shared caches (reduction plans, packed weights,
                // scratch pools, stats) shuttle into whichever request
                // is stepping — this is what makes weights pack once
                // per batch instead of once per request.
                std::mem::swap(&mut self.caches, &mut interps[r].caches);
                let outcome = interps[r].step(&mut cursors[r], &compiled, &mut acc, r);
                std::mem::swap(&mut self.caches, &mut interps[r].caches);
                if matches!(outcome, StepOutcome::Paused) {
                    parked[r] = true;
                }
            }
            if !acc.is_empty() {
                self.flush_super_waves(&mut acc, &mut interps);
                parked.iter_mut().for_each(|p| *p = false);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        debug_assert!(cursors.iter().all(|c| c.done), "all requests must finish");
        interps.into_iter().map(Interp::finish).collect()
    }

    /// Runs every pending super-wave GEMM and hands each registered
    /// request its block of the shared result matrix.
    fn flush_super_waves(&mut self, acc: &mut SuperWaveAcc, interps: &mut [Interp<'_>]) {
        for entry in acc.take_entries() {
            let SuperEntry {
                key,
                weight,
                rows,
                total_rows,
                registrants,
            } = entry;
            let mut out = vec![0.0f32; total_rows * key.cols];
            kernels::gemm_nt_into(&mut out, &rows, &weight, total_rows, key.cols, key.k_len);
            let shared = Rc::new(out);
            let stats = &mut self.caches.stats;
            stats.wave_gemms += 1;
            stats.gemm_rows += total_rows as u64;
            if registrants.len() > 1 {
                stats.super_gemms += 1;
                stats.super_gemm_rows += total_rows as u64;
                stats.super_gemm_requests += registrants.len() as u64;
            }
            for reg in &registrants {
                interps[reg.request].install_wave_result(
                    reg.group_idx,
                    shared.clone(),
                    reg.base_row,
                );
            }
            acc.recycle(rows);
        }
    }

    /// Packed weights are cached per `(program, params generation)` —
    /// i.e. once per model per binding state, across runs and across the
    /// requests of a serving batch — instead of being rebuilt every run.
    /// Packs of non-`Param` weights (tensors a kernel may rewrite with
    /// input-dependent values) never survive a run boundary, and the
    /// whole cache is bounded by [`WEIGHT_CACHE_CAP`] with
    /// least-recently-used eviction: packs touched by the most recent
    /// run (the in-flight working set — during `run_many` that is every
    /// request of the batch, since eviction only runs between
    /// executions) carry the newest stamp and are evicted last, so a
    /// program whose working set fits the cap repacks **nothing** in
    /// the steady state even when its lifetime-distinct pack count
    /// exceeds the cap. (The old policy cleared the whole cache at the
    /// cap, forcing a mid-service full repack.)
    fn refresh_weight_cache(&mut self, params: &Params) {
        let gen = params.generation();
        self.caches.run_stamp += 1;
        if self.params_gen != Some(gen) {
            self.caches.weight_cache.clear();
            self.param_arena.clear();
            self.params_gen = Some(gen);
        } else {
            self.caches.weight_cache.retain(|_, w| w.params_only);
            evict_weight_cache_lru(&mut self.caches.weight_cache, WEIGHT_CACHE_CAP);
        }
    }

    /// Executes against a device model, like the free [`run`] function.
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn run(
        &mut self,
        lin: &Linearized,
        params: &Params,
        device: &DeviceSpec,
    ) -> Result<RunResult, ExecError> {
        let persist = check_persistence(self.program, device);
        let (outputs, profile) = self.execute(lin, params, persist.active())?;
        let latency = device.latency(&profile);
        Ok(RunResult {
            outputs,
            profile,
            latency,
            persist,
        })
    }

    /// Batched counterpart of [`Engine::run`]: executes a queue of
    /// independent inputs through one merged super-wave schedule (see
    /// [`Engine::execute_many`]) and returns one [`RunResult`] per
    /// request.
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn run_many(
        &mut self,
        lins: &[&Linearized],
        params: &Params,
        device: &DeviceSpec,
    ) -> Result<Vec<RunResult>, ExecError> {
        let persist = check_persistence(self.program, device);
        let results = self.execute_many(lins, params, persist.active())?;
        Ok(results
            .into_iter()
            .map(|(outputs, profile)| RunResult {
                latency: device.latency(&profile),
                outputs,
                profile,
                persist: persist.clone(),
            })
            .collect())
    }
}

/// Marks every statement whose subtree contains a planned wave loop
/// (including the loop itself). Returns whether `stmt`'s subtree does.
fn collect_wave_ancestors(
    stmt: &Stmt,
    plans: &HashMap<usize, WavePlan>,
    out: &mut std::collections::HashSet<usize>,
) -> bool {
    let mut contains = plans.contains_key(&(stmt as *const Stmt as usize));
    match stmt {
        Stmt::For { body, .. } | Stmt::Let { body, .. } => {
            for s in body {
                contains |= collect_wave_ancestors(s, plans, out);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                contains |= collect_wave_ancestors(s, plans, out);
            }
        }
        Stmt::Store { .. } | Stmt::Barrier => {}
    }
    if contains {
        out.insert(stmt as *const Stmt as usize);
    }
    contains
}

/// The flat launch schedule [`Interp::run_all`] executes: `Once` kernels
/// in order, each `PerInternalBatch` run expanded over the input's batch
/// indices. Precomputing it lets the resumable step machine treat every
/// kernel launch uniformly.
fn launch_units(
    compiled: &[CompiledKernel],
    program: &IlirProgram,
    lin: &Linearized,
) -> Vec<(usize, Option<i64>)> {
    let num_internal_batches = if program.meta.schedule.specialize {
        lin.internal_batches().len() as i64
    } else {
        lin.internal_batches().len() as i64 + 1
    };
    let mut units = Vec::new();
    let mut i = 0;
    while i < compiled.len() {
        match compiled[i].launch {
            LaunchPattern::Once => {
                units.push((i, None));
                i += 1;
            }
            LaunchPattern::PerInternalBatch => {
                let mut j = i;
                while j < compiled.len() && compiled[j].launch == LaunchPattern::PerInternalBatch {
                    j += 1;
                }
                for b in 0..num_internal_batches {
                    for k in i..j {
                        units.push((k, Some(b)));
                    }
                }
                i = j;
            }
        }
    }
    units
}

/// State the engine keeps across runs: memoized reduction plans (keyed by
/// the `Sum` body's address within the compiled kernels, stable for the
/// engine's lifetime), stacked packed-weight matrices (per run), and
/// per-group gather/output scratch buffers.
#[derive(Default)]
struct Caches {
    plan_cache: HashMap<usize, Option<Rc<DotPlan>>>,
    /// Scratch rows for bulk evaluation (one per live expression-tree
    /// level), recycled across loops.
    row_pool: Vec<Vec<f32>>,
    /// Monotonic execution counter, stamped onto weight-cache entries on
    /// every hit or insert — the recency order the LRU eviction uses.
    run_stamp: u64,
    /// Stacked packed weights keyed by `(group leader site key,
    /// reduction extent)` — the extent is part of the key because a
    /// site's extent may legally vary between waves (it is only required
    /// to be invariant *within* one), and keying it keeps both variants
    /// cached instead of repacking every wave. The signature (per-member
    /// site key, weight window base, source-tensor store generation) is
    /// validated on every hit and the pack rebuilt on mismatch — a
    /// non-`Param` weight may be rewritten by a precompute kernel
    /// mid-run.
    weight_cache: HashMap<(usize, usize), StackedWeight>,
    /// Reusable gather/output buffers keyed by group leader site key. A
    /// stack per key: during `execute_many` several requests hold the
    /// same group's buffers at once (their waves overlap in time), so
    /// one slot per key would churn allocations.
    group_bufs: HashMap<usize, Vec<GroupBufs>>,
    stats: ExecStats,
}

/// One packed (possibly vertically stacked) weight matrix.
struct StackedWeight {
    /// Per-member `(site key, window base, store generation)`.
    sig: Vec<(usize, usize, u64)>,
    /// Whether every packed window reads a `Param`-class tensor: only
    /// such packs may cross an interpreter boundary (non-`Param`
    /// weights can be rewritten with input-dependent values between
    /// runs — or between the requests of a batch — without a
    /// store-generation change being observable across fresh interps,
    /// whose generations all start at zero).
    params_only: bool,
    /// The [`Interp::cache_epoch`] that packed this entry. Non-`Param`
    /// packs only validate within the same epoch: two equal-sized
    /// requests of one batch drive identical store counts to a
    /// kernel-written weight tensor, so the store-generation signature
    /// alone cannot tell their (possibly different) values apart.
    epoch: u64,
    /// [`Caches::run_stamp`] of the last execution that used this pack;
    /// eviction removes the stalest entries first.
    last_used: u64,
    /// `[ΣH][K]` row-major.
    data: Rc<Vec<f32>>,
}

/// Evicts the least-recently-used entries of the packed-weight cache
/// down to `cap`. Entries stamped by the most recent execution (the
/// in-flight working set) are the newest and go last — they are only
/// evicted when a single run's working set itself exceeds the cap.
fn evict_weight_cache_lru(cache: &mut HashMap<(usize, usize), StackedWeight>, cap: usize) {
    if cache.len() <= cap {
        return;
    }
    let mut stamps: Vec<((usize, usize), u64)> =
        cache.iter().map(|(k, w)| (*k, w.last_used)).collect();
    stamps.sort_by_key(|&(_, used)| used);
    for (key, _) in stamps.iter().take(cache.len() - cap) {
        cache.remove(key);
    }
}

/// Reusable buffers for one stacking group. All three vectors are
/// engine-lifetime scratch: they round-trip through [`ActiveGroup`] and
/// back into the cache after each wave, so steady-state waves allocate
/// nothing (the `RowMeta` entries are recycled in place, `tensors`
/// capacity included).
#[derive(Default)]
struct GroupBufs {
    /// Packed operand rows, `[rows][k]`.
    rows: Vec<f32>,
    /// GEMM output, `[rows][cols]`.
    out: Vec<f32>,
    /// Per-row accounting metadata.
    meta: Vec<RowMeta>,
}

/// Accounting metadata for one packed row, mirroring exactly what the
/// scalar `eval_dot` would have recorded per element.
#[derive(Debug, Clone, Default)]
struct RowMeta {
    /// A guard failed (or `k == 0`): the scalar path returns `0.0`
    /// *before* any accounting, so the memo does the same.
    zero: bool,
    /// Reduction-invariant scalar factor, applied after the dot.
    scale: f32,
    /// Stream count **excluding** the weight stream (sites of a stacked
    /// group share row metadata but read different weight tensors, so
    /// the weight's load/flop share is charged at memo-hit time from
    /// [`ActiveSite::weight_tensor`]).
    streams: u64,
    /// Touched row-side tensor ids (with multiplicity); the weight
    /// tensor is *not* included.
    tensors: Vec<u32>,
}

/// A stacking-group member that passed its runtime weight-window check:
/// the resolved window base/strides and the source tensor's store
/// generation at resolution time.
struct SitePrep<'s> {
    site: &'s SumSite,
    wbase: usize,
    si: usize,
    sk: usize,
    wgen: u64,
}

/// A resolved multiplicative operand of a reduction.
enum Res {
    /// `data[base + k*stride]` of one tensor.
    Stream(usize, usize, usize),
    /// Sum of streams (child-sum).
    AddStreams(Vec<(usize, usize, usize)>),
    /// Guard failed: whole product is zero.
    Zero,
}

/// Where a wave's GEMM result lives.
enum GroupOut {
    /// Deferred into a super-wave GEMM that has not flushed yet; reading
    /// it is a bug (the request is parked until results install).
    Pending,
    /// This request's own GEMM (the single-run path).
    Owned(Vec<f32>),
    /// A block of a merged super-wave result shared by several requests;
    /// this request's rows start at `base`.
    Shared { buf: Rc<Vec<f32>>, base: usize },
}

/// One stacked GEMM currently serving a wave: the packed rows, the
/// result matrix, and the per-row accounting shared by its sites.
struct ActiveGroup {
    /// Group leader's site key (the scratch-buffer cache key).
    leader_key: usize,
    /// GEMM output, `[rows][cols]` row-major (owned or a shared block).
    out: GroupOut,
    /// Packed operand rows (kept only to return the buffer to the pool;
    /// empty when the rows were gathered into a super-wave matrix).
    rows: Vec<f32>,
    /// Per-row metadata; sites index it via their `meta_off`.
    meta: Vec<RowMeta>,
    /// Output row length (ΣH of the stacked sites, or H when rows are
    /// stacked instead).
    cols: usize,
}

impl ActiveGroup {
    /// One element of the GEMM result.
    #[inline]
    fn value(&self, row: usize, col: usize) -> f32 {
        match &self.out {
            GroupOut::Owned(v) => v[row * self.cols + col],
            GroupOut::Shared { buf, base } => buf[(base + row) * self.cols + col],
            GroupOut::Pending => unreachable!("wave GEMM result read before its flush"),
        }
    }
}

/// A site currently served from an [`ActiveGroup`]'s GEMM result.
struct ActiveSite {
    site_key: usize,
    /// Index into `Interp::active_groups`.
    group: usize,
    /// Row offset of this site's block in the group result
    /// (`member_index · wave_len` for row-stacked groups, else 0).
    row_off: usize,
    /// Column offset of this site's block (prefix sum of stacked `h`s
    /// for weight-stacked groups, else 0).
    col_off: usize,
    /// Offset into the group's `meta` (row-stacked groups carry one
    /// metadata entry per site per row; weight-stacked share one set).
    meta_off: usize,
    k: u64,
    /// Weight tensor id, charged per element at memo-hit time.
    weight_tensor: u32,
    feat_slot: usize,
    /// Row-side feature dimension of a rank-2 site: the served row is
    /// `n_idx · extent + j` instead of `n_idx`.
    inner: Option<InnerDim>,
    n_idx_slot: usize,
}

// ---------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------

/// Backing storage of a [`Buffer`]: owned and writable, or a read-only
/// view of the engine's shared parameter arena. Sharing parameters is
/// what keeps a serving batch's K simultaneous interpreters from each
/// copying (and keeping resident) the full weight + embedding set —
/// parameters are bound once per `(model, params generation)` and every
/// run/request of the engine reads the same allocation.
#[derive(Debug, Clone)]
enum BufData {
    Owned(Vec<f32>),
    Shared(Rc<Vec<f32>>),
}

impl std::ops::Deref for BufData {
    type Target = [f32];

    #[inline]
    fn deref(&self) -> &[f32] {
        match self {
            BufData::Owned(v) => v,
            BufData::Shared(r) => r,
        }
    }
}

impl BufData {
    /// Mutable access — only owned storage is writable (the lowering
    /// never emits stores to `Param` tensors, the one shared class).
    #[inline]
    fn as_mut(&mut self) -> &mut [f32] {
        match self {
            BufData::Owned(v) => v,
            BufData::Shared(_) => unreachable!("store to a shared parameter buffer"),
        }
    }

    fn into_vec(self) -> Vec<f32> {
        match self {
            BufData::Owned(v) => v,
            BufData::Shared(r) => r.as_ref().clone(),
        }
    }
}

#[derive(Debug, Clone)]
struct Buffer {
    data: BufData,
    dims: Vec<usize>,
    strides: Vec<usize>,
    class: StorageClass,
}

impl Buffer {
    fn new(dims: Vec<usize>, class: StorageClass) -> Self {
        let len: usize = dims.iter().product();
        let mut strides = vec![1usize; dims.len()];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }
        Buffer {
            data: BufData::Owned(vec![0.0; len.max(1)]),
            dims,
            strides,
            class,
        }
    }

    fn bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }
}

// ---------------------------------------------------------------------
// Runtime environment (linearizer arrays + unrolled schedule)
// ---------------------------------------------------------------------

struct RtEnv {
    batches: Vec<Batch>,
    stages: Vec<Vec<u32>>,
    num_super_waves: usize,
    intra_group_edges: usize,
    unamortized_barriers: usize,
    max_batch: usize,
}

impl RtEnv {
    fn new(program: &IlirProgram, lin: &Linearized) -> Result<Self, ExecError> {
        let batches = lin.batches();
        let mut stages = Vec::new();
        let mut num_super_waves = 0;
        let mut intra_group_edges = 0;
        let mut unamortized_barriers = 0;
        if let Some(depth) = program.meta.schedule.unroll {
            let sched = lin.unrolled(depth)?;
            num_super_waves = sched.num_super_waves();
            intra_group_edges = sched.intra_group_edges;
            unamortized_barriers = sched.unamortized_barriers();
            for sw in &sched.super_waves {
                for stage in &sw.stages {
                    stages.push(stage.clone());
                }
            }
        }
        // Scratch tensors are live only within internal waves (and
        // unrolled stages), so they are sized by the widest of those —
        // not by the (typically much wider) leaf batch.
        let max_batch = lin
            .internal_batches()
            .iter()
            .map(Batch::len)
            .chain(stages.iter().map(Vec::len))
            .max()
            .unwrap_or(1)
            .max(1);
        Ok(RtEnv {
            batches,
            stages,
            num_super_waves,
            intra_group_edges,
            unamortized_barriers,
            max_batch,
        })
    }
}

// ---------------------------------------------------------------------
// Accounting scopes
// ---------------------------------------------------------------------

#[derive(Default)]
struct Scope {
    /// Per-tensor `(loads, stores)` within this scope, indexed by tensor
    /// id. A flat array, not a map: these counters are bumped on every
    /// interpreted load/store, the hottest accounting path there is.
    touch: Vec<(u64, u64)>,
    flops_start: u64,
    /// Flops already attributed to nested (wave) scopes, so the outer
    /// launch scope only reports its own residual work.
    flops_attributed: u64,
    width: u64,
    /// Whether this scope is one iteration of the wave (`d_all_batches`)
    /// loop. Parameters read inside wave scopes are the *recurrent*
    /// parameters — the ones model persistence pins on-chip.
    is_wave: bool,
}

// ---------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------

struct Interp<'a> {
    program: &'a IlirProgram,
    lin: &'a Linearized,
    rt: RtEnv,
    bufs: Vec<Option<Buffer>>,
    profile: Profile,
    slots: Vec<i64>,
    scopes: Vec<Scope>,
    /// Accumulated loads of persisted parameters (flushed once at the end:
    /// persistence reads each needed parameter byte exactly once).
    persisted_loads: Vec<u64>,
    persist_active: bool,
    nonlin: NonlinearityMode,
    opts: ExecOptions,
    compiled: Rc<Vec<CompiledKernel>>,
    wave_plans: Rc<HashMap<usize, WavePlan>>,
    bulk_plans: Rc<HashMap<(usize, usize), Rc<BulkPlan>>>,
    fused_waves: Rc<HashMap<(usize, usize), FusedWave>>,
    /// Index of the kernel currently launching — the kernel half of the
    /// bulk-plan keys.
    cur_kernel: usize,
    wave_ancestors: Rc<std::collections::HashSet<usize>>,
    /// Shared engine state, *shuttled* in and out around execution: the
    /// engine swaps its caches into exactly one interpreter at a time
    /// (the running one), which is how `execute_many`'s requests share
    /// packed weights and scratch pools without aliasing.
    caches: Caches,
    /// Sites of the wave currently executing, served from GEMM results.
    active: Vec<ActiveSite>,
    /// Stacked GEMMs of the wave currently executing.
    active_groups: Vec<ActiveGroup>,
    /// `(Sum-body address, index into active)` of the active sites. A
    /// linear scan: waves have a handful of sites, and this lookup runs
    /// once per interpreted `Sum` element — the hottest path there is,
    /// where a `HashMap` hash would dominate.
    memo: Vec<(usize, usize)>,
    /// Zeroed per-tensor touch arrays, recycled across scopes.
    scope_pool: Vec<Vec<(u64, u64)>>,
    /// Per-tensor store generation: bumped on every interpreted store, so
    /// packed-weight cache entries are invalidated the moment their
    /// source tensor is written (a non-`Param` weight may legally be
    /// produced by a precompute kernel — or rewritten between waves).
    store_gens: Vec<u64>,
    /// Process-unique id of this interpreter instance. Non-`Param`
    /// packed-weight entries only validate within the epoch that packed
    /// them: store generations are per-interpreter (all start at 0), so
    /// two requests of one batch — or two consecutive runs — can reach
    /// identical generation counts for a kernel-written weight holding
    /// different values.
    cache_epoch: u64,
}

/// Source of [`Interp::cache_epoch`] values.
static NEXT_CACHE_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl<'a> Interp<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        program: &'a IlirProgram,
        lin: &'a Linearized,
        params: &Params,
        persist_active: bool,
        opts: ExecOptions,
        compiled: Rc<Vec<CompiledKernel>>,
        wave_plans: Rc<HashMap<usize, WavePlan>>,
        bulk_plans: Rc<HashMap<(usize, usize), Rc<BulkPlan>>>,
        fused_waves: Rc<HashMap<(usize, usize), FusedWave>>,
        wave_ancestors: Rc<std::collections::HashSet<usize>>,
        max_slots: usize,
        param_arena: &mut HashMap<u32, Rc<Vec<f32>>>,
    ) -> Result<Self, ExecError> {
        let rt = RtEnv::new(program, lin)?;
        let n_tensors = program.tensors.len();
        let mut bufs: Vec<Option<Buffer>> = vec![None; n_tensors];
        let mut profile = Profile::new();
        for decl in program.declared_tensors() {
            let dims: Vec<usize> = decl
                .dims
                .iter()
                .map(|d| match d {
                    DimExtent::Fixed(n) => *n,
                    DimExtent::Nodes => lin.num_nodes(),
                    DimExtent::MaxBatch => rt.max_batch,
                })
                .collect();
            let mut buf = Buffer::new(dims.clone(), decl.class);
            if decl.class == StorageClass::Param {
                let bound = params
                    .get(&decl.name)
                    .ok_or_else(|| ExecError::MissingParam(decl.name.clone()))?;
                if bound.shape().dims() != dims.as_slice() {
                    return Err(ExecError::ParamShape {
                        name: decl.name.clone(),
                        expected: dims,
                        found: bound.shape().dims().to_vec(),
                    });
                }
                // Parameters are read-only to the generated code: every
                // interpreter shares the engine arena's one allocation
                // (filled on first use per params generation) instead of
                // copying the full weight + embedding set per run.
                let shared = param_arena
                    .entry(decl.id.0)
                    .or_insert_with(|| Rc::new(bound.as_slice().to_vec()));
                debug_assert_eq!(shared.len(), bound.len());
                buf.data = BufData::Shared(shared.clone());
            }
            if decl.class == StorageClass::Scratch {
                profile.scratch_allocated_bytes += buf.bytes();
            }
            profile.allocated_bytes += buf.bytes();
            bufs[decl.id.0 as usize] = Some(buf);
        }
        Ok(Interp {
            program,
            lin,
            rt,
            bufs,
            profile,
            slots: vec![0; max_slots],
            scopes: Vec::new(),
            persisted_loads: vec![0; n_tensors],
            store_gens: vec![0; n_tensors],
            persist_active,
            // The rational substitution is a schedule choice either side
            // can make: the engine option or the program's schedule.
            nonlin: if opts.nonlinearity == NonlinearityMode::Rational {
                NonlinearityMode::Rational
            } else {
                program.meta.schedule.nonlinearity
            },
            opts,
            compiled,
            wave_plans,
            bulk_plans,
            fused_waves,
            cur_kernel: 0,
            wave_ancestors,
            caches: Caches::default(),
            active: Vec::new(),
            active_groups: Vec::new(),
            memo: Vec::new(),
            scope_pool: Vec::new(),
            cache_epoch: NEXT_CACHE_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    fn run_all(&mut self) -> Result<(), ExecError> {
        let compiled = self.compiled.clone();
        // Per-batch kernels run once per internal batch when specialized;
        // without specialization the leaf wave joins the batch table too
        // (see [`launch_units`]).
        for (ki, b) in launch_units(&compiled, self.program, self.lin) {
            self.launch(ki, &compiled[ki], b);
        }
        self.finalize_run();
        Ok(())
    }

    /// Post-run accounting shared by [`run_all`](Self::run_all) and the
    /// resumable step machine.
    fn finalize_run(&mut self) {
        // Unrolled schedules: reclassify stage barriers and credit cache
        // reuse along intra-group edges (Fig. 3's yellow boxes).
        if self.program.meta.schedule.unroll.is_some() {
            if self.program.meta.schedule.unroll_block_local {
                // One node per thread block: intra-group stage boundaries
                // are block-local syncs; only super waves need the device.
                let total = self.profile.barriers_global;
                let global = self.rt.num_super_waves as u64;
                self.profile.barriers_block = total.saturating_sub(global);
                self.profile.barriers_global = global;
            } else {
                // Fig. 11: the barrier cannot be amortized across the
                // groups of a super wave — each unrolled call region
                // synchronizes its own stages.
                self.profile.barriers_global = self
                    .profile
                    .barriers_global
                    .max(self.rt.unamortized_barriers as u64);
            }
            let per_edge_bytes: u64 = self
                .program
                .declared_tensors()
                .filter(|t| t.is_output || matches!(t.dims.first(), Some(DimExtent::Nodes)))
                .filter(|t| t.class == StorageClass::Global)
                .map(|t| {
                    t.dims
                        .iter()
                        .skip(1)
                        .map(|d| match d {
                            DimExtent::Fixed(n) => *n as u64,
                            _ => 1,
                        })
                        .product::<u64>()
                        * 4
                })
                .sum();
            self.profile.cache_reuse_bytes = self.rt.intra_group_edges as u64 * per_edge_bytes;
        }
        // Recursive refactoring: the fused A2/A1 stage boundary is a
        // block-local sync per wave (per-subtree blocking), accounted here.
        if self.program.meta.schedule.refactor_split.is_some() {
            self.profile.barriers_block += self.lin.internal_batches().len() as u64;
        }
        // Persisted parameters: each needed byte read exactly once.
        if self.persist_active {
            for (i, &loads) in self.persisted_loads.iter().enumerate() {
                if loads > 0 {
                    if let Some(buf) = &self.bufs[i] {
                        self.profile.param_bytes_read += (loads * 4).min(buf.bytes());
                    }
                }
            }
        }
    }

    fn finish(mut self) -> Result<(HashMap<TensorId, Tensor>, Profile), ExecError> {
        let mut outputs = HashMap::new();
        for id in &self.program.outputs {
            let buf = self.bufs[id.0 as usize]
                .take()
                .ok_or_else(|| ExecError::Internal(format!("output {id} has no buffer")))?;
            let t = Tensor::from_vec(buf.data.into_vec(), &buf.dims)
                .map_err(|e| ExecError::Internal(e.to_string()))?;
            outputs.insert(*id, t);
        }
        Ok((outputs, self.profile))
    }

    // -- accounting ---------------------------------------------------

    fn push_scope(&mut self, is_wave: bool) {
        let flops = self.profile.flops;
        let touch = self
            .scope_pool
            .pop()
            .unwrap_or_else(|| vec![(0, 0); self.bufs.len()]);
        debug_assert!(touch.iter().all(|&t| t == (0, 0)));
        self.scopes.push(Scope {
            touch,
            flops_start: flops,
            flops_attributed: 0,
            width: 0,
            is_wave,
        });
    }

    fn pop_scope(&mut self) {
        let mut scope = self.scopes.pop().expect("scope underflow");
        let delta = self.profile.flops - scope.flops_start;
        let own = delta - scope.flops_attributed;
        if let Some(parent) = self.scopes.last_mut() {
            parent.flops_attributed += delta;
        }
        let mut wave_bytes = 0u64;
        for (t, counts) in scope.touch.iter_mut().enumerate() {
            let (loads, stores) = std::mem::take(counts);
            if loads == 0 && stores == 0 {
                continue;
            }
            let tensor = TensorId(t as u32);
            let Some(buf) = &self.bufs[tensor.0 as usize] else {
                continue;
            };
            let size = buf.bytes();
            match buf.class {
                StorageClass::Param => {
                    // Persistence pins the recurrent parameters (those
                    // read every wave); one-shot reads (embedding gathers
                    // in leaf/precompute kernels) always pay their
                    // traffic, as in GRNN/DeepCPU.
                    if self.persist_active && scope.is_wave {
                        self.persisted_loads[tensor.0 as usize] += loads;
                    } else {
                        let b = (loads * 4).min(size);
                        self.profile.param_bytes_read += b;
                        wave_bytes += b;
                    }
                }
                StorageClass::Global => {
                    let r = (loads * 4).min(size);
                    let w = (stores * 4).min(size);
                    self.profile.global_bytes_read += r;
                    self.profile.global_bytes_written += w;
                    wave_bytes += r + w;
                }
                StorageClass::Scratch => {
                    self.profile.scratch_bytes_accessed += (loads + stores) * 4;
                }
            }
        }
        if own > 0 || wave_bytes > 0 {
            self.profile.waves.push(WaveStat {
                flops: own,
                width: scope.width.max(1),
                bytes: wave_bytes,
            });
        }
        self.scope_pool.push(scope.touch);
    }

    #[inline]
    fn record_load(&mut self, tensor: TensorId) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.touch[tensor.0 as usize].0 += 1;
        }
    }

    #[inline]
    fn record_store(&mut self, tensor: TensorId) {
        self.store_gens[tensor.0 as usize] += 1;
        if let Some(scope) = self.scopes.last_mut() {
            scope.touch[tensor.0 as usize].1 += 1;
        }
    }

    // -- launching ----------------------------------------------------

    fn launch(&mut self, kernel_idx: usize, kernel: &CompiledKernel, batch_index: Option<i64>) {
        self.cur_kernel = kernel_idx;
        self.profile.launches += 1;
        self.profile.host_api_calls += 1;
        // Per-batch kernels are wave work: their parameter reads recur
        // every wave and are what persistence would pin.
        self.push_scope(kernel.launch == LaunchPattern::PerInternalBatch);
        if let Some(bv) = kernel.batch_slot {
            self.slots[bv] = batch_index.expect("per-batch kernel needs a batch index");
        }
        for s in &kernel.body {
            self.exec_stmt(s);
        }
        self.pop_scope();
    }

    // -- statement execution -------------------------------------------

    fn exec_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                extent,
                dim,
                body,
                ..
            } => {
                let n = self.eval_idx(extent);
                let slot = var.id() as usize;
                let is_wave = matches!(dim, Some(d) if d.0 == "d_all_batches");
                let is_node_loop = matches!(dim, Some(d) if d.0 == "d_batch");
                if is_node_loop {
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.width = scope.width.max(n.max(0) as u64);
                    }
                }
                // Batched wavefront execution: if this node loop has a
                // wave plan, run each stacking group of recognized
                // reduction sites as one packed GEMM over the whole wave,
                // then interpret the loop normally with `Sum`s served
                // from the result matrices. Waves below the width
                // threshold skip packing entirely — the scalar fastdot
                // path is cheaper there and produces the identical
                // `Profile`.
                let mut activated = (0usize, 0usize);
                if n > 0 && !self.wave_plans.is_empty() {
                    let plans = self.wave_plans.clone();
                    let for_key = s as *const Stmt as usize;
                    if let Some(plan) = plans.get(&for_key) {
                        if (n as usize) < self.opts.min_wave_width {
                            self.caches.stats.narrow_waves_skipped += 1;
                        } else {
                            activated = self.prepare_wave(plan, for_key, n as usize, None);
                        }
                    }
                }
                // Bulk serving: a fused wave runs the whole loop body as
                // loop-interchanged row passes (one pass per body
                // statement over every node); a bulk feature loop runs
                // one strided row pass over its extent. Either way the
                // values and counters are identical to per-element
                // interpretation.
                let mut served = false;
                if n > 0 && !is_wave && self.opts.fastdot && self.opts.bulk {
                    let key = (self.cur_kernel, s as *const Stmt as usize);
                    let fused = self.fused_waves.clone();
                    if let Some(fw) = fused.get(&key) {
                        if self.fused_servable(fw) {
                            self.exec_fused_wave(fw, n as usize);
                            served = true;
                        }
                    } else {
                        let plans = self.bulk_plans.clone();
                        if let Some(plan) = plans.get(&key) {
                            if self.bulk_servable(plan) {
                                // Not timed: a clock pair per row pass
                                // would distort both the metric and the
                                // path ([`ExecStats::epilogue_ns`] is
                                // charged at fused-wave granularity).
                                self.exec_bulk(plan);
                                served = true;
                            }
                        }
                    }
                }
                if !served {
                    for i in 0..n.max(0) {
                        if is_wave {
                            self.push_scope(true);
                        }
                        self.slots[slot] = i;
                        for st in body {
                            self.exec_stmt(st);
                        }
                        if is_wave {
                            self.pop_scope();
                        }
                    }
                }
                if activated != (0, 0) {
                    self.finish_wave(activated);
                }
            }
            Stmt::Let { var, value, body } => {
                let v = self.eval_idx(value);
                self.slots[var.id() as usize] = v;
                for st in body {
                    self.exec_stmt(st);
                }
            }
            Stmt::Store {
                tensor,
                index,
                value,
            } => {
                let v = self.eval_val(value);
                let off = self.offset(*tensor, index);
                self.record_store(*tensor);
                let buf = self.bufs[tensor.0 as usize]
                    .as_mut()
                    .expect("stored tensor allocated");
                buf.data.as_mut()[off] = v;
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.profile.branch_checks += 1;
                let branch = if self.eval_bool(cond) {
                    then_branch
                } else {
                    else_branch
                };
                for st in branch {
                    self.exec_stmt(st);
                }
            }
            Stmt::Barrier => {
                self.profile.barriers_global += 1;
            }
        }
    }

    fn offset(&mut self, tensor: TensorId, index: &[IdxExpr]) -> usize {
        let mut coords = [0i64; 8];
        for (d, e) in index.iter().enumerate() {
            coords[d] = self.eval_idx(e);
        }
        let buf = self.bufs[tensor.0 as usize]
            .as_ref()
            .expect("tensor allocated");
        let mut off = 0usize;
        for (d, &c) in coords.iter().enumerate().take(index.len()) {
            debug_assert!(
                c >= 0 && (c as usize) < buf.dims[d],
                "index {} out of bounds for dim {} of {:?} (tensor {tensor})",
                c,
                d,
                buf.dims
            );
            off += c as usize * buf.strides[d];
        }
        off
    }

    // -- expression evaluation -------------------------------------------

    fn eval_idx(&mut self, e: &IdxExpr) -> i64 {
        match e {
            IdxExpr::Const(c) => *c,
            IdxExpr::Var(v) => self.slots[v.id() as usize],
            IdxExpr::Rt(r) => self.rt_scalar(*r),
            IdxExpr::Ufn(f, args) => {
                let a0 = self.eval_idx(&args[0]);
                match f {
                    Ufn::Child(k) => self.lin.child_array(*k as usize)[a0 as usize] as i64,
                    Ufn::Word => self.lin.word(a0 as u32) as i64,
                    Ufn::NumChildren => {
                        self.profile.leaf_check_loads += 1;
                        self.lin.num_children_of(a0 as u32) as i64
                    }
                    Ufn::BatchBegin => self.rt.batches[a0 as usize].begin() as i64,
                    Ufn::BatchLength => self.rt.batches[a0 as usize].len() as i64,
                    Ufn::NodeAt => self.lin.post_order()[a0 as usize] as i64,
                    Ufn::RootAt => self.lin.roots()[a0 as usize] as i64,
                    Ufn::StageLength => self.rt.stages[a0 as usize].len() as i64,
                    Ufn::StageNodeAt => {
                        let a1 = self.eval_idx(&args[1]);
                        self.rt.stages[a0 as usize][a1 as usize] as i64
                    }
                }
            }
            IdxExpr::Bin(op, a, b) => {
                let (x, y) = (self.eval_idx(a), self.eval_idx(b));
                match op {
                    IdxBinOp::Add => x + y,
                    IdxBinOp::Sub => x - y,
                    IdxBinOp::Mul => x * y,
                    IdxBinOp::Div => x.div_euclid(y),
                    IdxBinOp::Rem => x.rem_euclid(y),
                    IdxBinOp::Min => x.min(y),
                    IdxBinOp::Max => x.max(y),
                }
            }
        }
    }

    fn rt_scalar(&self, r: RtScalar) -> i64 {
        match r {
            RtScalar::NumNodes => self.lin.num_nodes() as i64,
            RtScalar::NumInternal => self.lin.num_internal() as i64,
            RtScalar::NumLeaves => (self.lin.num_nodes() - self.lin.num_internal()) as i64,
            RtScalar::NumInternalBatches => self.lin.internal_batches().len() as i64,
            RtScalar::LeafBegin => self.lin.num_internal() as i64,
            RtScalar::MaxBatchLen => self.rt.max_batch as i64,
            RtScalar::NumRoots => self.lin.roots().len() as i64,
            RtScalar::NumStages => self.rt.stages.len() as i64,
        }
    }

    fn eval_bool(&mut self, e: &BoolExpr) -> bool {
        match e {
            BoolExpr::Cmp(op, a, b) => {
                let (x, y) = (self.eval_idx(a), self.eval_idx(b));
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            }
            BoolExpr::IsLeaf(n) => {
                let v = self.eval_idx(n);
                self.lin.is_leaf(v as u32)
            }
            BoolExpr::And(a, b) => self.eval_bool(a) && self.eval_bool(b),
            BoolExpr::Or(a, b) => self.eval_bool(a) || self.eval_bool(b),
            BoolExpr::Not(a) => !self.eval_bool(a),
        }
    }

    fn eval_val(&mut self, e: &ValExpr) -> f32 {
        match e {
            ValExpr::Const(c) => *c,
            ValExpr::Load { tensor, index } => {
                let off = self.offset(*tensor, index);
                self.record_load(*tensor);
                self.bufs[tensor.0 as usize]
                    .as_ref()
                    .expect("loaded tensor allocated")
                    .data[off]
            }
            ValExpr::Unary(op, a) => {
                let x = self.eval_val(a);
                self.profile.flops += 1;
                match op {
                    cortex_core::expr::UnaryOp::Neg => -x,
                    cortex_core::expr::UnaryOp::Tanh => self.nonlin.tanh(x),
                    cortex_core::expr::UnaryOp::Sigmoid => self.nonlin.sigmoid(x),
                    cortex_core::expr::UnaryOp::Relu => x.max(0.0),
                    cortex_core::expr::UnaryOp::Exp => x.exp(),
                }
            }
            ValExpr::Bin(op, a, b) => {
                let x = self.eval_val(a);
                let y = self.eval_val(b);
                self.profile.flops += 1;
                match op {
                    cortex_core::expr::BinOp::Add => x + y,
                    cortex_core::expr::BinOp::Sub => x - y,
                    cortex_core::expr::BinOp::Mul => x * y,
                    cortex_core::expr::BinOp::Div => x / y,
                    cortex_core::expr::BinOp::Max => x.max(y),
                    cortex_core::expr::BinOp::Min => x.min(y),
                }
            }
            ValExpr::Sum { var, extent, body } => {
                let n = self.eval_idx(extent).max(0);
                let key = &**body as *const ValExpr as usize;
                // Wave memo: this reduction was computed by a wave GEMM —
                // serve the element and charge the exact counters the
                // scalar dot would have.
                if let Some(&(_, idx)) = self.memo.iter().find(|(k, _)| *k == key) {
                    let site = &self.active[idx];
                    let group = &self.active_groups[site.group];
                    let r = self.slots[site.n_idx_slot] as usize;
                    // Rank-2 sites gather one row per (node, j) pair.
                    let row = match site.inner {
                        None => r,
                        Some(d) => r * d.extent + self.slots[d.slot] as usize,
                    };
                    let m = &group.meta[site.meta_off + row];
                    if m.zero {
                        // The scalar path short-circuits before any
                        // accounting when a guard kills the product.
                        return 0.0;
                    }
                    let i = self.slots[site.feat_slot] as usize;
                    let value = m.scale * group.value(site.row_off + row, site.col_off + i);
                    // `m.streams` excludes the weight stream: `+1` for the
                    // weight, `+1` for the accumulate — the scalar path's
                    // `flops += k·(streams+1)` with the weight included.
                    self.profile.flops += site.k * (m.streams + 2);
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.touch[site.weight_tensor as usize].0 += site.k;
                        for &t in &m.tensors {
                            scope.touch[t as usize].0 += site.k;
                        }
                    }
                    return value;
                }
                let plan = if self.opts.fastdot {
                    match self.caches.plan_cache.get(&key) {
                        Some(p) => p.clone(),
                        None => {
                            let p = crate::fastdot::compile(*var, body).map(Rc::new);
                            self.caches.plan_cache.insert(key, p.clone());
                            p
                        }
                    }
                } else {
                    None
                };
                if let Some(plan) = plan {
                    self.eval_dot(&plan, n)
                } else {
                    let slot = var.id() as usize;
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        self.slots[slot] = k;
                        acc += self.eval_val(body);
                        self.profile.flops += 1;
                    }
                    acc
                }
            }
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                self.profile.branch_checks += 1;
                if self.eval_bool(cond) {
                    self.eval_val(then)
                } else {
                    self.eval_val(otherwise)
                }
            }
        }
    }

    /// Evaluates a site's value-level `Select` guards without touching a
    /// single profile counter (the interpreter pays the `Select`'s
    /// counters itself, once per served element). Guard conditions are
    /// index-level booleans — they load no tensors — so restoring the
    /// three counters an `IdxExpr` evaluation can bump makes the
    /// evaluation fully invisible.
    fn eval_guards_silently(&mut self, guards: &[(BoolExpr, bool)]) -> bool {
        let saved = (
            self.profile.flops,
            self.profile.leaf_check_loads,
            self.profile.branch_checks,
        );
        let ok = guards
            .iter()
            .all(|(cond, want)| self.eval_bool(cond) == *want);
        self.profile.flops = saved.0;
        self.profile.leaf_check_loads = saved.1;
        self.profile.branch_checks = saved.2;
        ok
    }

    /// Resolves the multiplicative operands of a reduction into streams
    /// (shared by the scalar dot path and the wave packing phase).
    fn resolve_product(&mut self, operands: &[crate::fastdot::Operand]) -> (Vec<Res>, f32) {
        use crate::fastdot::Operand;

        fn resolve_streams(
            interp: &mut Interp<'_>,
            op: &Operand,
            out: &mut Vec<(usize, usize, usize)>,
        ) -> bool {
            match op {
                Operand::Load {
                    tensor,
                    index,
                    k_pos,
                } => {
                    let mut base = 0usize;
                    for (d, e) in index.iter().enumerate() {
                        if d == *k_pos {
                            continue;
                        }
                        let c = interp.eval_idx(e);
                        let stride = interp.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("allocated")
                            .strides[d];
                        base += c as usize * stride;
                    }
                    let stride = interp.bufs[tensor.0 as usize]
                        .as_ref()
                        .expect("allocated")
                        .strides[*k_pos];
                    out.push((tensor.0 as usize, base, stride));
                    true
                }
                Operand::Add(parts) => {
                    for p in parts {
                        resolve_streams(interp, p, out);
                    }
                    true
                }
                Operand::Guarded { cond, inner } => {
                    if interp.eval_bool(cond) {
                        resolve_streams(interp, inner, out)
                    } else {
                        true // contributes nothing
                    }
                }
                Operand::Scalar(_) => unreachable!("scalars are resolved separately"),
            }
        }

        let mut resolved: Vec<Res> = Vec::with_capacity(operands.len());
        let mut scale = 1.0f32;
        for op in operands {
            match op {
                Operand::Scalar(e) => scale *= self.eval_val(e),
                Operand::Guarded { cond, inner } => {
                    if self.eval_bool(cond) {
                        let mut streams = Vec::new();
                        resolve_streams(self, inner, &mut streams);
                        match streams.len() {
                            0 => resolved.push(Res::Zero),
                            1 => {
                                resolved.push(Res::Stream(streams[0].0, streams[0].1, streams[0].2))
                            }
                            _ => resolved.push(Res::AddStreams(streams)),
                        }
                    } else {
                        resolved.push(Res::Zero);
                    }
                }
                Operand::Load { .. } => {
                    let mut streams = Vec::new();
                    resolve_streams(self, op, &mut streams);
                    let (t, b, s) = streams[0];
                    resolved.push(Res::Stream(t, b, s));
                }
                Operand::Add(_) => {
                    let mut streams = Vec::new();
                    resolve_streams(self, op, &mut streams);
                    if streams.is_empty() {
                        resolved.push(Res::Zero);
                    } else {
                        resolved.push(Res::AddStreams(streams));
                    }
                }
            }
        }
        (resolved, scale)
    }

    /// Executes a compiled reduction as tight strided loops.
    fn eval_dot(&mut self, plan: &crate::fastdot::DotPlan, n: i64) -> f32 {
        let (resolved, scale) = self.resolve_product(&plan.operands);
        if resolved.iter().any(|r| matches!(r, Res::Zero)) || n == 0 {
            return 0.0;
        }
        // Accounting in bulk, before borrowing buffers for the hot loop.
        let n_usize = n as usize;
        let mut stream_count = 0u64;
        for r in &resolved {
            match r {
                Res::Stream(t, _, _) => {
                    stream_count += 1;
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.touch[*t].0 += n as u64;
                    }
                }
                Res::AddStreams(v) => {
                    stream_count += v.len() as u64;
                    for (t, _, _) in v {
                        if let Some(scope) = self.scopes.last_mut() {
                            scope.touch[*t].0 += n as u64;
                        }
                    }
                }
                _ => {}
            }
        }
        self.profile.flops += n as u64 * (stream_count + 1);

        let bufs = &self.bufs;
        let data = |t: usize| -> &[f32] { &bufs[t].as_ref().expect("allocated").data };
        let mut acc = 0.0f32;
        // Specialize the overwhelmingly common case: product of exactly
        // two plain streams (a matvec row).
        if resolved.len() == 2 {
            if let (Res::Stream(t0, b0, s0), Res::Stream(t1, b1, s1)) = (&resolved[0], &resolved[1])
            {
                let (d0, d1) = (data(*t0), data(*t1));
                if *s0 == 1 && *s1 == 1 {
                    acc = cortex_tensor::kernels::dot(
                        &d0[*b0..*b0 + n_usize],
                        &d1[*b1..*b1 + n_usize],
                    );
                } else {
                    for k in 0..n_usize {
                        acc += d0[b0 + k * s0] * d1[b1 + k * s1];
                    }
                }
                return scale * acc;
            }
        }
        for k in 0..n_usize {
            let mut prod = 1.0f32;
            for r in &resolved {
                match r {
                    Res::Stream(t, b, s) => prod *= data(*t)[b + k * s],
                    Res::AddStreams(v) => {
                        let mut sum = 0.0f32;
                        for (t, b, s) in v {
                            sum += data(*t)[b + k * s];
                        }
                        prod *= sum;
                    }
                    Res::Zero => unreachable!("filtered above"),
                }
            }
            acc += prod;
        }
        scale * acc
    }

    // -- bulk feature-loop serving ------------------------------------

    /// Whether every reduction a bulk plan references is currently
    /// wave-served (rank-1 or rank-2). When not — e.g. on the scalar
    /// path, after a site's runtime fallback, or for reductions the
    /// analyzer rejected — the caller falls back to the per-element
    /// interpreter.
    fn bulk_servable(&self, plan: &BulkPlan) -> bool {
        plan.sum_keys
            .iter()
            .all(|key| self.memo.iter().any(|(k, _)| k == key))
    }

    /// Runs a compiled feature loop as strided row passes. The caller
    /// must have checked [`bulk_servable`](Self::bulk_servable).
    fn exec_bulk(&mut self, plan: &BulkPlan) {
        let h = plan.h;
        let mut pool = std::mem::take(&mut self.caches.row_pool);
        let mut out = pool.pop().unwrap_or_default();
        out.resize(h, 0.0);
        self.eval_bulk(&plan.expr, plan.feat_slot, &mut out, &mut pool);

        // The store: offset evaluated once (the index is counter-free),
        // one strided write, accounting ×h exactly as `record_store`
        // per element would have.
        let (base, stride) = self.strided_offset(plan.tensor, &plan.index, Some(plan.i_pos));
        self.store_gens[plan.tensor.0 as usize] += h as u64;
        if let Some(scope) = self.scopes.last_mut() {
            scope.touch[plan.tensor.0 as usize].1 += h as u64;
        }
        let buf = self.bufs[plan.tensor.0 as usize]
            .as_mut()
            .expect("stored tensor allocated");
        let data = buf.data.as_mut();
        for (jj, v) in out.iter().enumerate() {
            data[base + jj * stride] = *v;
        }
        pool.push(out);
        self.caches.row_pool = pool;
    }

    /// Whether every bulk plan of a fused wave can serve right now
    /// (every referenced reduction memo-active — e.g. not skipped by the
    /// min-width heuristic and not fallen back at a runtime check).
    fn fused_servable(&self, fw: &FusedWave) -> bool {
        self.opts.fastdot
            && self.opts.bulk
            && fw.loops.iter().all(|fl| self.bulk_servable(&fl.plan))
    }

    /// Runs a fused wave: one row pass per body statement over every
    /// node, in body order — the interpreter's stand-in for the fused
    /// elementwise epilogue generated code would emit after the wave
    /// GEMMs. Values and `Profile` counters are identical to per-node
    /// interpretation (see [`FusedWave`]).
    fn exec_fused_wave(&mut self, fw: &FusedWave, wave_len: usize) {
        let t0 = std::time::Instant::now();
        for fl in &fw.loops {
            for r in 0..wave_len {
                self.slots[fw.n_idx_slot] = r as i64;
                if let Some((slot, value)) = &fw.node_let {
                    self.slots[*slot] = self.eval_idx(value);
                }
                match fl.outer {
                    None => self.exec_bulk(&fl.plan),
                    Some((slot, extent)) => {
                        for i in 0..extent {
                            self.slots[slot] = i as i64;
                            self.exec_bulk(&fl.plan);
                        }
                    }
                }
            }
        }
        let stats = &mut self.caches.stats;
        stats.fused_waves += 1;
        stats.epilogue_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Base offset and `i`-stride of an index list whose non-`i`
    /// positions are loop-invariant (evaluated once).
    fn strided_offset(
        &mut self,
        tensor: TensorId,
        index: &[IdxExpr],
        i_pos: Option<usize>,
    ) -> (usize, usize) {
        let mut coords = [0i64; 8];
        for (d, e) in index.iter().enumerate() {
            if Some(d) == i_pos {
                continue;
            }
            coords[d] = self.eval_idx(e);
        }
        let buf = self.bufs[tensor.0 as usize]
            .as_ref()
            .expect("tensor allocated");
        let mut base = 0usize;
        for (d, _) in index.iter().enumerate() {
            if Some(d) == i_pos {
                continue;
            }
            base += coords[d] as usize * buf.strides[d];
        }
        (base, i_pos.map_or(0, |d| buf.strides[d]))
    }

    /// Evaluates a bulk expression over the whole feature extent,
    /// charging per-element counters ×`out.len()`. Values are
    /// bit-identical to per-element evaluation: each element's value is
    /// produced by the same operation tree in the same order.
    fn eval_bulk(
        &mut self,
        e: &BulkExpr,
        feat_slot: usize,
        out: &mut [f32],
        pool: &mut Vec<Vec<f32>>,
    ) {
        let h = out.len();
        match e {
            BulkExpr::Const(c) => out.fill(*c),
            BulkExpr::Load {
                tensor,
                index,
                i_pos,
            } => {
                let (base, stride) = self.strided_offset(*tensor, index, *i_pos);
                if let Some(scope) = self.scopes.last_mut() {
                    scope.touch[tensor.0 as usize].0 += h as u64;
                }
                let data = &self.bufs[tensor.0 as usize]
                    .as_ref()
                    .expect("loaded tensor allocated")
                    .data;
                if stride == 1 {
                    out.copy_from_slice(&data[base..base + h]);
                } else {
                    for (jj, o) in out.iter_mut().enumerate() {
                        *o = data[base + jj * stride];
                    }
                }
            }
            BulkExpr::MemoSum(key) => {
                let (_, idx) = *self
                    .memo
                    .iter()
                    .find(|(k, _)| *k == *key)
                    .expect("memo-active (checked by exec_bulk)");
                // Disjoint field borrows: the group (rows, metadata) is
                // read while the profile/scope counters are written.
                let site = &self.active[idx];
                let groups = &self.active_groups;
                let profile = &mut self.profile;
                let scopes = &mut self.scopes;
                let group = &groups[site.group];
                let r = self.slots[site.n_idx_slot] as usize;
                let (k, wt) = (site.k, site.weight_tensor);
                if let Some(d) = site.inner.filter(|d| d.slot == feat_slot) {
                    // Rank-2 site whose row-side dimension rides this
                    // loop: one result element per `(node, j)` row, each
                    // with its **own** metadata (guards may differ per
                    // row), read as a strided column pass over the
                    // result matrix. Accounting is per element, exactly
                    // the scalar cadence.
                    let col = site.col_off + self.slots[site.feat_slot] as usize;
                    let mut scope = scopes.last_mut();
                    let mut flops = 0u64;
                    for (jj, o) in out.iter_mut().enumerate() {
                        let row = r * d.extent + jj;
                        let m = &group.meta[site.meta_off + row];
                        if m.zero {
                            // The scalar path short-circuits before any
                            // accounting for this element.
                            *o = 0.0;
                            continue;
                        }
                        *o = m.scale * group.value(site.row_off + row, col);
                        flops += k * (m.streams + 2);
                        if let Some(scope) = scope.as_deref_mut() {
                            scope.touch[wt as usize].0 += k;
                            for &t in &m.tensors {
                                scope.touch[t as usize].0 += k;
                            }
                        }
                    }
                    profile.flops += flops;
                    return;
                }
                // Rank-1 sites (one row per node) and rank-2 sites whose
                // row-side variable is bound outside this loop share one
                // row — and one metadata entry — for the whole extent.
                let row = match site.inner {
                    None => r,
                    Some(d) => r * d.extent + self.slots[d.slot] as usize,
                };
                let m = &group.meta[site.meta_off + row];
                if m.zero {
                    // The scalar path short-circuits before accounting.
                    out.fill(0.0);
                    return;
                }
                let (scale, grow) = (m.scale, site.row_off + row);
                if site.feat_slot == feat_slot {
                    // The site's columns are contiguous in the result
                    // row: serve the whole extent as one scaled copy.
                    let (buf, base_row): (&[f32], usize) = match &group.out {
                        GroupOut::Owned(v) => (v, 0),
                        GroupOut::Shared { buf, base } => (buf, *base),
                        GroupOut::Pending => {
                            unreachable!("wave GEMM result read before its flush")
                        }
                    };
                    let at = (base_row + grow) * group.cols + site.col_off;
                    for (o, v) in out.iter_mut().zip(&buf[at..at + h]) {
                        *o = scale * v;
                    }
                } else {
                    // The site's feature variable is bound outside this
                    // loop: one column, broadcast.
                    let col = site.col_off + self.slots[site.feat_slot] as usize;
                    out.fill(scale * group.value(grow, col));
                }
                let streams = m.streams;
                let per_tensor = k * h as u64;
                profile.flops += k * (streams + 2) * h as u64;
                if let Some(scope) = scopes.last_mut() {
                    scope.touch[wt as usize].0 += per_tensor;
                    for &t in &m.tensors {
                        scope.touch[t as usize].0 += per_tensor;
                    }
                }
            }
            BulkExpr::Unary(op, a) => {
                self.eval_bulk(a, feat_slot, out, pool);
                self.profile.flops += h as u64;
                match op {
                    cortex_core::expr::UnaryOp::Neg => out.iter_mut().for_each(|x| *x = -*x),
                    // In `Exact` mode the per-element libm calls keep
                    // bulk rows bit-identical to scalar interpretation;
                    // `Rational` substitutes the SIMD-vectorized App.
                    // A.5 approximations (≤ 1e-4 end-to-end, same
                    // counters).
                    cortex_core::expr::UnaryOp::Tanh => match self.nonlin {
                        NonlinearityMode::Exact => {
                            out.iter_mut().for_each(|x| *x = x.tanh());
                        }
                        NonlinearityMode::Rational => {
                            cortex_tensor::simd::tanh_rational_slice(out);
                        }
                    },
                    cortex_core::expr::UnaryOp::Sigmoid => match self.nonlin {
                        NonlinearityMode::Exact => {
                            out.iter_mut()
                                .for_each(|x| *x = cortex_tensor::approx::sigmoid_exact(*x));
                        }
                        NonlinearityMode::Rational => {
                            cortex_tensor::simd::sigmoid_rational_slice(out);
                        }
                    },
                    cortex_core::expr::UnaryOp::Relu => {
                        out.iter_mut().for_each(|x| *x = x.max(0.0));
                    }
                    cortex_core::expr::UnaryOp::Exp => {
                        out.iter_mut().for_each(|x| *x = x.exp());
                    }
                }
            }
            BulkExpr::Bin(op, a, b) => {
                self.eval_bulk(a, feat_slot, out, pool);
                let mut rhs = pool.pop().unwrap_or_default();
                rhs.resize(h, 0.0);
                self.eval_bulk(b, feat_slot, &mut rhs, pool);
                self.profile.flops += h as u64;
                match op {
                    cortex_core::expr::BinOp::Add => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x += *y)
                    }
                    cortex_core::expr::BinOp::Sub => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x -= *y)
                    }
                    cortex_core::expr::BinOp::Mul => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x *= *y)
                    }
                    cortex_core::expr::BinOp::Div => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x /= *y)
                    }
                    cortex_core::expr::BinOp::Max => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x = x.max(*y))
                    }
                    cortex_core::expr::BinOp::Min => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x = x.min(*y))
                    }
                }
                pool.push(rhs);
            }
            BulkExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                // The condition is feature-invariant (checked at
                // compile), so one evaluation decides every lane; the
                // scalar path would check the branch — and pay the
                // condition's counters (e.g. `NumChildren` loads) —
                // once per element, so the one evaluation's counter
                // deltas are replayed ×`h`.
                let before = (
                    self.profile.flops,
                    self.profile.leaf_check_loads,
                    self.profile.branch_checks,
                );
                self.profile.branch_checks += 1;
                let take = self.eval_bool(cond);
                let extra = (h as u64).saturating_sub(1);
                self.profile.flops += (self.profile.flops - before.0) * extra;
                self.profile.leaf_check_loads += (self.profile.leaf_check_loads - before.1) * extra;
                self.profile.branch_checks += (self.profile.branch_checks - before.2) * extra;
                // Only the taken branch is evaluated — bit-identical to
                // per-element interpretation, where every lane takes the
                // same arm.
                self.eval_bulk(if take { then } else { otherwise }, feat_slot, out, pool);
            }
        }
    }

    // -- batched wavefront execution ----------------------------------

    /// Runs the GEMM phase for every stacking group of a wave plan,
    /// making their `Sum`s servable from result matrices. Returns the
    /// number of `(sites, groups)` activated.
    ///
    /// With `defer` set (the `execute_many` path), the gathered rows are
    /// registered into the super-wave accumulator instead of running the
    /// GEMM immediately: the caller parks this request until the merged
    /// GEMMs flush and their results install.
    ///
    /// Accounting discipline: the scalar path evaluates guards, scalar
    /// factors and stream bases once per *element* (`wave_len × h` times
    /// per site); the packing phase evaluates them once per *gathered
    /// row* and multiplies the counter deltas by the served element
    /// count of every site the row serves, while the per-element loads
    /// and flops of the dot itself are charged at memo-hit time. The
    /// resulting `Profile` is identical to the scalar path's — and
    /// entirely per-request: the GEMM itself touches no counters, which
    /// is what makes cross-request merging invisible to the `Profile`.
    fn prepare_wave(
        &mut self,
        plan: &WavePlan,
        for_key: usize,
        wave_len: usize,
        mut defer: Option<(&mut SuperWaveAcc, usize)>,
    ) -> (usize, usize) {
        let mut sites = 0usize;
        let mut groups = 0usize;
        for (ordinal, group) in plan.groups.iter().enumerate() {
            let n = self.prepare_group(
                plan,
                group,
                for_key,
                ordinal,
                wave_len,
                defer.as_mut().map(|(acc, req)| (&mut **acc, *req)),
            );
            if n > 0 {
                sites += n;
                groups += 1;
            }
        }
        if groups > 0 {
            self.caches.stats.waves_batched += 1;
        }
        (sites, groups)
    }

    /// Resolves a site's weight window for this wave: `(base, i-stride,
    /// k-stride, store generation)`, or `None` when the window falls
    /// outside its buffer (scalar fallback, bit-identical results).
    ///
    /// The analysis guarantees the non-`(i,k)` index positions are
    /// wave-invariant and counter-free, so evaluating them here is
    /// invisible to the `Profile`.
    fn resolve_weight_window(
        &mut self,
        site: &SumSite,
        k_len: usize,
    ) -> Option<(usize, usize, usize, u64)> {
        let wt = site.weight.tensor.0 as usize;
        let mut coords = [0i64; 8];
        for (d, e) in site.weight.index.iter().enumerate() {
            if d == site.weight.i_pos || d == site.weight.k_pos {
                continue;
            }
            coords[d] = self.eval_idx(e);
            if coords[d] < 0 {
                return None;
            }
        }
        let buf = self.bufs[wt].as_ref().expect("weight allocated");
        let mut wbase = 0usize;
        for (d, _) in site.weight.index.iter().enumerate() {
            if d == site.weight.i_pos || d == site.weight.k_pos {
                continue;
            }
            wbase += coords[d] as usize * buf.strides[d];
        }
        let si = buf.strides[site.weight.i_pos];
        let sk = buf.strides[site.weight.k_pos];
        let h = site.feat_extent;
        if k_len > 0 && h > 0 && wbase + (h - 1) * si + (k_len - 1) * sk >= buf.data.len() {
            return None; // out-of-window weight: leave it to the scalar path
        }
        Some((wbase, si, sk, self.store_gens[wt]))
    }

    /// Packs one stacking group's weights and operand rows, runs its
    /// GEMM (or registers the rows into a pending super-wave GEMM), and
    /// activates its member sites. Returns the number of sites activated
    /// (members that fail a runtime check fall back to the scalar path
    /// individually).
    fn prepare_group(
        &mut self,
        plan: &WavePlan,
        group: &SiteGroup,
        for_key: usize,
        ordinal: usize,
        wave_len: usize,
        defer: Option<(&mut SuperWaveAcc, usize)>,
    ) -> usize {
        // The analyzer guarantees every member shares the reduction
        // extent (grouping requires structurally equal extents).
        let leader = &plan.sites[group.members[0]];
        let k_len = self.eval_idx(&leader.extent).max(0) as usize;

        let mut preps: Vec<SitePrep<'_>> = Vec::with_capacity(group.members.len());
        let mut attempted = 0usize;
        for &mi in &group.members {
            let site = &plan.sites[mi];
            if self.memo.iter().any(|(k, _)| *k == site.key) {
                continue; // defensive: a site is active at most once
            }
            attempted += 1;
            if let Some((wbase, si, sk, wgen)) = self.resolve_weight_window(site, k_len) {
                preps.push(SitePrep {
                    site,
                    wbase,
                    si,
                    sk,
                    wgen,
                });
            }
        }
        self.caches.stats.fallback_sites += (attempted - preps.len()) as u64;
        if preps.is_empty() {
            return 0;
        }

        // Pack (or reuse) the stacked weight matrix: the members'
        // `[h][K]` windows vertically concatenated for shared-rows
        // groups, the one shared `[H][K]` window for row-stacked groups.
        let leader_key = preps[0].site.key;
        let to_pack = match group.kind {
            GroupKind::SharedRows => preps.len(),
            GroupKind::SharedWeight => 1,
        };
        let cols: usize = preps[..to_pack].iter().map(|p| p.site.feat_extent).sum();
        // Validate the cached pack without materializing a signature —
        // this is the per-wave steady state and must not allocate.
        let cache_key = (leader_key, k_len);
        let run_stamp = self.caches.run_stamp;
        let cached = self
            .caches
            .weight_cache
            .get_mut(&cache_key)
            .is_some_and(|w| {
                let valid = (w.params_only || w.epoch == self.cache_epoch)
                    && w.sig.len() == preps.len()
                    && w.sig
                        .iter()
                        .zip(&preps)
                        .all(|(s, p)| *s == (p.site.key, p.wbase, p.wgen));
                if valid {
                    // Recency stamp for the LRU eviction: packs the
                    // current execution touches are the working set.
                    w.last_used = run_stamp;
                }
                valid
            });
        if !cached {
            self.caches.stats.weight_packs += 1;
            let sig: Vec<(usize, usize, u64)> = preps
                .iter()
                .map(|p| (p.site.key, p.wbase, p.wgen))
                .collect();
            let params_only = preps[..to_pack].iter().all(|p| {
                self.bufs[p.site.weight.tensor.0 as usize]
                    .as_ref()
                    .expect("weight allocated")
                    .class
                    == StorageClass::Param
            });
            let mut data = vec![0.0f32; cols * k_len];
            let mut row0 = 0usize;
            for p in &preps[..to_pack] {
                let buf = self.bufs[p.site.weight.tensor.0 as usize]
                    .as_ref()
                    .expect("weight allocated");
                for i in 0..p.site.feat_extent {
                    let src = p.wbase + i * p.si;
                    let dst = &mut data[(row0 + i) * k_len..(row0 + i + 1) * k_len];
                    if p.sk == 1 {
                        dst.copy_from_slice(&buf.data[src..src + k_len]);
                    } else {
                        for (kk, dv) in dst.iter_mut().enumerate() {
                            *dv = buf.data[src + kk * p.sk];
                        }
                    }
                }
                row0 += p.site.feat_extent;
            }
            self.caches.weight_cache.insert(
                cache_key,
                StackedWeight {
                    sig,
                    params_only,
                    epoch: self.cache_epoch,
                    last_used: run_stamp,
                    data: Rc::new(data),
                },
            );
        }
        let packed_w = self.caches.weight_cache[&cache_key].data.clone();

        // Gather phase: resolve guards/child-sums/scalars once per row
        // and pack the operand rows. Shared-rows groups gather one row
        // per node (serving every member); row-stacked groups gather one
        // block of rows per member.
        // Rank-2 sites gather one row per (node, j) pair; the analyzer
        // guarantees a shared-rows group agrees on the inner dimension
        // and keeps rank-2 sites out of row-stacked groups.
        let rows_per_node = match group.kind {
            GroupKind::SharedRows => preps[0].site.inner.map_or(1, |d| d.extent),
            GroupKind::SharedWeight => 1,
        };
        let gemm_rows = match group.kind {
            GroupKind::SharedRows => wave_len * rows_per_node,
            GroupKind::SharedWeight => preps.len() * wave_len,
        };
        let mut bufs = self
            .caches
            .group_bufs
            .get_mut(&leader_key)
            .and_then(Vec::pop)
            .unwrap_or_default();
        bufs.meta.resize_with(gemm_rows, RowMeta::default);

        let group_idx = self.active_groups.len();
        let deferred = if let Some((acc, request)) = defer {
            // Register this request's block of the merged super-wave
            // GEMM and gather straight into it; the GEMM runs at flush.
            let key = SuperKey {
                for_key,
                group_ordinal: ordinal,
                leader_key,
                cols,
                k_len,
            };
            let (entry, base) = acc.register(key, &packed_w, gemm_rows, request, group_idx);
            let rows = acc.rows_mut(entry, base, gemm_rows);
            self.gather_rows(
                plan,
                group.kind,
                &preps,
                k_len,
                rows_per_node,
                wave_len,
                rows,
                &mut bufs.meta,
            );
            true
        } else {
            bufs.rows.clear();
            bufs.rows.resize(gemm_rows * k_len, 0.0);
            let GroupBufs { rows, meta, .. } = &mut bufs;
            self.gather_rows(
                plan,
                group.kind,
                &preps,
                k_len,
                rows_per_node,
                wave_len,
                rows,
                meta,
            );
            // One cache-blocked NT GEMM for the whole group. Guard-zero
            // rows need no special handling here: the memo hit
            // short-circuits to exactly 0.0 (matching the scalar path,
            // which never touches the weight — inf/NaN containment
            // happens at that early return) so their slots in `out` are
            // never read.
            bufs.out.clear();
            bufs.out.resize(gemm_rows * cols, 0.0);
            kernels::gemm_nt_into(&mut bufs.out, &bufs.rows, &packed_w, gemm_rows, cols, k_len);
            false
        };

        let stats = &mut self.caches.stats;
        if !deferred {
            // Deferred GEMMs are counted at flush time, where several
            // requests' waves may share one launch.
            stats.wave_gemms += 1;
            stats.gemm_rows += gemm_rows as u64;
        }
        stats.sites_batched += preps.len() as u64;
        if preps.len() > 1 {
            stats.stacked_groups += 1;
            stats.stacked_sites += preps.len() as u64;
        }

        self.active_groups.push(ActiveGroup {
            leader_key,
            out: if deferred {
                GroupOut::Pending
            } else {
                GroupOut::Owned(std::mem::take(&mut bufs.out))
            },
            rows: std::mem::take(&mut bufs.rows),
            meta: std::mem::take(&mut bufs.meta),
            cols,
        });
        let mut col_off = 0usize;
        for (g, p) in preps.iter().enumerate() {
            let (row_off, c_off, meta_off) = match group.kind {
                GroupKind::SharedRows => (0, col_off, 0),
                GroupKind::SharedWeight => (g * wave_len, 0, g * wave_len),
            };
            col_off += p.site.feat_extent;
            self.memo.push((p.site.key, self.active.len()));
            self.active.push(ActiveSite {
                site_key: p.site.key,
                group: group_idx,
                row_off,
                col_off: c_off,
                meta_off,
                k: k_len as u64,
                weight_tensor: p.site.weight.tensor.0,
                feat_slot: p.site.feat_slot,
                inner: p.site.inner,
                n_idx_slot: plan.n_idx_slot,
            });
        }
        preps.len()
    }

    /// Gathers a group's operand rows (resolving guards, child-sums and
    /// scalars once per row, with the scalar path's per-element counter
    /// deltas replayed per served element) into `rows`/`meta`.
    #[allow(clippy::too_many_arguments)]
    fn gather_rows(
        &mut self,
        plan: &WavePlan,
        kind: GroupKind,
        preps: &[SitePrep<'_>],
        k_len: usize,
        rows_per_node: usize,
        wave_len: usize,
        rows: &mut [f32],
        meta: &mut [RowMeta],
    ) {
        match kind {
            GroupKind::SharedRows => {
                // The members' row operands are structurally equal, so
                // the leader's resolution stands in for all of them; the
                // scalar path would have resolved once per served
                // element of every member, hence the Σ replay factor.
                // (Grouping requires equal `select_guards` too, so the
                // leader's guards stand in for all members.)
                let replay: u64 = preps.iter().map(|p| p.site.served_per_row as u64).sum();
                let rest = &preps[0].site.rest;
                let guards = &preps[0].site.select_guards;
                let inner = preps[0].site.inner;
                for r in 0..wave_len {
                    self.slots[plan.n_idx_slot] = r as i64;
                    if let Some((slot, value)) = &plan.node_let {
                        self.slots[*slot] = self.eval_idx(value);
                    }
                    for jv in 0..rows_per_node {
                        if let Some(d) = inner {
                            self.slots[d.slot] = jv as i64;
                        }
                        let at = r * rows_per_node + jv;
                        let row = &mut rows[at * k_len..(at + 1) * k_len];
                        self.pack_row(rest, guards, k_len, replay, row, &mut meta[at]);
                    }
                }
            }
            GroupKind::SharedWeight => {
                for (g, p) in preps.iter().enumerate() {
                    for r in 0..wave_len {
                        self.slots[plan.n_idx_slot] = r as i64;
                        if let Some((slot, value)) = &plan.node_let {
                            self.slots[*slot] = self.eval_idx(value);
                        }
                        let at = g * wave_len + r;
                        let row = &mut rows[at * k_len..(at + 1) * k_len];
                        self.pack_row(
                            &p.site.rest,
                            &p.site.select_guards,
                            k_len,
                            p.site.served_per_row as u64,
                            row,
                            &mut meta[at],
                        );
                    }
                }
            }
        }
    }

    /// Resolves one node's row operands and packs its reduction row,
    /// replicating the scalar path's per-element accounting ×`replay`
    /// (the summed feature extents of every site this row serves). The
    /// metadata entry is rewritten in place so its `tensors` allocation
    /// is recycled across waves.
    #[allow(clippy::too_many_arguments)]
    fn pack_row(
        &mut self,
        rest: &[crate::fastdot::Operand],
        guards: &[(BoolExpr, bool)],
        k_len: usize,
        replay: u64,
        out_row: &mut [f32],
        meta: &mut RowMeta,
    ) {
        // Value-level `Select` guards: when one fails, the scalar path
        // never reaches this reduction for this node — no resolution,
        // no accounting, and the (pre-zeroed) row is never read, so its
        // child indirections (possibly NO_CHILD) are never resolved.
        // The evaluation is silent: the interpreter still walks each
        // `Select` per served element and pays its counters there.
        if !guards.is_empty() && !self.eval_guards_silently(guards) {
            meta.tensors.clear();
            meta.scale = 0.0;
            meta.zero = true;
            meta.streams = 0;
            return;
        }
        let before = (
            self.profile.flops,
            self.profile.leaf_check_loads,
            self.profile.branch_checks,
        );
        let (resolved, scale) = self.resolve_product(rest);
        // The scalar path would repeat this resolution for every served
        // output element; replay the counter deltas replay-1 more times.
        let extra = replay.saturating_sub(1);
        self.profile.flops += (self.profile.flops - before.0) * extra;
        self.profile.leaf_check_loads += (self.profile.leaf_check_loads - before.1) * extra;
        self.profile.branch_checks += (self.profile.branch_checks - before.2) * extra;

        meta.tensors.clear();
        meta.scale = scale;
        if resolved.iter().any(|r| matches!(r, Res::Zero)) || k_len == 0 {
            meta.zero = true;
            meta.streams = 0;
            return;
        }
        meta.zero = false;
        let mut streams = 0u64;
        for r in &resolved {
            match r {
                Res::Stream(t, _, _) => {
                    streams += 1;
                    meta.tensors.push(*t as u32);
                }
                Res::AddStreams(v) => {
                    streams += v.len() as u64;
                    meta.tensors.extend(v.iter().map(|(t, _, _)| *t as u32));
                }
                Res::Zero => unreachable!("filtered above"),
            }
        }
        meta.streams = streams;
        let bufs = &self.bufs;
        let data = |t: usize| -> &[f32] { &bufs[t].as_ref().expect("allocated").data };
        // Fast case: a single plain stream (the matvec row) is a strided
        // copy; anything else folds the product elementwise.
        match resolved.as_slice() {
            [Res::Stream(t, b, s)] => {
                let d = data(*t);
                if *s == 1 {
                    out_row.copy_from_slice(&d[*b..*b + k_len]);
                } else {
                    for (kk, ov) in out_row.iter_mut().enumerate() {
                        *ov = d[b + kk * s];
                    }
                }
            }
            [Res::AddStreams(v)] => {
                for (t, b, s) in v {
                    let d = data(*t);
                    if *s == 1 {
                        kernels::axpy(out_row, &d[*b..*b + k_len]);
                    } else {
                        for (kk, ov) in out_row.iter_mut().enumerate() {
                            *ov += d[b + kk * s];
                        }
                    }
                }
            }
            _ => {
                for (kk, ov) in out_row.iter_mut().enumerate() {
                    let mut prod = 1.0f32;
                    for r in &resolved {
                        match r {
                            Res::Stream(t, b, s) => prod *= data(*t)[b + kk * s],
                            Res::AddStreams(v) => {
                                let mut sum = 0.0f32;
                                for (t, b, s) in v {
                                    sum += data(*t)[b + kk * s];
                                }
                                prod *= sum;
                            }
                            Res::Zero => unreachable!("filtered above"),
                        }
                    }
                    *ov = prod;
                }
            }
        }
    }

    /// Deactivates the last `(sites, groups)` of a wave, returning the
    /// group buffers to the per-group pools.
    fn finish_wave(&mut self, (sites, groups): (usize, usize)) {
        for _ in 0..sites {
            let site = self.active.pop().expect("active site");
            let pos = self
                .memo
                .iter()
                .position(|(k, _)| *k == site.site_key)
                .expect("memoized site");
            self.memo.swap_remove(pos);
        }
        for _ in 0..groups {
            let group = self.active_groups.pop().expect("active group");
            // Shared (super-wave) results are dropped with their `Rc`;
            // only owned output buffers return to the pool.
            let out = match group.out {
                GroupOut::Owned(v) => v,
                GroupOut::Shared { .. } | GroupOut::Pending => Vec::new(),
            };
            self.caches
                .group_bufs
                .entry(group.leader_key)
                .or_default()
                .push(GroupBufs {
                    rows: group.rows,
                    out,
                    meta: group.meta,
                });
        }
    }

    /// Hands this request its block of a flushed super-wave GEMM result.
    fn install_wave_result(&mut self, group_idx: usize, buf: Rc<Vec<f32>>, base: usize) {
        debug_assert!(matches!(
            self.active_groups[group_idx].out,
            GroupOut::Pending
        ));
        self.active_groups[group_idx].out = GroupOut::Shared { buf, base };
    }

    // -- resumable execution (the `execute_many` step machine) ---------

    /// Advances this request until it parks at a planned wave loop whose
    /// GEMMs were deferred into `acc` ([`StepOutcome::Paused`] — resume
    /// after the flush installs results) or until the whole launch
    /// schedule completes ([`StepOutcome::Done`]).
    ///
    /// The machine walks statement paths that contain planned wave loops
    /// frame-by-frame (so it can suspend mid-loop with slot state
    /// intact) and delegates every other subtree to the recursive
    /// [`exec_stmt`](Self::exec_stmt) — both replicate the single-run
    /// executor's accounting exactly.
    fn step<'k>(
        &mut self,
        cur: &mut RunCursor<'k>,
        compiled: &'k [CompiledKernel],
        acc: &mut SuperWaveAcc,
        request: usize,
    ) -> StepOutcome {
        loop {
            if cur.frames.is_empty() {
                if cur.in_launch {
                    self.pop_scope();
                    cur.in_launch = false;
                    cur.unit += 1;
                }
                let Some(&(ki, b)) = cur.units.get(cur.unit) else {
                    if !cur.done {
                        cur.done = true;
                        self.finalize_run();
                    }
                    return StepOutcome::Done;
                };
                let kernel = &compiled[ki];
                self.cur_kernel = ki;
                self.profile.launches += 1;
                self.profile.host_api_calls += 1;
                self.push_scope(kernel.launch == LaunchPattern::PerInternalBatch);
                if let Some(bv) = kernel.batch_slot {
                    self.slots[bv] = b.expect("per-batch kernel needs a batch index");
                }
                cur.in_launch = true;
                cur.frames.push(Frame::Block {
                    stmts: &kernel.body,
                    idx: 0,
                });
                continue;
            }
            enum Action<'k> {
                Exec(&'k Stmt),
                PopBlock,
                LoopContinue,
                RunFused,
            }
            let action = match cur.frames.last_mut().expect("frame") {
                Frame::Block { stmts, idx } => {
                    if *idx < stmts.len() {
                        let s = &stmts[*idx];
                        *idx += 1;
                        Action::Exec(s)
                    } else {
                        Action::PopBlock
                    }
                }
                Frame::Loop { .. } => Action::LoopContinue,
                Frame::Fused { .. } => Action::RunFused,
            };
            match action {
                Action::PopBlock => {
                    cur.frames.pop();
                }
                Action::LoopContinue => self.loop_continue(cur),
                Action::RunFused => {
                    let Some(Frame::Fused { key, n, activated }) = cur.frames.pop() else {
                        unreachable!("fused frame")
                    };
                    // Resumed after the super-wave flush installed this
                    // request's result blocks: the whole wave's epilogue
                    // runs as fused row passes, then its sites retire.
                    let fused = self.fused_waves.clone();
                    let fw = fused.get(&key).expect("fused wave planned");
                    self.exec_fused_wave(fw, n);
                    if activated != (0, 0) {
                        self.finish_wave(activated);
                    }
                }
                Action::Exec(s) => {
                    if !self.wave_ancestors.contains(&(s as *const Stmt as usize)) {
                        // No planned wave loop below: run it atomically
                        // through the ordinary recursive interpreter.
                        self.exec_stmt(s);
                        continue;
                    }
                    match s {
                        Stmt::For { .. } => {
                            if self.enter_for(s, cur, acc, request) {
                                return StepOutcome::Paused;
                            }
                        }
                        Stmt::Let { var, value, body } => {
                            let v = self.eval_idx(value);
                            self.slots[var.id() as usize] = v;
                            cur.frames.push(Frame::Block {
                                stmts: body,
                                idx: 0,
                            });
                        }
                        Stmt::If {
                            cond,
                            then_branch,
                            else_branch,
                        } => {
                            self.profile.branch_checks += 1;
                            let branch = if self.eval_bool(cond) {
                                then_branch
                            } else {
                                else_branch
                            };
                            cur.frames.push(Frame::Block {
                                stmts: branch,
                                idx: 0,
                            });
                        }
                        Stmt::Store { .. } | Stmt::Barrier => self.exec_stmt(s),
                    }
                }
            }
        }
    }

    /// The step machine's mirror of [`exec_stmt`](Self::exec_stmt)'s
    /// `For` entry: evaluates the extent, records wave width, runs the
    /// wave-plan prepare phase (with GEMMs deferred into `acc`), and
    /// pushes the loop's first iteration. Returns whether the request
    /// must park for a super-wave flush.
    fn enter_for<'k>(
        &mut self,
        s: &'k Stmt,
        cur: &mut RunCursor<'k>,
        acc: &mut SuperWaveAcc,
        request: usize,
    ) -> bool {
        let Stmt::For {
            var,
            extent,
            dim,
            body,
            ..
        } = s
        else {
            unreachable!("enter_for on a non-For statement")
        };
        let n = self.eval_idx(extent);
        let slot = var.id() as usize;
        let is_wave = matches!(dim, Some(d) if d.0 == "d_all_batches");
        if matches!(dim, Some(d) if d.0 == "d_batch") {
            if let Some(scope) = self.scopes.last_mut() {
                scope.width = scope.width.max(n.max(0) as u64);
            }
        }
        let mut activated = (0usize, 0usize);
        let mut paused = false;
        if n > 0 && !self.wave_plans.is_empty() {
            let plans = self.wave_plans.clone();
            let for_key = s as *const Stmt as usize;
            if let Some(plan) = plans.get(&for_key) {
                if (n as usize) < self.opts.min_wave_width {
                    self.caches.stats.narrow_waves_skipped += 1;
                } else {
                    activated = self.prepare_wave(plan, for_key, n as usize, Some((acc, request)));
                    paused = activated.1 > 0;
                }
            }
        }
        if n > 0 {
            // A parked fusable wave runs its whole body as fused row
            // passes once the flush installs results, instead of
            // resuming per-node frames.
            if paused {
                let key = (self.cur_kernel, s as *const Stmt as usize);
                let fused = self.fused_waves.clone();
                if let Some(fw) = fused.get(&key) {
                    if self.fused_servable(fw) {
                        cur.frames.push(Frame::Fused {
                            key,
                            n: n as usize,
                            activated,
                        });
                        return true;
                    }
                }
            }
            cur.frames.push(Frame::Loop {
                stmt: s,
                i: 0,
                n,
                is_wave,
                activated,
            });
            if is_wave {
                self.push_scope(true);
            }
            self.slots[slot] = 0;
            cur.frames.push(Frame::Block {
                stmts: body,
                idx: 0,
            });
        }
        paused
    }

    /// One loop-body completion in the step machine: close the finished
    /// iteration's wave scope, then either start the next iteration or
    /// pop the loop (deactivating its wave sites).
    fn loop_continue<'k>(&mut self, cur: &mut RunCursor<'k>) {
        let next_body: Option<&'k [Stmt]> = {
            let Some(Frame::Loop {
                stmt,
                i,
                n,
                is_wave,
                ..
            }) = cur.frames.last_mut()
            else {
                unreachable!("loop_continue without a loop frame")
            };
            if *is_wave {
                self.pop_scope();
            }
            *i += 1;
            if *i < *n {
                let Stmt::For { var, body, .. } = *stmt else {
                    unreachable!("loop frame holds a For")
                };
                if *is_wave {
                    self.push_scope(true);
                }
                self.slots[var.id() as usize] = *i;
                Some(body)
            } else {
                None
            }
        };
        match next_body {
            Some(body) => cur.frames.push(Frame::Block {
                stmts: body,
                idx: 0,
            }),
            None => {
                let Some(Frame::Loop { activated, .. }) = cur.frames.pop() else {
                    unreachable!("loop frame")
                };
                if activated != (0, 0) {
                    self.finish_wave(activated);
                }
            }
        }
    }
}

/// Whether a [`Interp::step`] call suspended or finished the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    /// Parked at a planned wave loop; pending super-wave GEMMs must
    /// flush (and install) before the next `step`.
    Paused,
    /// The launch schedule completed and post-run accounting ran.
    Done,
}

/// One suspended position in a kernel body.
enum Frame<'k> {
    /// Executing `stmts[idx..]` of a statement list.
    Block { stmts: &'k [Stmt], idx: usize },
    /// A `For` loop mid-flight: iteration `i` of `n` is on the frame
    /// stack above (as a `Block`), with `activated` wave sites to
    /// deactivate when the loop closes.
    Loop {
        stmt: &'k Stmt,
        i: i64,
        n: i64,
        is_wave: bool,
        activated: (usize, usize),
    },
    /// A parked fusable wave loop: once the pending super-wave flush
    /// installs this request's result blocks, the whole body runs as
    /// fused bulk passes ([`Interp::exec_fused_wave`]) and the wave's
    /// `activated` sites retire.
    Fused {
        key: (usize, usize),
        n: usize,
        activated: (usize, usize),
    },
}

/// The resumable execution state of one request in a batch: its launch
/// schedule position plus the frame stack of the statement walk. Loop
/// variables live in the interpreter's slot array (which nothing
/// unwinds), so suspending at a wave loop and resuming after the flush
/// needs no re-evaluation of any control expression — the counters
/// stay exactly those of an uninterrupted run.
struct RunCursor<'k> {
    units: Vec<(usize, Option<i64>)>,
    unit: usize,
    in_launch: bool,
    frames: Vec<Frame<'k>>,
    done: bool,
}

impl<'k> RunCursor<'k> {
    fn new(units: Vec<(usize, Option<i64>)>) -> Self {
        RunCursor {
            units,
            unit: 0,
            in_launch: false,
            frames: Vec::new(),
            done: false,
        }
    }
}

// ---------------------------------------------------------------------
// Bulk feature-loop serving
// ---------------------------------------------------------------------

/// A compiled feature-store loop `for i in 0..H { t[…, i] = expr(i) }`
/// whose body the executor can serve with strided row passes instead of
/// `H` interpreted element walks: every `Sum` is served from an active
/// wave GEMM, every load is a plain `i`-strided stream, and the
/// per-element profile counters are *uniform in `i`* (no selects, no
/// counting uninterpreted functions), so the exact scalar accounting is
/// replayed in bulk (`×H`). This is the interpreter's stand-in for the
/// vectorized elementwise epilogue generated code would fuse after the
/// wave GEMM — without it, serving-side batching wins drown in
/// per-element interpretation overhead.
struct BulkPlan {
    /// Loop extent `H`.
    h: usize,
    /// Slot of the loop variable `i`.
    feat_slot: usize,
    /// Stored tensor and its index (position `i_pos` is `i`).
    tensor: TensorId,
    index: Vec<IdxExpr>,
    i_pos: usize,
    /// The stored value as a bulk-evaluable expression tree.
    expr: BulkExpr,
    /// `Sum` body keys that must be memo-active for the plan to run.
    sum_keys: Vec<usize>,
}

/// One node of a bulk-evaluable expression.
enum BulkExpr {
    Const(f32),
    /// A load with `i` at `i_pos` as a plain variable (or absent —
    /// a loop-invariant broadcast).
    Load {
        tensor: TensorId,
        index: Vec<IdxExpr>,
        i_pos: Option<usize>,
    },
    /// A reduction served from the wave memo (`Sum` body address).
    MemoSum(usize),
    Unary(cortex_core::expr::UnaryOp, Box<BulkExpr>),
    Bin(cortex_core::expr::BinOp, Box<BulkExpr>, Box<BulkExpr>),
    /// A value-level select whose condition is feature-invariant: one
    /// (masked) evaluation decides every lane of the row, with the
    /// condition's counters replayed ×`h` — the branch-free form of the
    /// DAG guard `select(slot < nc(n), …, 0)`.
    Select {
        cond: BoolExpr,
        then: Box<BulkExpr>,
        otherwise: Box<BulkExpr>,
    },
}

/// A parallel `d_batch` (wave) loop whose **whole body** bulk-serves: an
/// optional node binding plus one [`BulkPlan`] per body statement
/// (rank-2 store nests keep their outer feature loop in
/// [`FusedLoop::outer`]). The executor runs it as loop-interchanged row
/// passes — pass `p` serves statement `p` for every node of the wave —
/// instead of `wave_len` per-node body walks, so per-loop constants
/// (plan lookup, pool round-trips) amortize over the wave, and in
/// `run_many` over every parked request of a super-wave flush. The
/// interchange is valid because [`fused_loads_safe`] restricts
/// cross-statement reads to each node's own rows (pass order ≡ body
/// order per row) or strictly-earlier-wave rows (child indirections);
/// all profile counters are order-independent sums, so the `Profile` is
/// bit-identical to per-node interpretation.
struct FusedWave {
    /// Slot of the wave loop variable.
    n_idx_slot: usize,
    /// The `let node = value` binding directly under the loop. Its value
    /// is counter-free (checked at plan time), so re-evaluating it once
    /// per (pass, node) instead of once per node is invisible.
    node_let: Option<(usize, IdxExpr)>,
    /// One entry per body statement, in body order.
    loops: Vec<FusedLoop>,
}

/// One fused body statement: a bulk-served feature loop, with the outer
/// loop of a rank-2 store nest if present.
struct FusedLoop {
    /// `(slot, extent)` of the outer feature loop wrapping a rank-2
    /// store (`for i { for j { A[n,i,j] = … } }` serves the inner loop
    /// once per `i`).
    outer: Option<(usize, usize)>,
    plan: Rc<BulkPlan>,
}

/// Compiles every feature loop under `stmt` into the engine-lifetime
/// bulk-plan map, keyed by `(kernel index, statement address)`.
fn collect_bulk_plans(stmt: &Stmt, kernel: usize, out: &mut HashMap<(usize, usize), Rc<BulkPlan>>) {
    if let Some(plan) = compile_bulk(stmt) {
        out.insert((kernel, stmt as *const Stmt as usize), Rc::new(plan));
    }
    match stmt {
        Stmt::For { body, .. } | Stmt::Let { body, .. } => {
            body.iter().for_each(|s| collect_bulk_plans(s, kernel, out));
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                collect_bulk_plans(s, kernel, out);
            }
        }
        Stmt::Store { .. } | Stmt::Barrier => {}
    }
}

/// Finds every fusable wave loop under `stmt`.
fn collect_fused_waves(
    stmt: &Stmt,
    kernel: usize,
    bulk: &HashMap<(usize, usize), Rc<BulkPlan>>,
    out: &mut HashMap<(usize, usize), FusedWave>,
) {
    if let Some(fw) = plan_fused_wave(stmt, kernel, bulk) {
        out.insert((kernel, stmt as *const Stmt as usize), fw);
        return; // loops under this statement belong to the fused wave
    }
    match stmt {
        Stmt::For { body, .. } | Stmt::Let { body, .. } => {
            body.iter()
                .for_each(|s| collect_fused_waves(s, kernel, bulk, out));
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                collect_fused_waves(s, kernel, bulk, out);
            }
        }
        Stmt::Store { .. } | Stmt::Barrier => {}
    }
}

/// Tries to compile a parallel `d_batch` loop into a [`FusedWave`].
fn plan_fused_wave(
    stmt: &Stmt,
    kernel: usize,
    bulk: &HashMap<(usize, usize), Rc<BulkPlan>>,
) -> Option<FusedWave> {
    let Stmt::For {
        var,
        kind: cortex_core::ilir::LoopKind::Parallel,
        dim: Some(d),
        body,
        ..
    } = stmt
    else {
        return None;
    };
    if d.0 != "d_batch" {
        return None;
    }
    let (node_let, stmts): (Option<(usize, IdxExpr)>, &[Stmt]) = match body.as_slice() {
        [Stmt::Let { var, value, body }] => {
            (Some((var.id() as usize, value.clone())), body.as_slice())
        }
        other => (None, other),
    };
    if stmts.is_empty() {
        return None;
    }
    // Re-evaluating the node binding once per (pass, node) instead of
    // once per node must be counter-invisible.
    if let Some((_, value)) = &node_let {
        if crate::wave::idx_has_counting_ufn(value) {
            return None;
        }
    }
    let mut loops = Vec::new();
    for s in stmts {
        if let Some(plan) = bulk.get(&(kernel, s as *const Stmt as usize)) {
            loops.push(FusedLoop {
                outer: None,
                plan: plan.clone(),
            });
            continue;
        }
        // A rank-2 store nest: the *inner* loop carries the bulk plan,
        // served once per outer feature index.
        let Stmt::For {
            var: ov,
            extent: IdxExpr::Const(oh),
            body: obody,
            ..
        } = s
        else {
            return None;
        };
        if *oh <= 0 {
            return None;
        }
        let [inner] = obody.as_slice() else {
            return None;
        };
        let plan = bulk.get(&(kernel, inner as *const Stmt as usize))?;
        loops.push(FusedLoop {
            outer: Some((ov.id() as usize, *oh as usize)),
            plan: plan.clone(),
        });
    }
    let node_var = node_let
        .as_ref()
        .map(|(slot, _)| cortex_core::Var::from_raw(*slot as u32));
    if !fused_loads_safe(&loops, *var, node_var) {
        return None;
    }
    Some(FusedWave {
        n_idx_slot: var.id() as usize,
        node_let,
        loops,
    })
}

/// Whether running the body statements as whole-wave passes (loop
/// interchange) is observationally identical to per-node interpretation:
///
/// * every store targets a node-unique row (some non-feature index
///   position rides the wave variable), so no two nodes' passes write
///   the same cell;
/// * every load of a body-stored tensor either stays within its own
///   node's row (non-feature index positions structurally equal to the
///   store's) — where pass order coincides with body order — or reads a
///   strictly-earlier wave's row through a child indirection rooted at
///   the wave node, which no pass of this wave writes.
fn fused_loads_safe(
    loops: &[FusedLoop],
    n_idx: cortex_core::Var,
    node: Option<cortex_core::Var>,
) -> bool {
    use crate::fastdot::idx_uses_var;
    let mut stores: HashMap<TensorId, (&[IdxExpr], usize)> = HashMap::new();
    for fl in loops {
        let p = &fl.plan;
        // A store must hit a different row for every node of the wave.
        let node_dep = p.index.iter().enumerate().any(|(d, e)| {
            d != p.i_pos && (idx_uses_var(e, n_idx) || node.is_some_and(|nv| idx_uses_var(e, nv)))
        });
        if !node_dep {
            return false;
        }
        match stores.entry(p.tensor) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let &(idx, ipos) = e.get();
                if idx != p.index.as_slice() || ipos != p.i_pos {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((p.index.as_slice(), p.i_pos));
            }
        }
    }
    loops
        .iter()
        .all(|fl| bulk_expr_loads_safe(&fl.plan.expr, &stores, n_idx, node))
}

fn bulk_expr_loads_safe(
    e: &BulkExpr,
    stores: &HashMap<TensorId, (&[IdxExpr], usize)>,
    n_idx: cortex_core::Var,
    node: Option<cortex_core::Var>,
) -> bool {
    match e {
        BulkExpr::Load { tensor, index, .. } => {
            let Some(&(s_idx, s_ipos)) = stores.get(tensor) else {
                return true; // not written by this wave body
            };
            if index.len() != s_idx.len() {
                return false;
            }
            index.iter().enumerate().all(|(d, ix)| {
                // Within the stored row's feature dimension, any element
                // is same-row; elsewhere the coordinate must match the
                // store's (same node row) or be an earlier-wave child
                // row.
                d == s_ipos
                    || *ix == s_idx[d]
                    || crate::wave::is_wave_child_indirection(ix, n_idx, node)
            })
        }
        BulkExpr::Const(_) | BulkExpr::MemoSum(_) => true,
        BulkExpr::Unary(_, a) => bulk_expr_loads_safe(a, stores, n_idx, node),
        BulkExpr::Bin(_, a, b) => {
            bulk_expr_loads_safe(a, stores, n_idx, node)
                && bulk_expr_loads_safe(b, stores, n_idx, node)
        }
        // Guard conditions load no tensors.
        BulkExpr::Select {
            then, otherwise, ..
        } => {
            bulk_expr_loads_safe(then, stores, n_idx, node)
                && bulk_expr_loads_safe(otherwise, stores, n_idx, node)
        }
    }
}

/// Tries to compile a feature loop into a [`BulkPlan`].
fn compile_bulk(stmt: &Stmt) -> Option<BulkPlan> {
    let Stmt::For {
        var: feat,
        extent: IdxExpr::Const(h),
        body,
        ..
    } = stmt
    else {
        return None;
    };
    if *h <= 0 {
        return None;
    }
    let [Stmt::Store {
        tensor,
        index,
        value,
    }] = body.as_slice()
    else {
        return None;
    };
    let i_pos = plain_i_position(index, *feat)?;
    let i_pos = i_pos?; // the store must actually ride `i`
    let mut sum_keys = Vec::new();
    let expr = compile_bulk_expr(value, *feat, &mut sum_keys)?;
    Some(BulkPlan {
        h: *h as usize,
        feat_slot: feat.id() as usize,
        tensor: *tensor,
        index: index.clone(),
        i_pos,
        expr,
        sum_keys,
    })
}

/// Validates an index list for bulk serving: at most one position is
/// the plain variable `i`; every other position must be `i`-free and
/// counter-free (it is evaluated once instead of once per element).
/// Returns `None` on an invalid list, `Some(pos)` otherwise.
#[allow(clippy::option_option)]
fn plain_i_position(index: &[IdxExpr], feat: cortex_core::Var) -> Option<Option<usize>> {
    let mut i_pos = None;
    for (d, e) in index.iter().enumerate() {
        match e {
            IdxExpr::Var(v) if *v == feat => {
                if i_pos.is_some() {
                    return None;
                }
                i_pos = Some(d);
            }
            other => {
                if crate::fastdot::idx_uses_var(other, feat)
                    || crate::wave::idx_has_counting_ufn(other)
                {
                    return None;
                }
            }
        }
    }
    Some(i_pos)
}

fn compile_bulk_expr(
    e: &ValExpr,
    feat: cortex_core::Var,
    sums: &mut Vec<usize>,
) -> Option<BulkExpr> {
    match e {
        ValExpr::Const(c) => Some(BulkExpr::Const(*c)),
        ValExpr::Load { tensor, index } => {
            let i_pos = plain_i_position(index, feat)?;
            Some(BulkExpr::Load {
                tensor: *tensor,
                index: index.clone(),
                i_pos,
            })
        }
        ValExpr::Unary(op, a) => Some(BulkExpr::Unary(
            *op,
            Box::new(compile_bulk_expr(a, feat, sums)?),
        )),
        ValExpr::Bin(op, a, b) => Some(BulkExpr::Bin(
            *op,
            Box::new(compile_bulk_expr(a, feat, sums)?),
            Box::new(compile_bulk_expr(b, feat, sums)?),
        )),
        ValExpr::Sum { body, .. } => {
            let key = &**body as *const ValExpr as usize;
            sums.push(key);
            Some(BulkExpr::MemoSum(key))
        }
        // A select whose condition is feature-invariant is uniform over
        // the row: one condition evaluation (its counters replayed ×h,
        // plus the per-element branch check) selects the branch for
        // every lane. Feature-dependent conditions stay per-element.
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            if crate::fastdot::bool_uses_var(cond, feat) {
                return None;
            }
            Some(BulkExpr::Select {
                cond: cond.clone(),
                then: Box::new(compile_bulk_expr(then, feat, sums)?),
                otherwise: Box::new(compile_bulk_expr(otherwise, feat, sums)?),
            })
        }
    }
}

// ---------------------------------------------------------------------
// Kernel compilation: dense variable slots
// ---------------------------------------------------------------------

struct CompiledKernel {
    launch: LaunchPattern,
    batch_slot: Option<usize>,
    body: Vec<Stmt>,
    num_slots: usize,
}

#[derive(Default)]
struct SlotMap {
    map: HashMap<u32, u32>,
}

impl SlotMap {
    fn slot(&mut self, v: cortex_core::Var) -> cortex_core::Var {
        let next = self.map.len() as u32;
        let s = *self.map.entry(v.id()).or_insert(next);
        cortex_core::Var::from_raw(s)
    }
}

impl CompiledKernel {
    fn compile(kernel: &cortex_core::ilir::Kernel) -> Self {
        let mut slots = SlotMap::default();
        let batch_slot = kernel.batch_var.map(|v| slots.slot(v).id() as usize);
        let body = kernel
            .body
            .iter()
            .map(|s| remap_stmt(s, &mut slots))
            .collect();
        CompiledKernel {
            launch: kernel.launch,
            batch_slot,
            body,
            num_slots: slots.map.len(),
        }
    }
}

fn remap_stmt(s: &Stmt, m: &mut SlotMap) -> Stmt {
    match s {
        Stmt::For {
            var,
            extent,
            kind,
            dim,
            body,
        } => Stmt::For {
            var: m.slot(*var),
            extent: remap_idx(extent, m),
            kind: *kind,
            dim: dim.clone(),
            body: body.iter().map(|st| remap_stmt(st, m)).collect(),
        },
        Stmt::Let { var, value, body } => Stmt::Let {
            var: m.slot(*var),
            value: remap_idx(value, m),
            body: body.iter().map(|st| remap_stmt(st, m)).collect(),
        },
        Stmt::Store {
            tensor,
            index,
            value,
        } => Stmt::Store {
            tensor: *tensor,
            index: index.iter().map(|e| remap_idx(e, m)).collect(),
            value: remap_val(value, m),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: remap_bool(cond, m),
            then_branch: then_branch.iter().map(|st| remap_stmt(st, m)).collect(),
            else_branch: else_branch.iter().map(|st| remap_stmt(st, m)).collect(),
        },
        Stmt::Barrier => Stmt::Barrier,
    }
}

fn remap_idx(e: &IdxExpr, m: &mut SlotMap) -> IdxExpr {
    match e {
        IdxExpr::Const(_) | IdxExpr::Rt(_) => e.clone(),
        IdxExpr::Var(v) => IdxExpr::Var(m.slot(*v)),
        IdxExpr::Ufn(f, args) => IdxExpr::Ufn(*f, args.iter().map(|a| remap_idx(a, m)).collect()),
        IdxExpr::Bin(op, a, b) => {
            IdxExpr::Bin(*op, Box::new(remap_idx(a, m)), Box::new(remap_idx(b, m)))
        }
    }
}

fn remap_bool(e: &BoolExpr, m: &mut SlotMap) -> BoolExpr {
    match e {
        BoolExpr::Cmp(op, a, b) => BoolExpr::Cmp(*op, remap_idx(a, m), remap_idx(b, m)),
        BoolExpr::IsLeaf(a) => BoolExpr::IsLeaf(remap_idx(a, m)),
        BoolExpr::And(a, b) => {
            BoolExpr::And(Box::new(remap_bool(a, m)), Box::new(remap_bool(b, m)))
        }
        BoolExpr::Or(a, b) => BoolExpr::Or(Box::new(remap_bool(a, m)), Box::new(remap_bool(b, m))),
        BoolExpr::Not(a) => BoolExpr::Not(Box::new(remap_bool(a, m))),
    }
}

fn remap_val(e: &ValExpr, m: &mut SlotMap) -> ValExpr {
    match e {
        ValExpr::Const(_) => e.clone(),
        ValExpr::Load { tensor, index } => ValExpr::Load {
            tensor: *tensor,
            index: index.iter().map(|i| remap_idx(i, m)).collect(),
        },
        ValExpr::Unary(op, a) => ValExpr::Unary(*op, Box::new(remap_val(a, m))),
        ValExpr::Bin(op, a, b) => {
            ValExpr::Bin(*op, Box::new(remap_val(a, m)), Box::new(remap_val(b, m)))
        }
        ValExpr::Sum { var, extent, body } => ValExpr::Sum {
            var: m.slot(*var),
            extent: remap_idx(extent, m),
            body: Box::new(remap_val(body, m)),
        },
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => ValExpr::Select {
            cond: remap_bool(cond, m),
            then: Box::new(remap_val(then, m)),
            otherwise: Box::new(remap_val(otherwise, m)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_core::lower::{lower, StructureInfo};
    use cortex_core::ra::{RaGraph, RaSchedule};
    use cortex_ds::datasets;
    use cortex_ds::linearizer::Linearizer;

    /// The Fig. 1 model: rnn(n) = Emb[word] at leaves, tanh(l + r) inside.
    fn tree_rnn(h: usize) -> (RaGraph, TensorId) {
        let mut g = RaGraph::new();
        let emb = g.input("Emb", &[datasets::VOCAB_SIZE as usize, h]);
        let ph = g.placeholder("rnn_ph", &[h]);
        let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
        let lh = g.compute("lh", &[h], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
        let rh = g.compute("rh", &[h], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
        let rec = g.compute("rec", &[h], |c| {
            c.read(lh, &[c.node(), c.axis(0)])
                .add(c.read(rh, &[c.node(), c.axis(0)]))
                .tanh()
        });
        let body = g.if_then_else("body", leaf, rec).unwrap();
        let rnn = g.recursion(ph, body).unwrap();
        g.mark_output(rnn);
        (g, rnn.id())
    }

    fn reference_tree_rnn(lin: &Linearized, emb: &Tensor, h: usize) -> Vec<Vec<f32>> {
        let mut vals = vec![vec![0.0f32; h]; lin.num_nodes()];
        for &n in lin.post_order() {
            if lin.is_leaf(n) {
                let w = lin.word(n) as usize;
                vals[n as usize] = emb.row(w).to_vec();
            } else {
                let l = lin.child(0, n).unwrap() as usize;
                let r = lin.child(1, n).unwrap() as usize;
                vals[n as usize] = vals[l]
                    .iter()
                    .zip(&vals[r])
                    .map(|(a, b)| (a + b).tanh())
                    .collect();
            }
        }
        vals
    }

    fn check_against_reference(schedule: &RaSchedule, tree_seed: u64) {
        let h = 8;
        let (g, out) = tree_rnn(h);
        let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
        let tree = datasets::random_binary_tree(13, tree_seed);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
        let mut params = Params::new();
        params.set("Emb", emb.clone());
        let (outputs, _) = execute(&program, &lin, &params, true).unwrap();
        let got = &outputs[&out];
        let want = reference_tree_rnn(&lin, &emb, h);
        for n in 0..lin.num_nodes() {
            for i in 0..h {
                let g = got[[n, i]];
                let w = want[n][i];
                assert!(
                    (g - w).abs() < 1e-6,
                    "mismatch at node {n} elem {i}: {g} vs {w} (schedule {schedule:?})"
                );
            }
        }
    }

    #[test]
    fn default_schedule_matches_reference() {
        check_against_reference(&RaSchedule::default(), 3);
    }

    #[test]
    fn unoptimized_schedule_matches_reference() {
        check_against_reference(&RaSchedule::unoptimized(), 4);
    }

    #[test]
    fn no_specialization_matches_reference() {
        check_against_reference(
            &RaSchedule {
                specialize: false,
                ..RaSchedule::default()
            },
            5,
        );
    }

    #[test]
    fn unbatched_matches_reference() {
        check_against_reference(
            &RaSchedule {
                dynamic_batch: false,
                ..RaSchedule::default()
            },
            6,
        );
    }

    #[test]
    fn peeled_matches_reference() {
        check_against_reference(
            &RaSchedule {
                peel: Some(4),
                ..RaSchedule::default()
            },
            7,
        );
    }

    #[test]
    fn unrolled_matches_reference() {
        check_against_reference(
            &RaSchedule {
                unroll: Some(2),
                ..RaSchedule::default()
            },
            8,
        );
    }

    #[test]
    fn leaf_check_by_load_matches_reference() {
        check_against_reference(
            &RaSchedule {
                specialize: false,
                leaf_check: cortex_core::ra::LeafCheckMode::Load,
                ..RaSchedule::default()
            },
            9,
        );
    }

    #[test]
    fn fusion_reduces_launches() {
        let h = 8;
        let (g, _) = tree_rnn(h);
        let tree = datasets::perfect_binary_tree(5, 0);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
        let mut params = Params::new();
        params.set("Emb", emb);

        let fused = lower(
            &g,
            &RaSchedule::default(),
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let unfused = lower(
            &g,
            &RaSchedule {
                fusion: cortex_core::ra::FusionMode::None,
                dense_intermediates: false,
                ..RaSchedule::default()
            },
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let (_, pf) = execute(&fused, &lin, &params, true).unwrap();
        let (_, pu) = execute(&unfused, &lin, &params, true).unwrap();
        assert!(
            pu.launches > 3 * pf.launches,
            "unfused {} vs fused {} launches",
            pu.launches,
            pf.launches
        );
    }

    #[test]
    fn persistence_reduces_param_traffic() {
        let h = 8;
        let (g, _) = tree_rnn(h);
        let program = lower(
            &g,
            &RaSchedule::default(),
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let tree = datasets::perfect_binary_tree(6, 0);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
        let mut params = Params::new();
        params.set("Emb", emb);
        let (_, with) = execute(&program, &lin, &params, true).unwrap();
        let (_, without) = execute(&program, &lin, &params, false).unwrap();
        assert!(with.param_bytes_read <= without.param_bytes_read);
    }

    #[test]
    fn conservative_barriers_inflate_counts() {
        let h = 4;
        let (g, _) = tree_rnn(h);
        let tree = datasets::perfect_binary_tree(5, 0);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
        let mut params = Params::new();
        params.set("Emb", emb);
        let dflt = lower(
            &g,
            &RaSchedule::default(),
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let cons = lower(
            &g,
            &RaSchedule {
                barrier: cortex_core::ra::BarrierMode::Conservative,
                ..RaSchedule::default()
            },
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let (_, pd) = execute(&dflt, &lin, &params, true).unwrap();
        let (_, pc) = execute(&cons, &lin, &params, true).unwrap();
        assert!(
            pc.barriers_global > pd.barriers_global,
            "conservative {} vs dependence-aware {}",
            pc.barriers_global,
            pd.barriers_global
        );
    }

    #[test]
    fn missing_param_is_reported() {
        let (g, _) = tree_rnn(4);
        let program = lower(
            &g,
            &RaSchedule::default(),
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let tree = datasets::perfect_binary_tree(2, 0);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let err = execute(&program, &lin, &Params::new(), true).unwrap_err();
        assert_eq!(err, ExecError::MissingParam("Emb".to_string()));
    }

    #[test]
    fn param_shape_is_checked() {
        let (g, _) = tree_rnn(4);
        let program = lower(
            &g,
            &RaSchedule::default(),
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let tree = datasets::perfect_binary_tree(2, 0);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let mut params = Params::new();
        params.set("Emb", Tensor::zeros(&[3, 3]));
        assert!(matches!(
            execute(&program, &lin, &params, true),
            Err(ExecError::ParamShape { .. })
        ));
    }

    #[test]
    fn weight_cache_eviction_is_lru_not_clear_all() {
        // A working set stamped by the latest run must survive eviction
        // even when the cache's lifetime population exceeds the cap —
        // the old clear-at-cap policy forced a full steady-state repack.
        let mut cache: HashMap<(usize, usize), StackedWeight> = HashMap::new();
        for i in 0..10usize {
            cache.insert(
                (i, 0),
                StackedWeight {
                    sig: Vec::new(),
                    params_only: true,
                    epoch: 0,
                    // Entries 0..4 are stale; 5..9 are the current
                    // working set.
                    last_used: if i < 5 { 1 } else { 2 },
                    data: Rc::new(Vec::new()),
                },
            );
        }
        evict_weight_cache_lru(&mut cache, 7);
        assert_eq!(cache.len(), 7);
        for i in 5..10 {
            assert!(
                cache.contains_key(&(i, 0)),
                "working-set entry {i} must survive"
            );
        }
        // Under-cap caches are untouched.
        evict_weight_cache_lru(&mut cache, 64);
        assert_eq!(cache.len(), 7);
        // A working set larger than the cap still shrinks to the cap.
        evict_weight_cache_lru(&mut cache, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn leaf_check_modes_differ_in_loads() {
        let h = 4;
        let (g, _) = tree_rnn(h);
        let tree = datasets::perfect_binary_tree(5, 0);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
        let mut params = Params::new();
        params.set("Emb", emb);
        let numbering = lower(
            &g,
            &RaSchedule {
                specialize: false,
                ..RaSchedule::default()
            },
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let by_load = lower(
            &g,
            &RaSchedule {
                specialize: false,
                leaf_check: cortex_core::ra::LeafCheckMode::Load,
                ..RaSchedule::default()
            },
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let (_, pn) = execute(&numbering, &lin, &params, true).unwrap();
        let (_, pl) = execute(&by_load, &lin, &params, true).unwrap();
        assert_eq!(pn.leaf_check_loads, 0, "Appendix-B numbering avoids loads");
        assert!(pl.leaf_check_loads > 0);
    }
}

//! Bulk feature-loop serving and fused whole-wave epilogues.
//!
//! A compiled feature-store loop `for i in 0..H { t[…, i] = expr(i) }`
//! whose body the executor can serve with strided row passes instead of
//! `H` interpreted element walks: every `Sum` is served from an active
//! wave GEMM, every load is a plain `i`-strided stream, and the
//! per-element profile counters are *uniform in `i`* (no
//! feature-dependent selects, no counting uninterpreted functions), so
//! the exact scalar accounting is replayed in bulk (`×H`). This is the
//! interpreter's stand-in for the vectorized elementwise epilogue
//! generated code would fuse after the wave GEMM — without it,
//! serving-side batching wins drown in per-element interpretation
//! overhead.
//!
//! Compilation ([`compile_bulk`], [`plan_fused_wave`]) runs once per
//! engine; execution ([`Interp::exec_bulk`], [`Interp::exec_fused_wave`])
//! is shared by both runtimes.

use std::collections::HashMap;
use std::rc::Rc;

use cortex_core::expr::{BoolExpr, IdxExpr, TensorId, ValExpr};
use cortex_core::ilir::Stmt;
use cortex_tensor::approx::NonlinearityMode;

use super::gather::GroupOut;
use super::interp::Interp;

/// A compiled feature-store loop (see module docs).
pub(crate) struct BulkPlan {
    /// Loop extent `H`.
    pub(crate) h: usize,
    /// Slot of the loop variable `i`.
    pub(crate) feat_slot: usize,
    /// Stored tensor and its index (position `i_pos` is `i`).
    pub(crate) tensor: TensorId,
    pub(crate) index: Vec<IdxExpr>,
    pub(crate) i_pos: usize,
    /// The stored value as a bulk-evaluable expression tree.
    pub(crate) expr: BulkExpr,
    /// `Sum` body keys that must be memo-active for the plan to run.
    pub(crate) sum_keys: Vec<usize>,
}

/// One node of a bulk-evaluable expression.
pub(crate) enum BulkExpr {
    Const(f32),
    /// A load with `i` at `i_pos` as a plain variable (or absent —
    /// a loop-invariant broadcast).
    Load {
        tensor: TensorId,
        index: Vec<IdxExpr>,
        i_pos: Option<usize>,
    },
    /// A reduction served from the wave memo (`Sum` body address).
    MemoSum(usize),
    Unary(cortex_core::expr::UnaryOp, Box<BulkExpr>),
    Bin(cortex_core::expr::BinOp, Box<BulkExpr>, Box<BulkExpr>),
    /// A value-level select whose condition is feature-invariant: one
    /// (masked) evaluation decides every lane of the row, with the
    /// condition's counters replayed ×`h` — the branch-free form of the
    /// DAG guard `select(slot < nc(n), …, 0)`.
    Select {
        cond: BoolExpr,
        then: Box<BulkExpr>,
        otherwise: Box<BulkExpr>,
    },
}

/// A parallel `d_batch` (wave) loop whose **whole body** bulk-serves: an
/// optional node binding plus one [`BulkPlan`] per body statement
/// (rank-2 store nests keep their outer feature loop in
/// [`FusedLoop::outer`]). The executor runs it as loop-interchanged row
/// passes — pass `p` serves statement `p` for every node of the wave —
/// instead of `wave_len` per-node body walks, so per-loop constants
/// (plan lookup, pool round-trips) amortize over the wave, and in
/// `run_many` over every parked request of a super-wave flush. The
/// interchange is valid because the parallel-safety certifier
/// ([`certify_fused`](super::analysis::parsafety::certify_fused))
/// restricts cross-statement reads to each node's own rows (pass order
/// ≡ body order per row) or strictly-earlier-wave rows (child
/// indirections); all profile counters are order-independent sums, so
/// the `Profile` is bit-identical to per-node interpretation.
pub(crate) struct FusedWave {
    /// Slot of the wave loop variable.
    pub(crate) n_idx_slot: usize,
    /// The `let node = value` binding directly under the loop. Its value
    /// is counter-free (checked at plan time), so re-evaluating it once
    /// per (pass, node) instead of once per node is invisible.
    pub(crate) node_let: Option<(usize, IdxExpr)>,
    /// One entry per body statement, in body order.
    pub(crate) loops: Vec<FusedLoop>,
}

/// One fused body statement: a bulk-served feature loop, with the outer
/// loop of a rank-2 store nest if present.
pub(crate) struct FusedLoop {
    /// `(slot, extent)` of the outer feature loop wrapping a rank-2
    /// store (`for i { for j { A[n,i,j] = … } }` serves the inner loop
    /// once per `i`).
    pub(crate) outer: Option<(usize, usize)>,
    pub(crate) plan: Rc<BulkPlan>,
}

/// Compiles every feature loop under `stmt` into the engine-lifetime
/// bulk-plan map, keyed by `(kernel index, statement address)`.
pub(crate) fn collect_bulk_plans(
    stmt: &Stmt,
    kernel: usize,
    out: &mut HashMap<(usize, usize), Rc<BulkPlan>>,
) {
    if let Some(plan) = compile_bulk(stmt) {
        out.insert((kernel, stmt as *const Stmt as usize), Rc::new(plan));
    }
    match stmt {
        Stmt::For { body, .. } | Stmt::Let { body, .. } => {
            body.iter().for_each(|s| collect_bulk_plans(s, kernel, out));
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                collect_bulk_plans(s, kernel, out);
            }
        }
        Stmt::Store { .. } | Stmt::Barrier => {}
    }
}

/// Finds every fusable wave loop under `stmt`.
pub(crate) fn collect_fused_waves(
    stmt: &Stmt,
    kernel: usize,
    bulk: &HashMap<(usize, usize), Rc<BulkPlan>>,
    out: &mut HashMap<(usize, usize), Rc<FusedWave>>,
) {
    if let Some(fw) = plan_fused_wave(stmt, kernel, bulk) {
        out.insert((kernel, stmt as *const Stmt as usize), Rc::new(fw));
        return; // loops under this statement belong to the fused wave
    }
    match stmt {
        Stmt::For { body, .. } | Stmt::Let { body, .. } => {
            body.iter()
                .for_each(|s| collect_fused_waves(s, kernel, bulk, out));
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                collect_fused_waves(s, kernel, bulk, out);
            }
        }
        Stmt::Store { .. } | Stmt::Barrier => {}
    }
}

/// Tries to compile a parallel `d_batch` loop into a [`FusedWave`].
fn plan_fused_wave(
    stmt: &Stmt,
    kernel: usize,
    bulk: &HashMap<(usize, usize), Rc<BulkPlan>>,
) -> Option<FusedWave> {
    let Stmt::For {
        var,
        kind: cortex_core::ilir::LoopKind::Parallel,
        dim: Some(d),
        body,
        ..
    } = stmt
    else {
        return None;
    };
    if d.0 != "d_batch" {
        return None;
    }
    let (node_let, stmts): (Option<(usize, IdxExpr)>, &[Stmt]) = match body.as_slice() {
        [Stmt::Let { var, value, body }] => {
            (Some((var.id() as usize, value.clone())), body.as_slice())
        }
        other => (None, other),
    };
    if stmts.is_empty() {
        return None;
    }
    // Re-evaluating the node binding once per (pass, node) instead of
    // once per node must be counter-invisible.
    if let Some((_, value)) = &node_let {
        if crate::wave::idx_has_counting_ufn(value) {
            return None;
        }
    }
    let mut loops = Vec::new();
    for s in stmts {
        if let Some(plan) = bulk.get(&(kernel, s as *const Stmt as usize)) {
            loops.push(FusedLoop {
                outer: None,
                plan: plan.clone(),
            });
            continue;
        }
        // A rank-2 store nest: the *inner* loop carries the bulk plan,
        // served once per outer feature index.
        let Stmt::For {
            var: ov,
            extent: IdxExpr::Const(oh),
            body: obody,
            ..
        } = s
        else {
            return None;
        };
        if *oh <= 0 {
            return None;
        }
        let [inner] = obody.as_slice() else {
            return None;
        };
        let plan = bulk.get(&(kernel, inner as *const Stmt as usize))?;
        loops.push(FusedLoop {
            outer: Some((ov.id() as usize, *oh as usize)),
            plan: plan.clone(),
        });
    }
    let node_var = node_let
        .as_ref()
        .map(|(slot, _)| cortex_core::Var::from_raw(*slot as u32));
    // Only row-disjoint bodies fuse: the loop interchange (and any
    // future row-parallel execution) needs the certificate.
    let safety = super::analysis::parsafety::certify_fused(&loops, *var, node_var);
    if safety != super::analysis::ParSafety::RowDisjoint {
        return None;
    }
    Some(FusedWave {
        n_idx_slot: var.id() as usize,
        node_let,
        loops,
    })
}

/// Tries to compile a feature loop into a [`BulkPlan`].
fn compile_bulk(stmt: &Stmt) -> Option<BulkPlan> {
    let Stmt::For {
        var: feat,
        extent: IdxExpr::Const(h),
        body,
        ..
    } = stmt
    else {
        return None;
    };
    if *h <= 0 {
        return None;
    }
    let [Stmt::Store {
        tensor,
        index,
        value,
    }] = body.as_slice()
    else {
        return None;
    };
    let i_pos = plain_i_position(index, *feat)?;
    let i_pos = i_pos?; // the store must actually ride `i`
    let mut sum_keys = Vec::new();
    let expr = compile_bulk_expr(value, *feat, &mut sum_keys)?;
    Some(BulkPlan {
        h: *h as usize,
        feat_slot: feat.id() as usize,
        tensor: *tensor,
        index: index.clone(),
        i_pos,
        expr,
        sum_keys,
    })
}

/// Validates an index list for bulk serving: at most one position is
/// the plain variable `i`; every other position must be `i`-free and
/// counter-free (it is evaluated once instead of once per element).
/// Returns `None` on an invalid list, `Some(pos)` otherwise.
#[allow(clippy::option_option)]
fn plain_i_position(index: &[IdxExpr], feat: cortex_core::Var) -> Option<Option<usize>> {
    let mut i_pos = None;
    for (d, e) in index.iter().enumerate() {
        match e {
            IdxExpr::Var(v) if *v == feat => {
                if i_pos.is_some() {
                    return None;
                }
                i_pos = Some(d);
            }
            other => {
                if crate::fastdot::idx_uses_var(other, feat)
                    || crate::wave::idx_has_counting_ufn(other)
                {
                    return None;
                }
            }
        }
    }
    Some(i_pos)
}

fn compile_bulk_expr(
    e: &ValExpr,
    feat: cortex_core::Var,
    sums: &mut Vec<usize>,
) -> Option<BulkExpr> {
    match e {
        ValExpr::Const(c) => Some(BulkExpr::Const(*c)),
        ValExpr::Load { tensor, index } => {
            let i_pos = plain_i_position(index, feat)?;
            Some(BulkExpr::Load {
                tensor: *tensor,
                index: index.clone(),
                i_pos,
            })
        }
        ValExpr::Unary(op, a) => Some(BulkExpr::Unary(
            *op,
            Box::new(compile_bulk_expr(a, feat, sums)?),
        )),
        ValExpr::Bin(op, a, b) => Some(BulkExpr::Bin(
            *op,
            Box::new(compile_bulk_expr(a, feat, sums)?),
            Box::new(compile_bulk_expr(b, feat, sums)?),
        )),
        ValExpr::Sum { body, .. } => {
            let key = &**body as *const ValExpr as usize;
            sums.push(key);
            Some(BulkExpr::MemoSum(key))
        }
        // A select whose condition is feature-invariant is uniform over
        // the row: one condition evaluation (its counters replayed ×h,
        // plus the per-element branch check) selects the branch for
        // every lane. Feature-dependent conditions stay per-element.
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            if crate::fastdot::bool_uses_var(cond, feat) {
                return None;
            }
            Some(BulkExpr::Select {
                cond: cond.clone(),
                then: Box::new(compile_bulk_expr(then, feat, sums)?),
                otherwise: Box::new(compile_bulk_expr(otherwise, feat, sums)?),
            })
        }
    }
}

impl<'a> Interp<'a> {
    /// Whether every reduction a bulk plan references is currently
    /// wave-served (rank-1 or rank-2). When not — e.g. on the scalar
    /// path, after a site's runtime fallback, or for reductions the
    /// analyzer rejected — the caller falls back to the per-element
    /// interpreter.
    pub(crate) fn bulk_servable(&self, plan: &BulkPlan) -> bool {
        plan.sum_keys
            .iter()
            .all(|key| self.memo.iter().any(|(k, _)| k == key))
    }

    /// Runs a compiled feature loop as strided row passes. The caller
    /// must have checked [`bulk_servable`](Self::bulk_servable).
    pub(crate) fn exec_bulk(&mut self, plan: &BulkPlan) {
        let h = plan.h;
        let mut pool = std::mem::take(&mut self.caches.row_pool);
        let mut out = pool.pop().unwrap_or_default();
        out.resize(h, 0.0);
        self.eval_bulk(&plan.expr, plan.feat_slot, &mut out, &mut pool);

        // The store: offset evaluated once (the index is counter-free),
        // one strided write, accounting ×h exactly as `record_store`
        // per element would have.
        let (base, stride) = self.strided_offset(plan.tensor, &plan.index, Some(plan.i_pos));
        #[cfg(feature = "checked")]
        self.shadow_check_bulk_store(plan.tensor, base, stride, h);
        self.store_gens[plan.tensor.0 as usize] += h as u64;
        if let Some(scope) = self.scopes.last_mut() {
            scope.touch[plan.tensor.0 as usize].1 += h as u64;
        }
        let buf = self.bufs[plan.tensor.0 as usize]
            .as_mut()
            .expect("stored tensor allocated");
        let data = buf.data.as_mut();
        super::checked_assert!(
            h == 0 || base + (h - 1) * stride < data.len(),
            "bulk store window [{base}..+{h}×{stride}] outside {}-element buffer",
            data.len()
        );
        for (jj, v) in out.iter().enumerate() {
            data[base + jj * stride] = *v;
        }
        pool.push(out);
        self.caches.row_pool = pool;
    }

    /// Whether every bulk plan of a fused wave can serve right now
    /// (every referenced reduction memo-active — e.g. not skipped by the
    /// min-width heuristic and not fallen back at a runtime check).
    pub(crate) fn fused_servable(&self, fw: &FusedWave) -> bool {
        self.opts.fastdot
            && self.opts.bulk
            && fw.loops.iter().all(|fl| self.bulk_servable(&fl.plan))
    }

    /// Runs a fused wave: one row pass per body statement over every
    /// node, in body order — the interpreter's stand-in for the fused
    /// elementwise epilogue generated code would emit after the wave
    /// GEMMs. Values and `Profile` counters are identical to per-node
    /// interpretation (see [`FusedWave`]).
    pub(crate) fn exec_fused_wave(&mut self, fw: &FusedWave, wave_len: usize) {
        let t0 = std::time::Instant::now();
        super::checked_assert!(
            fw.n_idx_slot < self.slots.len(),
            "fused wave index slot {} out of range",
            fw.n_idx_slot
        );
        for fl in &fw.loops {
            for r in 0..wave_len {
                #[cfg(feature = "checked")]
                self.shadow_begin_fused_row(r as i64);
                self.slots[fw.n_idx_slot] = r as i64;
                if let Some((slot, value)) = &fw.node_let {
                    self.slots[*slot] = self.eval_idx(value);
                }
                match fl.outer {
                    None => self.exec_bulk(&fl.plan),
                    Some((slot, extent)) => {
                        for i in 0..extent {
                            self.slots[slot] = i as i64;
                            self.exec_bulk(&fl.plan);
                        }
                    }
                }
            }
        }
        #[cfg(feature = "checked")]
        self.shadow_end_fused();
        let stats = &mut self.caches.stats;
        stats.fused_waves += 1;
        stats.epilogue_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Evaluates a bulk expression over the whole feature extent,
    /// charging per-element counters ×`out.len()`. Values are
    /// bit-identical to per-element evaluation: each element's value is
    /// produced by the same operation tree in the same order.
    fn eval_bulk(
        &mut self,
        e: &BulkExpr,
        feat_slot: usize,
        out: &mut [f32],
        pool: &mut Vec<Vec<f32>>,
    ) {
        let h = out.len();
        match e {
            BulkExpr::Const(c) => out.fill(*c),
            BulkExpr::Load {
                tensor,
                index,
                i_pos,
            } => {
                let (base, stride) = self.strided_offset(*tensor, index, *i_pos);
                #[cfg(feature = "checked")]
                self.shadow_check_bulk_load(*tensor, base, stride, h);
                if let Some(scope) = self.scopes.last_mut() {
                    scope.touch[tensor.0 as usize].0 += h as u64;
                }
                let data = &self.bufs[tensor.0 as usize]
                    .as_ref()
                    .expect("loaded tensor allocated")
                    .data;
                if stride == 1 {
                    out.copy_from_slice(&data[base..base + h]);
                } else {
                    for (jj, o) in out.iter_mut().enumerate() {
                        *o = data[base + jj * stride];
                    }
                }
            }
            BulkExpr::MemoSum(key) => {
                let (_, idx) = *self
                    .memo
                    .iter()
                    .find(|(k, _)| *k == *key)
                    .expect("memo-active (checked by exec_bulk)");
                // Disjoint field borrows: the group (rows, metadata) is
                // read while the profile/scope counters are written.
                let site = &self.active[idx];
                let groups = &self.active_groups;
                let profile = &mut self.profile;
                let scopes = &mut self.scopes;
                let group = &groups[site.group];
                let r = self.slots[site.n_idx_slot] as usize;
                let (k, wt) = (site.k, site.weight_tensor);
                if let Some(d) = site.inner.filter(|d| d.slot == feat_slot) {
                    // Rank-2 site whose row-side dimension rides this
                    // loop: one result element per `(node, j)` row, each
                    // with its **own** metadata (guards may differ per
                    // row), read as a strided column pass over the
                    // result matrix. Accounting is per element, exactly
                    // the scalar cadence.
                    let col = site.col_off + self.slots[site.feat_slot] as usize;
                    let mut scope = scopes.last_mut();
                    let mut flops = 0u64;
                    for (jj, o) in out.iter_mut().enumerate() {
                        let row = r * d.extent + jj;
                        let m = &group.meta[site.meta_off + row];
                        if m.zero {
                            // The scalar path short-circuits before any
                            // accounting for this element.
                            *o = 0.0;
                            continue;
                        }
                        *o = m.scale * group.value(site.row_off + row, col);
                        flops += k * (m.streams + 2);
                        if let Some(scope) = scope.as_deref_mut() {
                            scope.touch[wt as usize].0 += k;
                            for &t in &m.tensors {
                                scope.touch[t as usize].0 += k;
                            }
                        }
                    }
                    profile.flops += flops;
                    return;
                }
                // Rank-1 sites (one row per node) and rank-2 sites whose
                // row-side variable is bound outside this loop share one
                // row — and one metadata entry — for the whole extent.
                let row = match site.inner {
                    None => r,
                    Some(d) => r * d.extent + self.slots[d.slot] as usize,
                };
                let m = &group.meta[site.meta_off + row];
                if m.zero {
                    // The scalar path short-circuits before accounting.
                    out.fill(0.0);
                    return;
                }
                let (scale, grow) = (m.scale, site.row_off + row);
                if site.feat_slot == feat_slot {
                    // The site's columns are contiguous in the result
                    // row: serve the whole extent as one scaled copy.
                    let (buf, base_row): (&[f32], usize) = match &group.out {
                        GroupOut::Owned(v) => (v, 0),
                        GroupOut::Shared { buf, base } => (buf, *base),
                        GroupOut::Pending => {
                            unreachable!("wave GEMM result read before its flush")
                        }
                    };
                    let at = (base_row + grow) * group.cols + site.col_off;
                    for (o, v) in out.iter_mut().zip(&buf[at..at + h]) {
                        *o = scale * v;
                    }
                } else {
                    // The site's feature variable is bound outside this
                    // loop: one column, broadcast.
                    let col = site.col_off + self.slots[site.feat_slot] as usize;
                    out.fill(scale * group.value(grow, col));
                }
                let streams = m.streams;
                let per_tensor = k * h as u64;
                profile.flops += k * (streams + 2) * h as u64;
                if let Some(scope) = scopes.last_mut() {
                    scope.touch[wt as usize].0 += per_tensor;
                    for &t in &m.tensors {
                        scope.touch[t as usize].0 += per_tensor;
                    }
                }
            }
            BulkExpr::Unary(op, a) => {
                self.eval_bulk(a, feat_slot, out, pool);
                self.profile.flops += h as u64;
                match op {
                    cortex_core::expr::UnaryOp::Neg => out.iter_mut().for_each(|x| *x = -*x),
                    // In `Exact` mode the per-element libm calls keep
                    // bulk rows bit-identical to scalar interpretation;
                    // `Rational` substitutes the SIMD-vectorized App.
                    // A.5 approximations (≤ 1e-4 end-to-end, same
                    // counters).
                    cortex_core::expr::UnaryOp::Tanh => match self.nonlin {
                        NonlinearityMode::Exact => {
                            out.iter_mut().for_each(|x| *x = x.tanh());
                        }
                        NonlinearityMode::Rational => {
                            cortex_tensor::simd::tanh_rational_slice(out);
                        }
                    },
                    cortex_core::expr::UnaryOp::Sigmoid => match self.nonlin {
                        NonlinearityMode::Exact => {
                            out.iter_mut()
                                .for_each(|x| *x = cortex_tensor::approx::sigmoid_exact(*x));
                        }
                        NonlinearityMode::Rational => {
                            cortex_tensor::simd::sigmoid_rational_slice(out);
                        }
                    },
                    cortex_core::expr::UnaryOp::Relu => {
                        out.iter_mut().for_each(|x| *x = x.max(0.0));
                    }
                    cortex_core::expr::UnaryOp::Exp => {
                        out.iter_mut().for_each(|x| *x = x.exp());
                    }
                }
            }
            BulkExpr::Bin(op, a, b) => {
                self.eval_bulk(a, feat_slot, out, pool);
                let mut rhs = pool.pop().unwrap_or_default();
                rhs.resize(h, 0.0);
                self.eval_bulk(b, feat_slot, &mut rhs, pool);
                self.profile.flops += h as u64;
                match op {
                    cortex_core::expr::BinOp::Add => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x += *y)
                    }
                    cortex_core::expr::BinOp::Sub => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x -= *y)
                    }
                    cortex_core::expr::BinOp::Mul => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x *= *y)
                    }
                    cortex_core::expr::BinOp::Div => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x /= *y)
                    }
                    cortex_core::expr::BinOp::Max => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x = x.max(*y))
                    }
                    cortex_core::expr::BinOp::Min => {
                        out.iter_mut().zip(&rhs).for_each(|(x, y)| *x = x.min(*y))
                    }
                }
                pool.push(rhs);
            }
            BulkExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                // The condition is feature-invariant (checked at
                // compile), so one evaluation decides every lane; the
                // scalar path would check the branch — and pay the
                // condition's counters (e.g. `NumChildren` loads) —
                // once per element, so the one evaluation's counter
                // deltas are replayed ×`h`.
                let before = (
                    self.profile.flops,
                    self.profile.leaf_check_loads,
                    self.profile.branch_checks,
                );
                self.profile.branch_checks += 1;
                let take = self.eval_bool(cond);
                let extra = (h as u64).saturating_sub(1);
                self.profile.flops += (self.profile.flops - before.0) * extra;
                self.profile.leaf_check_loads += (self.profile.leaf_check_loads - before.1) * extra;
                self.profile.branch_checks += (self.profile.branch_checks - before.2) * extra;
                // Only the taken branch is evaluated — bit-identical to
                // per-element interpretation, where every lane takes the
                // same arm.
                self.eval_bulk(if take { then } else { otherwise }, feat_slot, out, pool);
            }
        }
    }
}

//! The pc-based plan runtime: executes a lowered [`Program`].
//!
//! One flat dispatch loop over [`Op`]s replaces the recursive statement
//! walk: control flow is jump targets, loop state is a record stack plus
//! the interpreter's slot registers, and every plan decision was already
//! resolved into op operands by the lowering. Suspension (the
//! `execute_many` super-wave park) is therefore just "remember the pc":
//! a parked request is its [`PcCursor`] — program counter, launch-unit
//! index, loop records — and resuming re-enters the dispatch loop at
//! that pc with no re-evaluation of any control expression, so the
//! `Profile` is exactly that of an uninterrupted run.
//!
//! # Safety
//!
//! Ops carry raw pointers into the engine's compiled kernels (see the
//! pointer invariant on [`super::program`]). Every dereference below is
//! sound because the interpreter holds the [`Program`] via `Rc`, and the
//! program holds the compiled kernels it points into, immutably, for at
//! least as long.

use std::time::Instant;

use cortex_core::ilir::{DimExtent, LaunchPattern, Stmt};

use super::interp::Interp;
use super::program::{Op, Pc, Program};
use super::{checked_assert, ExecError, StepOutcome};
use crate::wave::SuperWaveAcc;

/// The resumable execution state of one request under the pc runtime: a
/// program counter plus its loop records. Slot values (loop variables,
/// `let` bindings) live in the interpreter's register file and are never
/// unwound, so this is the *entire* suspension state.
pub(crate) struct PcCursor {
    pub(crate) units: Vec<(usize, Option<i64>)>,
    pub(crate) unit: usize,
    pub(crate) in_launch: bool,
    pub(crate) pc: Pc,
    pub(crate) recs: Vec<LoopRec>,
    pub(crate) done: bool,
    /// Remaining back-edge budget: decremented at every [`Op::LoopNext`]
    /// (the IR's only back-edge), so a runaway loop becomes
    /// [`ExecError::Watchdog`] instead of a hang. Sized from the plan
    /// and input (see [`Interp::watchdog_fuel`]) so legitimate runs
    /// never come close.
    pub(crate) fuel: u64,
    /// The starting budget, reported in the watchdog fault.
    pub(crate) fuel_limit: u64,
}

impl PcCursor {
    pub(crate) fn new(units: Vec<(usize, Option<i64>)>, fuel: u64) -> Self {
        PcCursor {
            units,
            unit: 0,
            in_launch: false,
            pc: 0,
            recs: Vec::new(),
            done: false,
            fuel,
            fuel_limit: fuel,
        }
    }
}

/// One live loop: the dynamic half of a [`super::program::LoopDef`].
pub(crate) enum LoopRec {
    /// A per-element loop mid-flight at iteration `i` of `n` (the loop
    /// id lives in the `LoopEnter`/`LoopNext` ops bracketing the body).
    Iter {
        i: i64,
        n: i64,
        /// Wave `(sites, groups)` to retire when the loop closes.
        activated: (usize, usize),
        /// Set when this is a wave-served loop running its per-element
        /// serve phase in a solo run: the elapsed time at exit is the
        /// post-GEMM serve cost ([`super::ExecStats::serve_ns`]).
        /// `None` under `execute_many` — a park would count other
        /// requests' wall time into this request's phase.
        serve_t0: Option<Instant>,
    },
    /// A fusable wave waiting at its [`Op::FusedEpilogue`] (either
    /// reached directly in a solo run, or parked there until the
    /// super-wave flush installs this request's GEMM blocks).
    Fused {
        id: usize,
        n: usize,
        activated: (usize, usize),
    },
}

impl<'a> Interp<'a> {
    /// Runs the whole launch schedule to completion through the pc
    /// runtime (the solo path — without a deferral accumulator nothing
    /// ever parks).
    ///
    /// # Errors
    ///
    /// [`ExecError::Watchdog`] if the run exhausts its back-edge budget.
    pub(crate) fn run_program(&mut self) -> Result<(), ExecError> {
        let fuel = self.watchdog_fuel();
        let mut cur = PcCursor::new(self.launch_units(), fuel);
        let outcome = self.step_program(&mut cur, None)?;
        debug_assert_eq!(outcome, StepOutcome::Done, "solo runs never park");
        Ok(())
    }

    /// The op-count watchdog budget for one run of this input
    /// ([`super::ExecOptions::watchdog_fuel`] override, or derived): a
    /// generous multiple of plan size × node count × the largest fixed
    /// tensor dimension, so any legitimate schedule (including deep
    /// sequences iterating rank-2 stores per node) stays far below it
    /// while a non-terminating loop trips in bounded time.
    pub(crate) fn watchdog_fuel(&self) -> u64 {
        if let Some(fuel) = self.opts.watchdog_fuel {
            return fuel;
        }
        let max_dim = self
            .program
            .declared_tensors()
            .flat_map(|t| t.dims.iter())
            .filter_map(|d| match d {
                DimExtent::Fixed(n) => Some(*n as u64),
                _ => None,
            })
            .max()
            .unwrap_or(1)
            .max(1);
        64u64
            .saturating_mul(self.plan.ops.len() as u64)
            .saturating_mul(self.lin.num_nodes() as u64 + 1)
            .saturating_mul(max_dim + 1)
    }

    /// Advances this request until it parks at a wave loop whose GEMMs
    /// were deferred into `defer` ([`StepOutcome::Paused`]) or the
    /// launch schedule completes ([`StepOutcome::Done`]).
    ///
    /// # Errors
    ///
    /// [`ExecError::Watchdog`] if the cursor's back-edge budget runs out.
    pub(crate) fn step_program(
        &mut self,
        cur: &mut PcCursor,
        mut defer: Option<(&mut SuperWaveAcc, usize)>,
    ) -> Result<StepOutcome, ExecError> {
        let plan = self.plan.clone();
        loop {
            if !cur.in_launch {
                let Some(&(ki, b)) = cur.units.get(cur.unit) else {
                    if !cur.done {
                        cur.done = true;
                        self.finalize_run();
                    }
                    return Ok(StepOutcome::Done);
                };
                super::maybe_inject(
                    &self.caches.fault_hook,
                    super::FaultSite::Launch {
                        nodes: self.lin.num_nodes(),
                    },
                );
                let kernel = &plan.kernels[ki];
                self.cur_kernel = ki;
                self.profile.launches += 1;
                self.profile.host_api_calls += 1;
                self.push_scope(kernel.launch == LaunchPattern::PerInternalBatch);
                if let Some(bv) = kernel.batch_slot {
                    self.slots[bv] = b.expect("per-batch kernel needs a batch index");
                }
                cur.in_launch = true;
                cur.pc = kernel.entry;
            }
            checked_assert!(cur.pc < plan.ops.len(), "pc {} out of range", cur.pc);
            match plan.ops[cur.pc] {
                Op::KernelEnd => {
                    self.pop_scope();
                    cur.in_launch = false;
                    cur.unit += 1;
                }
                Op::Let { slot, value } => {
                    checked_assert!(slot < self.slots.len(), "Let slot {slot} out of range");
                    // SAFETY: see module docs — `value` points into the
                    // compiled kernels the program keeps alive.
                    let v = self.eval_idx(unsafe { &*value });
                    self.slots[slot] = v;
                    cur.pc += 1;
                }
                Op::Store { stmt } => {
                    // SAFETY: as above.
                    let Stmt::Store {
                        tensor,
                        index,
                        value,
                    } = (unsafe { &*stmt })
                    else {
                        unreachable!("Store op holds a Store statement")
                    };
                    self.exec_store(*tensor, index, value);
                    cur.pc += 1;
                }
                Op::Branch { cond, on_false } => {
                    self.profile.branch_checks += 1;
                    // SAFETY: as above.
                    cur.pc = if self.eval_bool(unsafe { &*cond }) {
                        cur.pc + 1
                    } else {
                        on_false
                    };
                }
                Op::Jump(target) => cur.pc = target,
                Op::Barrier => {
                    self.profile.barriers_global += 1;
                    cur.pc += 1;
                }
                Op::BulkPass { id, done } => {
                    let bulk = plan.bulks[id].clone();
                    if self.opts.fastdot && self.opts.bulk && self.bulk_servable(&bulk) {
                        self.exec_bulk(&bulk);
                        cur.pc = done;
                    } else {
                        cur.pc += 1;
                    }
                }
                Op::LoopEnter(id) => {
                    let deferring = defer.as_mut().map(|(acc, req)| (&mut **acc, *req));
                    if self.op_loop_enter(id, &plan, cur, deferring) {
                        return Ok(StepOutcome::Paused);
                    }
                }
                Op::LoopNext(id) => {
                    // The IR's only back-edge: charge the watchdog here
                    // so a non-terminating loop becomes a typed fault.
                    if cur.fuel == 0 {
                        return Err(ExecError::Watchdog {
                            limit: cur.fuel_limit,
                        });
                    }
                    cur.fuel -= 1;
                    self.op_loop_next(id, &plan, cur);
                }
                Op::FusedEpilogue => self.op_fused_epilogue(&plan, cur),
                Op::ScalarStmt { stmt } => {
                    // Never emitted by the current lowering; kept as the
                    // graceful-degradation path (see `Op::ScalarStmt`).
                    self.caches.stats.interp_stmts += 1;
                    // SAFETY: as above.
                    self.exec_stmt(unsafe { &*stmt });
                    cur.pc += 1;
                }
            }
        }
    }

    /// [`Op::LoopEnter`]: the pc mirror of the AST walker's `For` entry.
    /// Returns whether the request must park for a super-wave flush.
    fn op_loop_enter(
        &mut self,
        id: usize,
        plan: &Program,
        cur: &mut PcCursor,
        defer: Option<(&mut SuperWaveAcc, usize)>,
    ) -> bool {
        let d = &plan.loops[id];
        // SAFETY: see module docs.
        let n = self.eval_idx(unsafe { &*d.extent });
        if d.is_node {
            if let Some(scope) = self.scopes.last_mut() {
                scope.width = scope.width.max(n.max(0) as u64);
            }
        }
        let mut activated = (0usize, 0usize);
        let mut paused = false;
        if n > 0 {
            if let Some(w) = d.wave {
                let wref = &plan.waves[w];
                if (n as usize) < self.opts.min_wave_width {
                    self.caches.stats.narrow_waves_skipped += 1;
                } else {
                    let deferring = defer.is_some();
                    activated = self.prepare_wave(&wref.plan, wref.for_key, n as usize, defer);
                    paused = deferring && activated.1 > 0;
                }
            }
        }
        if n <= 0 {
            cur.pc = d.exit;
            return false;
        }
        // A fusable wave runs its whole body as bulk row passes from the
        // FusedEpilogue op — immediately in a solo run, after the flush
        // installs results when parked.
        if let Some(f) = d.fused {
            if self.opts.fastdot && self.opts.bulk && self.fused_servable(&plan.fused[f]) {
                cur.recs.push(LoopRec::Fused {
                    id,
                    n: n as usize,
                    activated,
                });
                cur.pc = d.fused_pc;
                return paused;
            }
        }
        // Per-element body: serve-phase timing only on solo wave-served
        // loops (see [`LoopRec::Iter::serve_t0`]).
        let serve_t0 = (!paused && activated.1 > 0).then(Instant::now);
        cur.recs.push(LoopRec::Iter {
            i: 0,
            n,
            activated,
            serve_t0,
        });
        if d.is_wave {
            self.push_scope(true);
        }
        checked_assert!(
            d.slot < self.slots.len(),
            "loop slot {} out of range",
            d.slot
        );
        self.slots[d.slot] = 0;
        cur.pc = d.body;
        paused
    }

    /// [`Op::LoopNext`]: close one iteration; loop back or retire.
    fn op_loop_next(&mut self, id: usize, plan: &Program, cur: &mut PcCursor) {
        let d = &plan.loops[id];
        let Some(LoopRec::Iter { i, n, .. }) = cur.recs.last_mut() else {
            unreachable!("LoopNext without its loop record")
        };
        if d.is_wave {
            self.pop_scope();
        }
        *i += 1;
        if *i < *n {
            if d.is_wave {
                self.push_scope(true);
            }
            let at = *i;
            self.slots[d.slot] = at;
            cur.pc = d.body;
        } else {
            let Some(LoopRec::Iter {
                activated,
                serve_t0,
                ..
            }) = cur.recs.pop()
            else {
                unreachable!("checked above")
            };
            if activated != (0, 0) {
                self.finish_wave(activated);
            }
            if let Some(t0) = serve_t0 {
                self.caches.stats.serve_ns += t0.elapsed().as_nanos() as u64;
            }
            cur.pc = d.exit;
        }
    }

    /// [`Op::FusedEpilogue`]: run the whole parked/fusable wave as bulk
    /// row passes, retire its sites, and exit the loop.
    fn op_fused_epilogue(&mut self, plan: &Program, cur: &mut PcCursor) {
        let Some(LoopRec::Fused { id, n, activated }) = cur.recs.pop() else {
            unreachable!("FusedEpilogue without its loop record")
        };
        let d = &plan.loops[id];
        let fw = plan.fused[d.fused.expect("fused loop def")].clone();
        self.exec_fused_wave(&fw, n);
        if activated != (0, 0) {
            self.finish_wave(activated);
        }
        cur.pc = d.exit;
    }
}

use std::collections::HashMap;
use std::rc::Rc;

use cortex_core::expr::TensorId;
use cortex_core::lower::{lower, StructureInfo};
use cortex_core::ra::{RaGraph, RaSchedule};
use cortex_ds::datasets;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_tensor::Tensor;

use super::gather::{evict_weight_cache_lru, StackedWeight};
use super::{execute, Engine, ExecError, ExecOptions};
use crate::params::Params;

/// The Fig. 1 model: rnn(n) = Emb[word] at leaves, tanh(l + r) inside.
fn tree_rnn(h: usize) -> (RaGraph, TensorId) {
    let mut g = RaGraph::new();
    let emb = g.input("Emb", &[datasets::VOCAB_SIZE as usize, h]);
    let ph = g.placeholder("rnn_ph", &[h]);
    let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
    let lh = g.compute("lh", &[h], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
    let rh = g.compute("rh", &[h], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
    let rec = g.compute("rec", &[h], |c| {
        c.read(lh, &[c.node(), c.axis(0)])
            .add(c.read(rh, &[c.node(), c.axis(0)]))
            .tanh()
    });
    let body = g.if_then_else("body", leaf, rec).unwrap();
    let rnn = g.recursion(ph, body).unwrap();
    g.mark_output(rnn);
    (g, rnn.id())
}

fn reference_tree_rnn(lin: &Linearized, emb: &Tensor, h: usize) -> Vec<Vec<f32>> {
    let mut vals = vec![vec![0.0f32; h]; lin.num_nodes()];
    for &n in lin.post_order() {
        if lin.is_leaf(n) {
            let w = lin.word(n) as usize;
            vals[n as usize] = emb.row(w).to_vec();
        } else {
            let l = lin.child(0, n).unwrap() as usize;
            let r = lin.child(1, n).unwrap() as usize;
            vals[n as usize] = vals[l]
                .iter()
                .zip(&vals[r])
                .map(|(a, b)| (a + b).tanh())
                .collect();
        }
    }
    vals
}

fn check_against_reference(schedule: &RaSchedule, tree_seed: u64) {
    let h = 8;
    let (g, out) = tree_rnn(h);
    let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
    let tree = datasets::random_binary_tree(13, tree_seed);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb.clone());
    let (outputs, _) = execute(&program, &lin, &params, true).unwrap();
    let got = &outputs[&out];
    let want = reference_tree_rnn(&lin, &emb, h);
    for n in 0..lin.num_nodes() {
        for i in 0..h {
            let g = got[[n, i]];
            let w = want[n][i];
            assert!(
                (g - w).abs() < 1e-6,
                "mismatch at node {n} elem {i}: {g} vs {w} (schedule {schedule:?})"
            );
        }
    }
}

#[test]
fn default_schedule_matches_reference() {
    check_against_reference(&RaSchedule::default(), 3);
}

#[test]
fn unoptimized_schedule_matches_reference() {
    check_against_reference(&RaSchedule::unoptimized(), 4);
}

#[test]
fn no_specialization_matches_reference() {
    check_against_reference(
        &RaSchedule {
            specialize: false,
            ..RaSchedule::default()
        },
        5,
    );
}

#[test]
fn unbatched_matches_reference() {
    check_against_reference(
        &RaSchedule {
            dynamic_batch: false,
            ..RaSchedule::default()
        },
        6,
    );
}

#[test]
fn peeled_matches_reference() {
    check_against_reference(
        &RaSchedule {
            peel: Some(4),
            ..RaSchedule::default()
        },
        7,
    );
}

#[test]
fn unrolled_matches_reference() {
    check_against_reference(
        &RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        },
        8,
    );
}

#[test]
fn leaf_check_by_load_matches_reference() {
    check_against_reference(
        &RaSchedule {
            specialize: false,
            leaf_check: cortex_core::ra::LeafCheckMode::Load,
            ..RaSchedule::default()
        },
        9,
    );
}

#[test]
fn fusion_reduces_launches() {
    let h = 8;
    let (g, _) = tree_rnn(h);
    let tree = datasets::perfect_binary_tree(5, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);

    let fused = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let unfused = lower(
        &g,
        &RaSchedule {
            fusion: cortex_core::ra::FusionMode::None,
            dense_intermediates: false,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let (_, pf) = execute(&fused, &lin, &params, true).unwrap();
    let (_, pu) = execute(&unfused, &lin, &params, true).unwrap();
    assert!(
        pu.launches > 3 * pf.launches,
        "unfused {} vs fused {} launches",
        pu.launches,
        pf.launches
    );
}

#[test]
fn persistence_reduces_param_traffic() {
    let h = 8;
    let (g, _) = tree_rnn(h);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let tree = datasets::perfect_binary_tree(6, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    let (_, with) = execute(&program, &lin, &params, true).unwrap();
    let (_, without) = execute(&program, &lin, &params, false).unwrap();
    assert!(with.param_bytes_read <= without.param_bytes_read);
}

#[test]
fn conservative_barriers_inflate_counts() {
    let h = 4;
    let (g, _) = tree_rnn(h);
    let tree = datasets::perfect_binary_tree(5, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    let dflt = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let cons = lower(
        &g,
        &RaSchedule {
            barrier: cortex_core::ra::BarrierMode::Conservative,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let (_, pd) = execute(&dflt, &lin, &params, true).unwrap();
    let (_, pc) = execute(&cons, &lin, &params, true).unwrap();
    assert!(
        pc.barriers_global > pd.barriers_global,
        "conservative {} vs dependence-aware {}",
        pc.barriers_global,
        pd.barriers_global
    );
}

#[test]
fn missing_param_is_reported() {
    let (g, _) = tree_rnn(4);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let tree = datasets::perfect_binary_tree(2, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let err = execute(&program, &lin, &Params::new(), true).unwrap_err();
    assert_eq!(err, ExecError::MissingParam("Emb".to_string()));
}

#[test]
fn param_shape_is_checked() {
    let (g, _) = tree_rnn(4);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let tree = datasets::perfect_binary_tree(2, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let mut params = Params::new();
    params.set("Emb", Tensor::zeros(&[3, 3]));
    assert!(matches!(
        execute(&program, &lin, &params, true),
        Err(ExecError::ParamShape { .. })
    ));
}

#[test]
fn weight_cache_eviction_is_lru_not_clear_all() {
    // A working set stamped by the latest run must survive eviction
    // even when the cache's lifetime population exceeds the cap —
    // the old clear-at-cap policy forced a full steady-state repack.
    let mut cache: HashMap<(usize, usize), StackedWeight> = HashMap::new();
    for i in 0..10usize {
        cache.insert(
            (i, 0),
            StackedWeight {
                sig: Vec::new(),
                params_only: true,
                epoch: 0,
                // Entries 0..4 are stale; 5..9 are the current
                // working set.
                last_used: if i < 5 { 1 } else { 2 },
                data: Rc::new(Vec::new()),
            },
        );
    }
    evict_weight_cache_lru(&mut cache, 7);
    assert_eq!(cache.len(), 7);
    for i in 5..10 {
        assert!(
            cache.contains_key(&(i, 0)),
            "working-set entry {i} must survive"
        );
    }
    // Under-cap caches are untouched.
    evict_weight_cache_lru(&mut cache, 64);
    assert_eq!(cache.len(), 7);
    // A working set larger than the cap still shrinks to the cap.
    evict_weight_cache_lru(&mut cache, 3);
    assert_eq!(cache.len(), 3);
}

#[test]
fn leaf_check_modes_differ_in_loads() {
    let h = 4;
    let (g, _) = tree_rnn(h);
    let tree = datasets::perfect_binary_tree(5, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    let numbering = lower(
        &g,
        &RaSchedule {
            specialize: false,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let by_load = lower(
        &g,
        &RaSchedule {
            specialize: false,
            leaf_check: cortex_core::ra::LeafCheckMode::Load,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let (_, pn) = execute(&numbering, &lin, &params, true).unwrap();
    let (_, pl) = execute(&by_load, &lin, &params, true).unwrap();
    assert_eq!(pn.leaf_check_loads, 0, "Appendix-B numbering avoids loads");
    assert!(pl.leaf_check_loads > 0);
}

#[test]
fn every_schedule_lowers_fully_with_no_fallback_ops() {
    // The lowering must be total over the statement grammar: whatever
    // schedule shape the RA pass emits, no `ScalarStmt` escape op may
    // appear and the plan must be non-trivial.
    use cortex_core::ra::{BarrierMode, LeafCheckMode};
    let (g, _) = tree_rnn(6);
    let schedules = [
        RaSchedule::default(),
        RaSchedule::unoptimized(),
        RaSchedule {
            specialize: false,
            leaf_check: LeafCheckMode::Load,
            ..RaSchedule::default()
        },
        RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        },
        RaSchedule {
            peel: Some(4),
            barrier: BarrierMode::Conservative,
            ..RaSchedule::default()
        },
    ];
    for schedule in &schedules {
        let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
        let engine = Engine::new(&program);
        let ps = engine.plan_stats();
        assert!(ps.plan_ops > 0, "plan must lower ({schedule:?})");
        assert_eq!(
            ps.interp_fallback_stmts, 0,
            "no AST fallback ops ({schedule:?})"
        );
    }
}

#[test]
fn pc_runtime_matches_interp_oracle_exactly() {
    // The lowered plan runtime and the AST-walking oracle must produce
    // bit-identical outputs and Profiles (the model-scale property test
    // lives in tests/wave_equivalence.rs; this is the fast unit-level
    // gate on the Fig. 1 model across schedules).
    let h = 8;
    let (g, out) = tree_rnn(h);
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    for (si, schedule) in [
        RaSchedule::default(),
        RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        },
    ]
    .iter()
    .enumerate()
    {
        let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
        let tree = datasets::random_binary_tree(17, 11 + si as u64);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let (out_pc, prof_pc) = Engine::new(&program).execute(&lin, &params, true).unwrap();
        let (out_or, prof_or) = Engine::with_options(&program, ExecOptions::interpreted())
            .execute(&lin, &params, true)
            .unwrap();
        assert_eq!(out_pc[&out], out_or[&out], "schedule {si}: bit-exact");
        assert_eq!(prof_pc, prof_or, "schedule {si}: identical profiles");
    }
}

// -- fault-injection hooks (the serving front's containment substrate) --

/// Silences the default panic report for injected-fault unwinds (they
/// are expected and caught) while leaving genuine panics loud.
fn silence_injected(f: impl FnOnce()) {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info.payload().is::<super::InjectedPanic>()
                || info.payload().is::<super::InjectedFault>();
            if !injected {
                prev(info);
            }
        }));
    });
    f();
}

/// A TreeRNN-shaped graph whose recursion is a real matvec
/// (`tanh(W · (h_l + h_r))`): its reduction waves run as wave GEMMs, so
/// the super-wave flush — and its `Gemm` fault site — engages under
/// `execute_many`.
fn matvec_tree(h: usize) -> (RaGraph, TensorId) {
    let mut g = RaGraph::new();
    let w = g.input("W", &[h, h]);
    let emb = g.input("Emb", &[datasets::VOCAB_SIZE as usize, h]);
    let ph = g.placeholder("mv_ph", &[h]);
    let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
    let rec = g.compute("rec", &[h], |c| {
        let i = c.axis(0);
        c.sum(h, |c, k| {
            c.read(w, &[i.clone(), k.clone()]).mul(
                c.read(ph, &[c.node().child(0), k.clone()])
                    .add(c.read(ph, &[c.node().child(1), k.clone()])),
            )
        })
        .tanh()
    });
    let body = g.if_then_else("body", leaf, rec).unwrap();
    let mv = g.recursion(ph, body).unwrap();
    g.mark_output(mv);
    (g, mv.id())
}

/// Shared fixture for the hook tests: program, a linearized tree, and
/// bound params.
fn fault_fixture() -> (cortex_core::ilir::IlirProgram, Linearized, Params, TensorId) {
    let h = 8;
    let (g, out) = tree_rnn(h);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let tree = datasets::random_binary_tree(9, 5);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let mut params = Params::new();
    params.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42),
    );
    (program, lin, params, out)
}

#[test]
fn injected_err_surfaces_typed_and_the_engine_recovers() {
    let (program, lin, params, out) = fault_fixture();
    let (want, want_prof) = execute(&program, &lin, &params, true).unwrap();

    let mut engine = Engine::new(&program);
    let hook: super::FaultHook = Rc::new(std::cell::RefCell::new(|site: super::FaultSite| {
        matches!(site, super::FaultSite::Launch { .. }).then_some(super::FaultAction::Err)
    }));
    engine.set_fault_hook(Some(hook));
    // The injected fault comes back as a *typed* error, not a panic.
    match engine.execute(&lin, &params, true) {
        Err(ExecError::Injected(msg)) => assert!(msg.contains("launch"), "site in message: {msg}"),
        other => panic!("expected an injected fault, got {other:?}"),
    }
    // Healing the hook heals the engine: the fault reset its caches, so
    // the next run matches an untouched engine bit-for-bit.
    engine.set_fault_hook(None);
    let (got, got_prof) = engine.execute(&lin, &params, true).unwrap();
    assert_eq!(got_prof, want_prof);
    assert_eq!(got[&out], want[&out]);
}

#[test]
fn injected_panic_unwinds_to_the_caller_and_the_engine_survives() {
    silence_injected(|| {
        let h = 8;
        let (g, out) = matvec_tree(h);
        let program = lower(
            &g,
            &RaSchedule::default(),
            StructureInfo { max_children: 2 },
        )
        .unwrap();
        let lin = Linearizer::new()
            .linearize(&datasets::random_binary_tree(9, 5))
            .unwrap();
        let mut params = Params::new();
        params.set("W", Tensor::random(&[h, h], 0.5, 7));
        params.set(
            "Emb",
            Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42),
        );
        let (want, _) = execute(&program, &lin, &params, true).unwrap();

        let mut engine = Engine::new(&program);
        let hook: super::FaultHook = Rc::new(std::cell::RefCell::new(|site: super::FaultSite| {
            matches!(site, super::FaultSite::Gemm { .. }).then_some(super::FaultAction::Panic)
        }));
        engine.set_fault_hook(Some(hook));
        // Gemm sites live in the super-wave flush, so the panic fires
        // mid-`execute_many` — with another request's caches swapped in,
        // the worst place to unwind from. Injected *panics* are
        // deliberately not converted: they unwind to the caller (the
        // serving layer's containment boundary) with the typed payload
        // intact.
        let lin2 = Linearizer::new()
            .linearize(&datasets::random_binary_tree(7, 6))
            .unwrap();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.execute_many(&[&lin, &lin2], &params, true)
        }));
        let payload = unwound.expect_err("the injected panic must unwind");
        let site = payload
            .downcast::<super::InjectedPanic>()
            .expect("typed panic payload");
        assert!(matches!(site.0, super::FaultSite::Gemm { rows } if rows > 0));
        // The engine guard reset its caches on the way out: with the
        // hook gone, the same engine serves the request correctly.
        engine.set_fault_hook(None);
        let (got, _) = engine.execute(&lin, &params, true).unwrap();
        assert_eq!(got[&out], want[&out]);
    });
}

#[test]
fn hookless_engines_pay_no_guard() {
    // The panic-containment wrapper only engages when a hook is
    // installed: a plain engine reports `None` for its hook and runs
    // the direct path (same results, no catch_unwind frame).
    let (program, lin, params, out) = fault_fixture();
    let mut engine = Engine::new(&program);
    assert!(engine.fault_hook().is_none());
    let (got, _) = engine.execute(&lin, &params, true).unwrap();
    let (want, _) = execute(&program, &lin, &params, true).unwrap();
    assert_eq!(got[&out], want[&out]);
}

// -- pipeline hardening: verifier, intake validation, budgets, watchdog --

use super::lowering::CompiledKernel;
use super::program::{Op, Program};
use super::verify::{verify, VerifyError};
use super::InvalidInput;

/// Lowers the Fig. 1 model into an *owned* (mutable) plan so tests can
/// corrupt individual ops. The ILIR program is returned to keep the
/// compiled kernels' source alive for the plan's pointer ops.
fn owned_plan() -> (cortex_core::ilir::IlirProgram, Program) {
    let (g, _) = tree_rnn(4);
    let ilir = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let compiled: Rc<Vec<CompiledKernel>> =
        Rc::new(ilir.kernels.iter().map(CompiledKernel::compile).collect());
    let plan = super::lowering::lower(&compiled, &HashMap::new(), &HashMap::new(), &HashMap::new());
    (ilir, plan)
}

#[test]
fn verify_accepts_every_lowered_schedule_and_rebuild() {
    use cortex_core::ra::{BarrierMode, LeafCheckMode};
    let (g, _) = tree_rnn(6);
    let schedules = [
        RaSchedule::default(),
        RaSchedule::unoptimized(),
        RaSchedule {
            specialize: false,
            leaf_check: LeafCheckMode::Load,
            ..RaSchedule::default()
        },
        RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        },
        RaSchedule {
            peel: Some(4),
            barrier: BarrierMode::Conservative,
            ..RaSchedule::default()
        },
    ];
    for schedule in &schedules {
        let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
        let mut engine = Engine::new(&program);
        assert_eq!(engine.verified(), Ok(()), "fresh build ({schedule:?})");
        assert_eq!(engine.plan_arity(), 2, "tree model reads children 0..2");
        // A `set_options` rebuild re-verifies the new plan.
        engine.set_options(ExecOptions::generic());
        assert_eq!(engine.verified(), Ok(()), "rebuild ({schedule:?})");
        engine.set_options(ExecOptions::default());
        assert_eq!(engine.verified(), Ok(()), "second rebuild ({schedule:?})");
    }
}

#[test]
fn verify_rejects_dangling_jump() {
    let (_ilir, mut plan) = owned_plan();
    let bad = plan.ops.len() + 100;
    // Point the first loop's exit outside the op stream; its LoopEnter
    // op must report the dangling target.
    let at = plan
        .ops
        .iter()
        .position(|op| matches!(op, Op::LoopEnter(_)))
        .expect("a loop lowers somewhere");
    let Op::LoopEnter(id) = plan.ops[at] else {
        unreachable!()
    };
    plan.loops[id].exit = bad;
    assert_eq!(
        verify(&plan),
        Err(VerifyError::DanglingJump {
            op: at,
            target: bad
        })
    );
}

#[test]
fn verify_rejects_unpaired_loop_next() {
    let (_ilir, mut plan) = owned_plan();
    assert!(plan.loops.len() >= 2, "nested loops expected");
    let at = plan
        .ops
        .iter()
        .position(|op| matches!(op, Op::LoopNext(_)))
        .expect("a loop closes somewhere");
    let Op::LoopNext(id) = plan.ops[at] else {
        unreachable!()
    };
    let wrong = (id + 1) % plan.loops.len();
    plan.ops[at] = Op::LoopNext(wrong);
    assert_eq!(
        verify(&plan),
        Err(VerifyError::UnpairedLoopNext {
            op: at,
            loop_id: wrong
        })
    );
}

#[test]
fn verify_rejects_unclosed_loop() {
    let (_ilir, mut plan) = owned_plan();
    // Drop the *last* LoopNext of the stream: the loop it closed stays
    // open with no later LoopNext to mismatch first.
    let at = plan
        .ops
        .iter()
        .rposition(|op| matches!(op, Op::LoopNext(_)))
        .expect("a loop closes somewhere");
    plan.ops[at] = Op::Barrier;
    assert!(
        matches!(verify(&plan), Err(VerifyError::UnclosedLoop { .. })),
        "got {:?}",
        verify(&plan)
    );
}

#[test]
fn verify_rejects_use_before_def() {
    let (_ilir, mut plan) = owned_plan();
    // Drop the first Let: every later read of its slot is now undefined.
    let at = plan
        .ops
        .iter()
        .position(|op| matches!(op, Op::Let { .. }))
        .expect("the lowering emits Let ops");
    let Op::Let { slot, .. } = plan.ops[at] else {
        unreachable!()
    };
    plan.ops[at] = Op::Barrier;
    match verify(&plan) {
        Err(VerifyError::UseBeforeDef { slot: s, .. }) => assert_eq!(s, slot),
        other => panic!("expected UseBeforeDef of slot {slot}, got {other:?}"),
    }
}

#[test]
fn verify_rejects_foreign_expression_pointer() {
    use cortex_core::expr::IdxExpr;
    let (_ilir, mut plan) = owned_plan();
    // A pointer to an expression the compiled kernels do not own: the
    // verifier must refuse it *without* dereferencing.
    let foreign = IdxExpr::Const(1);
    let at = plan
        .ops
        .iter()
        .position(|op| matches!(op, Op::Let { .. }))
        .expect("the lowering emits Let ops");
    let Op::Let { slot, .. } = plan.ops[at] else {
        unreachable!()
    };
    plan.ops[at] = Op::Let {
        slot,
        value: &foreign as *const IdxExpr,
    };
    assert_eq!(verify(&plan), Err(VerifyError::ForeignExpr { op: at }));
}

#[test]
fn over_arity_structures_are_refused_at_intake() {
    use cortex_ds::{StructureBuilder, StructureKind};
    let (g, _) = tree_rnn(4);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let mut b = StructureBuilder::new(StructureKind::Tree);
    let l0 = b.leaf(1);
    let l1 = b.leaf(2);
    let l2 = b.leaf(3);
    b.internal(&[l0, l1, l2]).unwrap();
    let wide = b.finish().unwrap();
    let lin = Linearizer::new().linearize(&wide).unwrap();
    let mut params = Params::new();
    params.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, 4], 0.5, 42),
    );
    let mut engine = Engine::new(&program);
    let err = engine.execute(&lin, &params, true).unwrap_err();
    assert_eq!(
        err,
        ExecError::InvalidInput(InvalidInput::ArityExceedsPlan { found: 3, plan: 2 })
    );
    // The same check guards `execute_many`: a hostile request is refused
    // before any batch state is touched.
    let ok = Linearizer::new()
        .linearize(&datasets::random_binary_tree(5, 1))
        .unwrap();
    let err = engine
        .execute_many(&[&ok, &lin], &params, true)
        .unwrap_err();
    assert!(matches!(
        err,
        ExecError::InvalidInput(InvalidInput::ArityExceedsPlan { .. })
    ));
    // The engine still serves valid traffic afterwards.
    engine.execute(&ok, &params, true).unwrap();
}

#[test]
fn non_finite_params_are_refused() {
    let (program, lin, _params, _) = fault_fixture();
    let mut bad = Params::new();
    let mut emb = Tensor::zeros(&[datasets::VOCAB_SIZE as usize, 8]);
    emb.as_mut_slice()[3] = f32::NAN;
    bad.set("Emb", emb);
    let mut engine = Engine::new(&program);
    let err = engine.execute(&lin, &bad, true).unwrap_err();
    assert_eq!(
        err,
        ExecError::InvalidInput(InvalidInput::NonFiniteParam {
            name: "Emb".to_string()
        })
    );
    // Re-binding finite values clears the refusal (validation is keyed
    // on the params generation).
    let mut good = Params::new();
    good.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, 8], 0.5, 42),
    );
    engine.execute(&lin, &good, true).unwrap();
}

#[test]
fn memory_budget_refuses_over_budget_runs() {
    let (program, lin, params, out) = fault_fixture();
    let mut engine = Engine::with_options(
        &program,
        ExecOptions {
            memory_budget: Some(1),
            ..ExecOptions::default()
        },
    );
    let needed = engine.footprint(&lin);
    assert!(needed > 1, "footprint estimate must be non-trivial");
    match engine.execute(&lin, &params, true) {
        Err(ExecError::OverBudget { needed: n, budget }) => {
            assert_eq!((n, budget), (needed, 1));
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
    // A budget above the estimate admits the run unchanged.
    let mut roomy = Engine::with_options(
        &program,
        ExecOptions {
            memory_budget: Some(needed * 2),
            ..ExecOptions::default()
        },
    );
    let (got, _) = roomy.execute(&lin, &params, true).unwrap();
    let (want, _) = execute(&program, &lin, &params, true).unwrap();
    assert_eq!(got[&out], want[&out]);
}

#[test]
fn input_size_and_depth_limits_are_enforced() {
    let (program, lin, params, _) = fault_fixture();
    let mut small = Engine::with_options(
        &program,
        ExecOptions {
            max_input_nodes: Some(3),
            ..ExecOptions::default()
        },
    );
    assert!(matches!(
        small.execute(&lin, &params, true),
        Err(ExecError::InvalidInput(InvalidInput::NodesOverLimit {
            limit: 3,
            ..
        }))
    ));
    let mut shallow = Engine::with_options(
        &program,
        ExecOptions {
            max_input_depth: Some(1),
            ..ExecOptions::default()
        },
    );
    assert!(matches!(
        shallow.execute(&lin, &params, true),
        Err(ExecError::InvalidInput(InvalidInput::DepthOverLimit {
            limit: 1,
            ..
        }))
    ));
}

#[test]
fn watchdog_converts_runaway_into_typed_fault() {
    let (program, lin, params, _) = fault_fixture();
    // Zero fuel: the very first back-edge trips the watchdog — standing
    // in for a non-terminating loop, which cannot be lowered from any
    // well-formed schedule.
    let mut engine = Engine::with_options(
        &program,
        ExecOptions {
            watchdog_fuel: Some(0),
            ..ExecOptions::default()
        },
    );
    assert_eq!(
        engine.execute(&lin, &params, true).unwrap_err(),
        ExecError::Watchdog { limit: 0 }
    );
    // The derived default budget is far above what real runs spend: the
    // same input executes untouched.
    let mut healthy = Engine::new(&program);
    healthy.execute(&lin, &params, true).unwrap();
    // The interp oracle is a diagnostic, never an admission path — it
    // carries no watchdog even with an (ignored) zero budget.
    let mut oracle = Engine::with_options(
        &program,
        ExecOptions {
            watchdog_fuel: Some(0),
            interp: true,
            ..ExecOptions::default()
        },
    );
    oracle.execute(&lin, &params, true).unwrap();
}

#[test]
fn footprint_scales_with_input_size() {
    let (program, _, _, _) = fault_fixture();
    let engine = Engine::new(&program);
    let small = Linearizer::new()
        .linearize(&datasets::random_binary_tree(5, 1))
        .unwrap();
    let large = Linearizer::new()
        .linearize(&datasets::random_binary_tree(63, 1))
        .unwrap();
    assert!(engine.footprint(&large) > engine.footprint(&small));
}

/// `tree_rnn`'s guarded twin: every child read sits under the canonical
/// `slot < num_children` Select (the DAG-RNN idiom), so absent children
/// contribute zero instead of a dangling indirection.
fn guarded_tree_rnn(h: usize) -> (RaGraph, TensorId) {
    use cortex_core::expr::{BoolExpr, CmpOp, IdxExpr, Ufn, ValExpr};
    let mut g = RaGraph::new();
    let emb = g.input("Emb", &[datasets::VOCAB_SIZE as usize, h]);
    let ph = g.placeholder("g_ph", &[h]);
    let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
    let rec = g.compute("rec", &[h], |c| {
        let mut acc: Option<ValExpr> = None;
        for s in 0..2u8 {
            let node = c.node();
            let child = IdxExpr::Ufn(Ufn::Child(s), vec![node.clone()]);
            let read = c.read(ph, &[child, c.axis(0)]);
            let guarded = ValExpr::Select {
                cond: BoolExpr::Cmp(
                    CmpOp::Lt,
                    IdxExpr::Const(s as i64),
                    IdxExpr::Ufn(Ufn::NumChildren, vec![node]),
                ),
                then: Box::new(read),
                otherwise: Box::new(ValExpr::Const(0.0)),
            };
            acc = Some(match acc {
                None => guarded,
                Some(prev) => prev.add(guarded),
            });
        }
        acc.unwrap().tanh()
    });
    let body = g.if_then_else("body", leaf, rec).unwrap();
    let r = g.recursion(ph, body).unwrap();
    g.mark_output(r);
    (g, r.id())
}

#[test]
fn under_arity_structures_are_refused_for_exact_plans() {
    use cortex_ds::{StructureBuilder, StructureKind};
    let (g, _) = tree_rnn(4);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let mut engine = Engine::new(&program);
    assert_eq!(
        engine.plan_required_arity(),
        2,
        "exact plan requires both slots"
    );
    // A unary internal node: the plan would chase child(1) = NO_CHILD.
    let mut b = StructureBuilder::new(StructureKind::Tree);
    let leaf = b.leaf(1);
    b.internal(&[leaf]).unwrap();
    let lin = Linearizer::new().linearize(&b.finish().unwrap()).unwrap();
    let mut params = Params::new();
    params.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, 4], 0.5, 42),
    );
    let err = engine.execute(&lin, &params, true).unwrap_err();
    assert_eq!(
        err,
        ExecError::InvalidInput(InvalidInput::ArityBelowPlan {
            found: 1,
            required: 2
        })
    );
}

#[test]
fn guarded_plans_admit_any_arity_and_match_the_oracle() {
    use cortex_ds::{StructureBuilder, StructureKind};
    let h = 4;
    let (g, out) = guarded_tree_rnn(h);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let mut engine = Engine::new(&program);
    assert_eq!(engine.plan_arity(), 2);
    assert_eq!(
        engine.plan_required_arity(),
        0,
        "every child read is Select-guarded"
    );
    // A unary chain — refused by the exact plan above — is admissible
    // here and must agree with the interp oracle exactly.
    let mut b = StructureBuilder::new(StructureKind::Tree);
    let leaf = b.leaf(1);
    let mid = b.internal(&[leaf]).unwrap();
    b.internal(&[mid]).unwrap();
    let lin = Linearizer::new().linearize(&b.finish().unwrap()).unwrap();
    let mut params = Params::new();
    params.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42),
    );
    engine.validate_input(&lin).unwrap();
    let (got, prof) = engine.execute(&lin, &params, true).unwrap();
    let mut oracle = Engine::with_options(&program, ExecOptions::interpreted());
    let (want, want_prof) = oracle.execute(&lin, &params, true).unwrap();
    assert_eq!(prof, want_prof, "profiles must be bit-identical");
    assert_eq!(got[&out], want[&out], "outputs must be bit-identical");
}

// -- static analysis: optimizer, parallel-safety certifier, shadow --

use cortex_core::expr::{IdxBinOp, IdxExpr, Ufn, ValExpr, Var};
use cortex_core::ilir::{Kernel, LaunchPattern, LoopKind, Stmt};

use super::analysis::liveness::optimize_kernels;
use super::analysis::parsafety::{certify_fused, certify_wave_body};
use super::{ParSafety, SeqReason};

fn analysis_kernel(body: Vec<Stmt>) -> CompiledKernel {
    CompiledKernel::compile(&Kernel {
        name: "k".into(),
        launch: LaunchPattern::Once,
        batch_var: None,
        body,
    })
}

#[test]
fn optimizer_removes_dead_lets_and_coalesces_slots() {
    let t = TensorId(0);
    let v = Var::from_raw;
    // `let a = 1 { t[0] = 2.0 }` — a is never read: dead.  The two
    // following Lets have disjoint lifetimes: one slot after coloring.
    let body = vec![
        Stmt::Let {
            var: v(0),
            value: IdxExpr::Const(1),
            body: vec![Stmt::Store {
                tensor: t,
                index: vec![IdxExpr::Const(0)],
                value: ValExpr::Const(2.0),
            }],
        },
        Stmt::Let {
            var: v(1),
            value: IdxExpr::Const(3),
            body: vec![Stmt::Store {
                tensor: t,
                index: vec![IdxExpr::Var(v(1))],
                value: ValExpr::Const(4.0),
            }],
        },
        Stmt::Let {
            var: v(2),
            value: IdxExpr::Const(5),
            body: vec![Stmt::Store {
                tensor: t,
                index: vec![IdxExpr::Var(v(2))],
                value: ValExpr::Const(6.0),
            }],
        },
    ];
    let compiled = vec![analysis_kernel(body)];
    assert_eq!(compiled[0].num_slots, 3);
    let (opt, stats) = optimize_kernels(compiled);
    assert_eq!(stats.dead_lets, 1);
    assert_eq!(stats.slots_coalesced, 1);
    assert_eq!(opt[0].num_slots, 1);
    // The dead Let is gone, its body spliced in place.
    assert!(
        matches!(opt[0].body[0], Stmt::Store { .. }),
        "dead Let spliced"
    );
    assert_eq!(opt[0].body.len(), 3);
}

#[test]
fn optimizer_preserves_outputs_and_profile() {
    let h = 8;
    let (g, out) = matvec_tree(h);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let lin = Linearizer::new()
        .linearize(&datasets::random_binary_tree(21, 11))
        .unwrap();
    let mut params = Params::new();
    params.set("W", Tensor::random(&[h, h], 0.5, 7));
    params.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42),
    );
    let mut opt = Engine::new(&program);
    let mut raw = Engine::with_options(
        &program,
        ExecOptions {
            optimize: false,
            ..ExecOptions::default()
        },
    );
    let (got, prof) = opt.execute(&lin, &params, true).unwrap();
    let (want, want_prof) = raw.execute(&lin, &params, true).unwrap();
    assert_eq!(prof, want_prof, "profiles must be bit-identical");
    assert_eq!(got[&out], want[&out], "outputs must be bit-identical");
    // Toggling the optimizer on a live engine recompiles; the engine is
    // indistinguishable from the fresh unoptimized build.
    opt.set_options(ExecOptions {
        optimize: false,
        ..ExecOptions::default()
    });
    assert_eq!(opt.verified(), Ok(()));
    assert_eq!(opt.stats().dead_ops_eliminated, 0, "optimizer off");
    let (re, re_prof) = opt.execute(&lin, &params, true).unwrap();
    assert_eq!(re_prof, want_prof);
    assert_eq!(re[&out], want[&out]);
}

#[test]
fn certifier_accepts_own_row_writes_and_child_reads() {
    let t = TensorId(7);
    let n = Var::from_raw(0);
    let j = Var::from_raw(1);
    // for j { t[n][j] = t[child(0, n)][j] } — own-row write, strictly
    // earlier row read through the child indirection: race-free.
    let body = vec![Stmt::For {
        var: j,
        extent: IdxExpr::Const(4),
        kind: LoopKind::Serial,
        dim: None,
        body: vec![Stmt::Store {
            tensor: t,
            index: vec![IdxExpr::Var(n), IdxExpr::Var(j)],
            value: ValExpr::Load {
                tensor: t,
                index: vec![
                    IdxExpr::Ufn(Ufn::Child(0), vec![IdxExpr::Var(n)]),
                    IdxExpr::Var(j),
                ],
            },
        }],
    }];
    assert_eq!(certify_wave_body(n, &body), ParSafety::RowDisjoint);
}

#[test]
fn certifier_accepts_the_node_alias_binding() {
    let t = TensorId(3);
    let n = Var::from_raw(0);
    let b = Var::from_raw(1);
    // let node = batch_begin[b] + n { t[node] = 1.0 } — the lowered
    // d_batch shape: the alias enumerates distinct rows per iteration.
    let body = vec![Stmt::Let {
        var: Var::from_raw(2),
        value: IdxExpr::Ufn(Ufn::BatchBegin, vec![IdxExpr::Var(b)]).add(IdxExpr::Var(n)),
        body: vec![Stmt::Store {
            tensor: t,
            index: vec![IdxExpr::Var(Var::from_raw(2))],
            value: ValExpr::Const(1.0),
        }],
    }];
    assert_eq!(certify_wave_body(n, &body), ParSafety::RowDisjoint);
}

#[test]
fn certifier_rejects_overlapping_writes_with_typed_reasons() {
    let t = TensorId(7);
    let n = Var::from_raw(0);
    let j = Var::from_raw(1);
    let store = |row: IdxExpr, value: ValExpr| Stmt::Store {
        tensor: t,
        index: vec![row, IdxExpr::Var(j)],
        value,
    };
    let seq = |reason| ParSafety::Sequential { reason };
    // Every iteration writes row 0: a guaranteed write-write race.
    assert_eq!(
        certify_wave_body(n, &[store(IdxExpr::Const(0), ValExpr::Const(1.0))]),
        seq(SeqReason::WriteRowShared)
    );
    // Row n/2: iterations 2k and 2k+1 collide.
    assert_eq!(
        certify_wave_body(
            n,
            &[store(
                IdxExpr::Bin(
                    IdxBinOp::Div,
                    Box::new(IdxExpr::Var(n)),
                    Box::new(IdxExpr::Const(2))
                ),
                ValExpr::Const(1.0)
            )]
        ),
        seq(SeqReason::WriteRowAliased)
    );
    // t[n] = t[n + 1]: reads a row a *later* iteration writes.
    assert_eq!(
        certify_wave_body(
            n,
            &[store(
                IdxExpr::Var(n),
                ValExpr::Load {
                    tensor: t,
                    index: vec![IdxExpr::Var(n).add(IdxExpr::Const(1)), IdxExpr::Var(j)],
                }
            )]
        ),
        seq(SeqReason::ReadOverlapsWrites)
    );
    // t[n] = t[0]: the fixed row is some iteration's own write target.
    assert_eq!(
        certify_wave_body(
            n,
            &[store(
                IdxExpr::Var(n),
                ValExpr::Load {
                    tensor: t,
                    index: vec![IdxExpr::Const(0), IdxExpr::Var(j)],
                }
            )]
        ),
        seq(SeqReason::FixedRowOfStored)
    );
    // An explicit Barrier stages its own ordering.
    assert_eq!(
        certify_wave_body(n, &[Stmt::Barrier]),
        seq(SeqReason::Barrier)
    );
}

/// Builds the shared plans of a model for certificate-forging tests.
fn forgeable_plans(g: &RaGraph) -> super::SharedPlans {
    let ilir = lower(g, &RaSchedule::default(), StructureInfo { max_children: 2 }).unwrap();
    let compiled: Rc<Vec<CompiledKernel>> =
        Rc::new(ilir.kernels.iter().map(CompiledKernel::compile).collect());
    let (shared, _) = super::build_plans(compiled, ExecOptions::default());
    assert_eq!(verify(&shared.plan), Ok(()), "genuine plan verifies");
    // The ILIR program owns nothing the plan points into (the compiled
    // kernels do, and `shared` keeps them alive) — safe to drop.
    shared
}

#[test]
fn verify_rejects_forged_wave_certificate() {
    let (g, _) = matvec_tree(6);
    let mut shared = forgeable_plans(&g);
    let plan = Rc::get_mut(&mut shared.plan).expect("sole owner");
    assert!(
        !plan.wave_safety.is_empty(),
        "default schedule lowers waves"
    );
    plan.wave_safety[0] = match plan.wave_safety[0] {
        ParSafety::RowDisjoint => ParSafety::Sequential {
            reason: SeqReason::WriteRowShared,
        },
        ParSafety::Sequential { .. } => ParSafety::RowDisjoint,
    };
    assert_eq!(
        verify(&shared.plan),
        Err(VerifyError::CertificateMismatch {
            what: "wave",
            index: 0
        })
    );
}

#[test]
fn verify_rejects_forged_fused_certificate() {
    let (g, _) = matvec_tree(6);
    let mut shared = forgeable_plans(&g);
    let plan = Rc::get_mut(&mut shared.plan).expect("sole owner");
    assert!(
        !plan.fused_safety.is_empty(),
        "matvec body fuses under the default schedule"
    );
    plan.fused_safety[0] = ParSafety::Sequential {
        reason: SeqReason::ReadOverlapsWrites,
    };
    assert_eq!(
        verify(&shared.plan),
        Err(VerifyError::CertificateMismatch {
            what: "fused",
            index: 0
        })
    );
}

#[test]
fn verify_rejects_certificate_table_length_mismatch() {
    let (g, _) = matvec_tree(6);
    let mut shared = forgeable_plans(&g);
    let plan = Rc::get_mut(&mut shared.plan).expect("sole owner");
    plan.wave_safety.pop();
    assert!(matches!(
        verify(&shared.plan),
        Err(VerifyError::CertificateMismatch { what: "wave", .. })
    ));
}

// -- direct-threaded specialization: post-build table checks --

use super::threaded::{specialize, verify_threaded};

#[test]
fn verify_threaded_accepts_genuine_table() {
    let (g, _) = matvec_tree(6);
    let shared = forgeable_plans(&g);
    let tp = specialize(&shared.plan);
    assert!(tp.steps.len() > 1, "a real model specializes to many steps");
    assert_eq!(verify_threaded(&tp, &shared.plan), Ok(()));
}

#[test]
fn verify_threaded_rejects_truncated_step_table() {
    let (g, _) = matvec_tree(6);
    let shared = forgeable_plans(&g);
    let mut tp = specialize(&shared.plan);
    let expected = tp.steps.len();
    tp.steps.pop();
    assert_eq!(
        verify_threaded(&tp, &shared.plan),
        Err(VerifyError::ThreadedLengthMismatch {
            what: "step",
            found: expected - 1,
            expected,
        })
    );
}

#[test]
fn verify_threaded_rejects_dangling_jump_target() {
    let (g, _) = matvec_tree(6);
    let shared = forgeable_plans(&g);
    let mut tp = specialize(&shared.plan);
    let len = tp.steps.len();
    let bad = len + 7;
    let at = tp
        .steps
        .iter()
        .position(|s| !s.targets.is_empty())
        .expect("control steps record jump targets");
    tp.steps[at].targets[0] = bad;
    assert_eq!(
        verify_threaded(&tp, &shared.plan),
        Err(VerifyError::ThreadedDanglingTarget {
            step: at,
            target: bad,
            len,
        })
    );
}

#[test]
fn verify_threaded_rejects_redirected_jump_target() {
    let (g, _) = matvec_tree(6);
    let shared = forgeable_plans(&g);
    let mut tp = specialize(&shared.plan);
    // Redirect an in-range target: still a corruption, caught by the
    // re-derived target-list comparison.
    let at = tp
        .steps
        .iter()
        .position(|s| !s.targets.is_empty())
        .expect("control steps record jump targets");
    tp.steps[at].targets[0] = (tp.steps[at].targets[0] + 1) % tp.steps.len();
    assert_eq!(
        verify_threaded(&tp, &shared.plan),
        Err(VerifyError::ThreadedTargetMismatch { step: at })
    );
}

#[test]
fn verify_threaded_rejects_forged_kernel_entry() {
    let (g, _) = matvec_tree(6);
    let shared = forgeable_plans(&g);
    let mut tp = specialize(&shared.plan);
    let expected = tp.kernels[0].entry;
    tp.kernels[0].entry = (expected + 1) % tp.steps.len();
    assert_eq!(
        verify_threaded(&tp, &shared.plan),
        Err(VerifyError::ThreadedEntryMismatch {
            kernel: 0,
            entry: (expected + 1) % tp.steps.len(),
            expected,
        })
    );
}

/// A demoted engine (its specialized table failed post-build
/// verification) refuses every run with a typed error — corrupted
/// closure code is never executed.
#[test]
fn demoted_engine_refuses_execution_typed() {
    let h = 4;
    let (g, _) = tree_rnn(h);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let mut engine = Engine::new(&program);
    assert_eq!(engine.verified(), Ok(()));
    // Simulate the demotion `attach_threaded` performs when
    // `verify_threaded` rejects its freshly built table.
    let forged = VerifyError::ThreadedTargetMismatch { step: 0 };
    engine.verified = Err(forged.clone());
    let lin = Linearizer::new()
        .linearize(&datasets::random_binary_tree(9, 5))
        .unwrap();
    let mut params = Params::new();
    params.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42),
    );
    match engine.execute(&lin, &params, true) {
        Err(ExecError::Verify(e)) => assert_eq!(e, forged),
        other => panic!("demoted engine must refuse typed, got {other:?}"),
    }
}

#[test]
fn engine_stats_surface_the_analysis_results() {
    let h = 8;
    let (g, _) = matvec_tree(h);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let lin = Linearizer::new()
        .linearize(&datasets::random_binary_tree(15, 3))
        .unwrap();
    let mut params = Params::new();
    params.set("W", Tensor::random(&[h, h], 0.5, 7));
    params.set(
        "Emb",
        Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42),
    );
    let mut engine = Engine::new(&program);
    engine.execute(&lin, &params, true).unwrap();
    let stats = engine.stats();
    let ps = engine.plan_stats();
    assert_eq!(stats.par_safe_waves, ps.par_safe_waves as u64);
    assert_eq!(stats.par_unsafe_waves, ps.par_unsafe_waves as u64);
    assert!(
        stats.par_safe_waves > 0,
        "the matvec wave certifies row-disjoint"
    );
    assert_eq!(
        stats.par_unsafe_waves,
        stats.par_unsafe_by_reason.iter().sum::<u64>()
    );
    assert_eq!(stats.dead_ops_eliminated, ps.dead_ops_eliminated as u64);
    assert_eq!(stats.slots_coalesced, ps.slots_coalesced as u64);
    if cfg!(feature = "checked") {
        assert!(super::shadow_checking_enabled());
        assert!(stats.shadow_checks > 0, "shadow hooks recorded accesses");
    } else {
        assert!(!super::shadow_checking_enabled());
        assert_eq!(stats.shadow_checks, 0);
    }
}

#[test]
fn certify_fused_rejects_overlapping_row_passes() {
    use super::bulk::{BulkExpr, BulkPlan, FusedLoop};
    let n = Var::from_raw(0);
    let t = TensorId(4);
    let plan = |index: Vec<IdxExpr>, i_pos: usize, expr: BulkExpr| {
        Rc::new(BulkPlan {
            h: 4,
            feat_slot: 1,
            tensor: t,
            index,
            i_pos,
            expr,
            sum_keys: Vec::new(),
        })
    };
    let own_row = vec![IdxExpr::Var(n), IdxExpr::Var(Var::from_raw(1))];
    // Pass writes t[0][i] — every row of the wave hits the same cells.
    let shared = FusedLoop {
        outer: None,
        plan: plan(
            vec![IdxExpr::Const(0), IdxExpr::Var(Var::from_raw(1))],
            1,
            BulkExpr::Const(1.0),
        ),
    };
    assert_eq!(
        certify_fused(&[shared], n, None),
        ParSafety::Sequential {
            reason: SeqReason::WriteRowShared
        }
    );
    // Pass reads its own tensor at the *next* row: cross-row overlap.
    let overlapping = FusedLoop {
        outer: None,
        plan: plan(
            own_row.clone(),
            1,
            BulkExpr::Load {
                tensor: t,
                index: vec![
                    IdxExpr::Var(n).add(IdxExpr::Const(1)),
                    IdxExpr::Var(Var::from_raw(1)),
                ],
                i_pos: Some(1),
            },
        ),
    };
    assert_eq!(
        certify_fused(&[overlapping], n, None),
        ParSafety::Sequential {
            reason: SeqReason::ReadOverlapsWrites
        }
    );
    // Own-row read is fine.
    let own = FusedLoop {
        outer: None,
        plan: plan(
            own_row.clone(),
            1,
            BulkExpr::Load {
                tensor: t,
                index: own_row,
                i_pos: Some(1),
            },
        ),
    };
    assert_eq!(certify_fused(&[own], n, None), ParSafety::RowDisjoint);
}

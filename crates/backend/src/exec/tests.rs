use std::collections::HashMap;
use std::rc::Rc;

use cortex_core::expr::TensorId;
use cortex_core::lower::{lower, StructureInfo};
use cortex_core::ra::{RaGraph, RaSchedule};
use cortex_ds::datasets;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_tensor::Tensor;

use super::gather::{evict_weight_cache_lru, StackedWeight};
use super::{execute, Engine, ExecError, ExecOptions};
use crate::params::Params;

/// The Fig. 1 model: rnn(n) = Emb[word] at leaves, tanh(l + r) inside.
fn tree_rnn(h: usize) -> (RaGraph, TensorId) {
    let mut g = RaGraph::new();
    let emb = g.input("Emb", &[datasets::VOCAB_SIZE as usize, h]);
    let ph = g.placeholder("rnn_ph", &[h]);
    let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
    let lh = g.compute("lh", &[h], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
    let rh = g.compute("rh", &[h], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
    let rec = g.compute("rec", &[h], |c| {
        c.read(lh, &[c.node(), c.axis(0)])
            .add(c.read(rh, &[c.node(), c.axis(0)]))
            .tanh()
    });
    let body = g.if_then_else("body", leaf, rec).unwrap();
    let rnn = g.recursion(ph, body).unwrap();
    g.mark_output(rnn);
    (g, rnn.id())
}

fn reference_tree_rnn(lin: &Linearized, emb: &Tensor, h: usize) -> Vec<Vec<f32>> {
    let mut vals = vec![vec![0.0f32; h]; lin.num_nodes()];
    for &n in lin.post_order() {
        if lin.is_leaf(n) {
            let w = lin.word(n) as usize;
            vals[n as usize] = emb.row(w).to_vec();
        } else {
            let l = lin.child(0, n).unwrap() as usize;
            let r = lin.child(1, n).unwrap() as usize;
            vals[n as usize] = vals[l]
                .iter()
                .zip(&vals[r])
                .map(|(a, b)| (a + b).tanh())
                .collect();
        }
    }
    vals
}

fn check_against_reference(schedule: &RaSchedule, tree_seed: u64) {
    let h = 8;
    let (g, out) = tree_rnn(h);
    let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
    let tree = datasets::random_binary_tree(13, tree_seed);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb.clone());
    let (outputs, _) = execute(&program, &lin, &params, true).unwrap();
    let got = &outputs[&out];
    let want = reference_tree_rnn(&lin, &emb, h);
    for n in 0..lin.num_nodes() {
        for i in 0..h {
            let g = got[[n, i]];
            let w = want[n][i];
            assert!(
                (g - w).abs() < 1e-6,
                "mismatch at node {n} elem {i}: {g} vs {w} (schedule {schedule:?})"
            );
        }
    }
}

#[test]
fn default_schedule_matches_reference() {
    check_against_reference(&RaSchedule::default(), 3);
}

#[test]
fn unoptimized_schedule_matches_reference() {
    check_against_reference(&RaSchedule::unoptimized(), 4);
}

#[test]
fn no_specialization_matches_reference() {
    check_against_reference(
        &RaSchedule {
            specialize: false,
            ..RaSchedule::default()
        },
        5,
    );
}

#[test]
fn unbatched_matches_reference() {
    check_against_reference(
        &RaSchedule {
            dynamic_batch: false,
            ..RaSchedule::default()
        },
        6,
    );
}

#[test]
fn peeled_matches_reference() {
    check_against_reference(
        &RaSchedule {
            peel: Some(4),
            ..RaSchedule::default()
        },
        7,
    );
}

#[test]
fn unrolled_matches_reference() {
    check_against_reference(
        &RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        },
        8,
    );
}

#[test]
fn leaf_check_by_load_matches_reference() {
    check_against_reference(
        &RaSchedule {
            specialize: false,
            leaf_check: cortex_core::ra::LeafCheckMode::Load,
            ..RaSchedule::default()
        },
        9,
    );
}

#[test]
fn fusion_reduces_launches() {
    let h = 8;
    let (g, _) = tree_rnn(h);
    let tree = datasets::perfect_binary_tree(5, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);

    let fused = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let unfused = lower(
        &g,
        &RaSchedule {
            fusion: cortex_core::ra::FusionMode::None,
            dense_intermediates: false,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let (_, pf) = execute(&fused, &lin, &params, true).unwrap();
    let (_, pu) = execute(&unfused, &lin, &params, true).unwrap();
    assert!(
        pu.launches > 3 * pf.launches,
        "unfused {} vs fused {} launches",
        pu.launches,
        pf.launches
    );
}

#[test]
fn persistence_reduces_param_traffic() {
    let h = 8;
    let (g, _) = tree_rnn(h);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let tree = datasets::perfect_binary_tree(6, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    let (_, with) = execute(&program, &lin, &params, true).unwrap();
    let (_, without) = execute(&program, &lin, &params, false).unwrap();
    assert!(with.param_bytes_read <= without.param_bytes_read);
}

#[test]
fn conservative_barriers_inflate_counts() {
    let h = 4;
    let (g, _) = tree_rnn(h);
    let tree = datasets::perfect_binary_tree(5, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    let dflt = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let cons = lower(
        &g,
        &RaSchedule {
            barrier: cortex_core::ra::BarrierMode::Conservative,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let (_, pd) = execute(&dflt, &lin, &params, true).unwrap();
    let (_, pc) = execute(&cons, &lin, &params, true).unwrap();
    assert!(
        pc.barriers_global > pd.barriers_global,
        "conservative {} vs dependence-aware {}",
        pc.barriers_global,
        pd.barriers_global
    );
}

#[test]
fn missing_param_is_reported() {
    let (g, _) = tree_rnn(4);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let tree = datasets::perfect_binary_tree(2, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let err = execute(&program, &lin, &Params::new(), true).unwrap_err();
    assert_eq!(err, ExecError::MissingParam("Emb".to_string()));
}

#[test]
fn param_shape_is_checked() {
    let (g, _) = tree_rnn(4);
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let tree = datasets::perfect_binary_tree(2, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let mut params = Params::new();
    params.set("Emb", Tensor::zeros(&[3, 3]));
    assert!(matches!(
        execute(&program, &lin, &params, true),
        Err(ExecError::ParamShape { .. })
    ));
}

#[test]
fn weight_cache_eviction_is_lru_not_clear_all() {
    // A working set stamped by the latest run must survive eviction
    // even when the cache's lifetime population exceeds the cap —
    // the old clear-at-cap policy forced a full steady-state repack.
    let mut cache: HashMap<(usize, usize), StackedWeight> = HashMap::new();
    for i in 0..10usize {
        cache.insert(
            (i, 0),
            StackedWeight {
                sig: Vec::new(),
                params_only: true,
                epoch: 0,
                // Entries 0..4 are stale; 5..9 are the current
                // working set.
                last_used: if i < 5 { 1 } else { 2 },
                data: Rc::new(Vec::new()),
            },
        );
    }
    evict_weight_cache_lru(&mut cache, 7);
    assert_eq!(cache.len(), 7);
    for i in 5..10 {
        assert!(
            cache.contains_key(&(i, 0)),
            "working-set entry {i} must survive"
        );
    }
    // Under-cap caches are untouched.
    evict_weight_cache_lru(&mut cache, 64);
    assert_eq!(cache.len(), 7);
    // A working set larger than the cap still shrinks to the cap.
    evict_weight_cache_lru(&mut cache, 3);
    assert_eq!(cache.len(), 3);
}

#[test]
fn leaf_check_modes_differ_in_loads() {
    let h = 4;
    let (g, _) = tree_rnn(h);
    let tree = datasets::perfect_binary_tree(5, 0);
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    let numbering = lower(
        &g,
        &RaSchedule {
            specialize: false,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let by_load = lower(
        &g,
        &RaSchedule {
            specialize: false,
            leaf_check: cortex_core::ra::LeafCheckMode::Load,
            ..RaSchedule::default()
        },
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let (_, pn) = execute(&numbering, &lin, &params, true).unwrap();
    let (_, pl) = execute(&by_load, &lin, &params, true).unwrap();
    assert_eq!(pn.leaf_check_loads, 0, "Appendix-B numbering avoids loads");
    assert!(pl.leaf_check_loads > 0);
}

#[test]
fn every_schedule_lowers_fully_with_no_fallback_ops() {
    // The lowering must be total over the statement grammar: whatever
    // schedule shape the RA pass emits, no `ScalarStmt` escape op may
    // appear and the plan must be non-trivial.
    use cortex_core::ra::{BarrierMode, LeafCheckMode};
    let (g, _) = tree_rnn(6);
    let schedules = [
        RaSchedule::default(),
        RaSchedule::unoptimized(),
        RaSchedule {
            specialize: false,
            leaf_check: LeafCheckMode::Load,
            ..RaSchedule::default()
        },
        RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        },
        RaSchedule {
            peel: Some(4),
            barrier: BarrierMode::Conservative,
            ..RaSchedule::default()
        },
    ];
    for schedule in &schedules {
        let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
        let engine = Engine::new(&program);
        let ps = engine.plan_stats();
        assert!(ps.plan_ops > 0, "plan must lower ({schedule:?})");
        assert_eq!(
            ps.interp_fallback_stmts, 0,
            "no AST fallback ops ({schedule:?})"
        );
    }
}

#[test]
fn pc_runtime_matches_interp_oracle_exactly() {
    // The lowered plan runtime and the AST-walking oracle must produce
    // bit-identical outputs and Profiles (the model-scale property test
    // lives in tests/wave_equivalence.rs; this is the fast unit-level
    // gate on the Fig. 1 model across schedules).
    let h = 8;
    let (g, out) = tree_rnn(h);
    let emb = Tensor::random(&[datasets::VOCAB_SIZE as usize, h], 0.5, 42);
    let mut params = Params::new();
    params.set("Emb", emb);
    for (si, schedule) in [
        RaSchedule::default(),
        RaSchedule {
            unroll: Some(2),
            ..RaSchedule::default()
        },
    ]
    .iter()
    .enumerate()
    {
        let program = lower(&g, schedule, StructureInfo { max_children: 2 }).unwrap();
        let tree = datasets::random_binary_tree(17, 11 + si as u64);
        let lin = Linearizer::new().linearize(&tree).unwrap();
        let (out_pc, prof_pc) = Engine::new(&program).execute(&lin, &params, true).unwrap();
        let (out_or, prof_or) = Engine::with_options(&program, ExecOptions::interpreted())
            .execute(&lin, &params, true)
            .unwrap();
        assert_eq!(out_pc[&out], out_or[&out], "schedule {si}: bit-exact");
        assert_eq!(prof_pc, prof_or, "schedule {si}: identical profiles");
    }
}

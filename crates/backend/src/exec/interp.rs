//! Interpreter state shared by both runtimes: buffers, accounting
//! scopes, engine caches, and index/boolean expression evaluation.
//!
//! The [`Interp`] struct is the per-request execution state. Three
//! front-ends drive it: the direct-threaded closure tier
//! ([`super::threaded`], the default), the pc-based plan runtime
//! ([`super::run`], the fallback when specialization is off) and the
//! legacy AST-walking oracle ([`super::scalar`],
//! `ExecOptions { interp: true }`). All share every helper here, which
//! is what keeps their outputs and `Profile` counters bit-identical.

use std::collections::HashMap;
use std::rc::Rc;

use cortex_core::expr::{BoolExpr, CmpOp, IdxBinOp, IdxExpr, RtScalar, TensorId, Ufn};
use cortex_core::ilir::{DimExtent, IlirProgram, Stmt, StorageClass};
use cortex_ds::linearizer::{Batch, Linearized};
use cortex_tensor::approx::NonlinearityMode;
use cortex_tensor::Tensor;

use super::bulk::{BulkPlan, FusedWave};
use super::gather::{ActiveGroup, ActiveSite, GroupBufs, StackedWeight};
use super::lowering::CompiledKernel;
use super::program::Program;
use super::{ExecError, ExecOptions, ExecStats};
use crate::fastdot::DotPlan;
use crate::params::Params;
use crate::profile::{Profile, WaveStat};
use crate::wave::WavePlan;

/// State the engine keeps across runs: memoized reduction plans (keyed by
/// the `Sum` body's address within the compiled kernels, stable for the
/// engine's lifetime), stacked packed-weight matrices (per run), and
/// per-group gather/output scratch buffers.
#[derive(Default)]
pub(crate) struct Caches {
    pub(crate) plan_cache: HashMap<usize, Option<Rc<DotPlan>>>,
    /// Scratch rows for bulk evaluation (one per live expression-tree
    /// level), recycled across loops.
    pub(crate) row_pool: Vec<Vec<f32>>,
    /// Monotonic execution counter, stamped onto weight-cache entries on
    /// every hit or insert — the recency order the LRU eviction uses.
    pub(crate) run_stamp: u64,
    /// Stacked packed weights keyed by `(group leader site key,
    /// reduction extent)` — the extent is part of the key because a
    /// site's extent may legally vary between waves (it is only required
    /// to be invariant *within* one), and keying it keeps both variants
    /// cached instead of repacking every wave. The signature (per-member
    /// site key, weight window base, source-tensor store generation) is
    /// validated on every hit and the pack rebuilt on mismatch — a
    /// non-`Param` weight may be rewritten by a precompute kernel
    /// mid-run.
    pub(crate) weight_cache: HashMap<(usize, usize), StackedWeight>,
    /// Reusable gather/output buffers keyed by group leader site key. A
    /// stack per key: during `execute_many` several requests hold the
    /// same group's buffers at once (their waves overlap in time), so
    /// one slot per key would churn allocations.
    pub(crate) group_bufs: HashMap<usize, Vec<GroupBufs>>,
    pub(crate) stats: ExecStats,
    /// Deterministic fault-injection hook ([`super::FaultHook`]),
    /// consulted at instrumented sites. Lives in the caches so it
    /// shuttles into whichever request is stepping, exactly like the
    /// stats it instruments.
    pub(crate) fault_hook: Option<super::FaultHook>,
}

// ---------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------

/// Backing storage of a [`Buffer`]: owned and writable, or a read-only
/// view of the engine's shared parameter arena. Sharing parameters is
/// what keeps a serving batch's K simultaneous interpreters from each
/// copying (and keeping resident) the full weight + embedding set —
/// parameters are bound once per `(model, params generation)` and every
/// run/request of the engine reads the same allocation.
#[derive(Debug, Clone)]
pub(crate) enum BufData {
    Owned(Vec<f32>),
    Shared(Rc<Vec<f32>>),
}

impl std::ops::Deref for BufData {
    type Target = [f32];

    #[inline]
    fn deref(&self) -> &[f32] {
        match self {
            BufData::Owned(v) => v,
            BufData::Shared(r) => r,
        }
    }
}

impl BufData {
    /// Mutable access — only owned storage is writable (the lowering
    /// never emits stores to `Param` tensors, the one shared class).
    #[inline]
    pub(crate) fn as_mut(&mut self) -> &mut [f32] {
        match self {
            BufData::Owned(v) => v,
            BufData::Shared(_) => unreachable!("store to a shared parameter buffer"),
        }
    }

    pub(crate) fn into_vec(self) -> Vec<f32> {
        match self {
            BufData::Owned(v) => v,
            BufData::Shared(r) => r.as_ref().clone(),
        }
    }
}

/// An inline dimension (or stride) list, rank ≤ 8. Buffers are created
/// and destroyed on every run; storing extents inline instead of in two
/// heap `Vec`s per tensor removes ~2·tensors allocations from
/// `Interp::new` and as many deallocations from its drop — a measurable
/// slice of small solo-run latency.
#[derive(Clone, Copy)]
pub(crate) struct Dims {
    a: [usize; 8],
    len: u8,
}

impl std::ops::Deref for Dims {
    type Target = [usize];
    #[inline]
    fn deref(&self) -> &[usize] {
        &self.a[..self.len as usize]
    }
}

impl std::fmt::Debug for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Buffer {
    pub(crate) data: BufData,
    pub(crate) dims: Dims,
    pub(crate) strides: Dims,
    pub(crate) class: StorageClass,
}

impl Buffer {
    /// A zeroed owned buffer, reusing an allocation from `pool` when one
    /// with enough capacity is available. Small solo runs pay one
    /// malloc/free pair per declared tensor otherwise — fixed cost that
    /// dilutes the dispatch-elimination win the threaded tier measures.
    pub(crate) fn new(dims: Dims, class: StorageClass, pool: &mut Vec<Vec<f32>>) -> Self {
        let len: usize = dims.iter().product::<usize>().max(1);
        let mut v = match pool.iter().position(|p| p.capacity() >= len) {
            Some(i) => pool.swap_remove(i),
            None => Vec::new(),
        };
        v.clear();
        v.resize(len, 0.0);
        Self::with_data(dims, class, BufData::Owned(v))
    }

    /// A read-only view of an arena allocation: no owned storage is
    /// allocated (or zeroed) at all — on small solo runs the throwaway
    /// zero-fill of a `[vocab, h]` embedding table used to dwarf the
    /// actual execution.
    pub(crate) fn shared(dims: Dims, class: StorageClass, data: Rc<Vec<f32>>) -> Self {
        Self::with_data(dims, class, BufData::Shared(data))
    }

    fn with_data(dims: Dims, class: StorageClass, data: BufData) -> Self {
        let n = dims.len();
        let mut sa = [1usize; 8];
        for d in (0..n.saturating_sub(1)).rev() {
            sa[d] = sa[d + 1] * dims[d + 1];
        }
        let strides = Dims {
            a: sa,
            len: n as u8,
        };
        Buffer {
            data,
            dims,
            strides,
            class,
        }
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }
}

// ---------------------------------------------------------------------
// Runtime environment (linearizer arrays + unrolled schedule)
// ---------------------------------------------------------------------

pub(crate) struct RtEnv {
    pub(crate) batches: Vec<Batch>,
    pub(crate) stages: Vec<Vec<u32>>,
    pub(crate) num_super_waves: usize,
    pub(crate) intra_group_edges: usize,
    pub(crate) unamortized_barriers: usize,
    pub(crate) max_batch: usize,
}

impl RtEnv {
    pub(crate) fn new(program: &IlirProgram, lin: &Linearized) -> Result<Self, ExecError> {
        let batches = lin.batches();
        let mut stages = Vec::new();
        let mut num_super_waves = 0;
        let mut intra_group_edges = 0;
        let mut unamortized_barriers = 0;
        if let Some(depth) = program.meta.schedule.unroll {
            let sched = lin.unrolled(depth)?;
            num_super_waves = sched.num_super_waves();
            intra_group_edges = sched.intra_group_edges;
            unamortized_barriers = sched.unamortized_barriers();
            for sw in &sched.super_waves {
                for stage in &sw.stages {
                    stages.push(stage.clone());
                }
            }
        }
        // Scratch tensors are live only within internal waves (and
        // unrolled stages), so they are sized by the widest of those —
        // not by the (typically much wider) leaf batch.
        let max_batch = lin
            .internal_batches()
            .iter()
            .map(Batch::len)
            .chain(stages.iter().map(Vec::len))
            .max()
            .unwrap_or(1)
            .max(1);
        Ok(RtEnv {
            batches,
            stages,
            num_super_waves,
            intra_group_edges,
            unamortized_barriers,
            max_batch,
        })
    }
}

// ---------------------------------------------------------------------
// Accounting scopes
// ---------------------------------------------------------------------

#[derive(Default)]
pub(crate) struct Scope {
    /// Per-tensor `(loads, stores)` within this scope, indexed by tensor
    /// id. A flat array, not a map: these counters are bumped on every
    /// interpreted load/store, the hottest accounting path there is.
    pub(crate) touch: Vec<(u64, u64)>,
    pub(crate) flops_start: u64,
    /// Flops already attributed to nested (wave) scopes, so the outer
    /// launch scope only reports its own residual work.
    pub(crate) flops_attributed: u64,
    pub(crate) width: u64,
    /// Whether this scope is one iteration of the wave (`d_all_batches`)
    /// loop. Parameters read inside wave scopes are the *recurrent*
    /// parameters — the ones model persistence pins on-chip.
    pub(crate) is_wave: bool,
}

// ---------------------------------------------------------------------
// Interpreter state
// ---------------------------------------------------------------------

pub(crate) struct Interp<'a> {
    pub(crate) program: &'a IlirProgram,
    pub(crate) lin: &'a Linearized,
    pub(crate) rt: RtEnv,
    pub(crate) bufs: Vec<Option<Buffer>>,
    pub(crate) profile: Profile,
    pub(crate) slots: Vec<i64>,
    pub(crate) scopes: Vec<Scope>,
    /// Accumulated loads of persisted parameters (flushed once at the end:
    /// persistence reads each needed parameter byte exactly once).
    pub(crate) persisted_loads: Vec<u64>,
    pub(crate) persist_active: bool,
    pub(crate) nonlin: NonlinearityMode,
    pub(crate) opts: ExecOptions,
    pub(crate) compiled: Rc<Vec<CompiledKernel>>,
    pub(crate) wave_plans: Rc<HashMap<usize, Rc<WavePlan>>>,
    pub(crate) bulk_plans: Rc<HashMap<(usize, usize), Rc<BulkPlan>>>,
    pub(crate) fused_waves: Rc<HashMap<(usize, usize), Rc<FusedWave>>>,
    /// The lowered linear instruction stream the pc runtime executes.
    pub(crate) plan: Rc<Program>,
    /// The plan specialized into direct-threaded closure code — the
    /// default dispatch tier when attached (see `super::threaded`).
    pub(crate) threaded: Option<Rc<super::threaded::ThreadedProgram>>,
    /// Index of the kernel currently launching — the kernel half of the
    /// bulk-plan keys.
    pub(crate) cur_kernel: usize,
    pub(crate) wave_ancestors: Rc<std::collections::HashSet<usize>>,
    /// Shared engine state, *shuttled* in and out around execution: the
    /// engine swaps its caches into exactly one interpreter at a time
    /// (the running one), which is how `execute_many`'s requests share
    /// packed weights and scratch pools without aliasing.
    pub(crate) caches: Caches,
    /// Sites of the wave currently executing, served from GEMM results.
    pub(crate) active: Vec<ActiveSite>,
    /// Stacked GEMMs of the wave currently executing.
    pub(crate) active_groups: Vec<ActiveGroup>,
    /// `(Sum-body address, index into active)` of the active sites. A
    /// linear scan: waves have a handful of sites, and this lookup runs
    /// once per interpreted `Sum` element — the hottest path there is,
    /// where a `HashMap` hash would dominate.
    pub(crate) memo: Vec<(usize, usize)>,
    /// Zeroed per-tensor touch arrays, recycled across scopes.
    pub(crate) scope_pool: Vec<Vec<(u64, u64)>>,
    /// Per-tensor store generation: bumped on every interpreted store, so
    /// packed-weight cache entries are invalidated the moment their
    /// source tensor is written (a non-`Param` weight may legally be
    /// produced by a precompute kernel — or rewritten between waves).
    pub(crate) store_gens: Vec<u64>,
    /// Process-unique id of this interpreter instance. Non-`Param`
    /// packed-weight entries only validate within the epoch that packed
    /// them: store generations are per-interpreter (all start at 0), so
    /// two requests of one batch — or two consecutive runs — can reach
    /// identical generation counts for a kernel-written weight holding
    /// different values.
    pub(crate) cache_epoch: u64,
    /// Shadow-access checker state (`checked` builds only): the dynamic
    /// twin of the static effect summaries — see
    /// [`super::analysis::shadow`].
    #[cfg(feature = "checked")]
    pub(crate) shadow: super::analysis::shadow::ShadowState,
}

/// Source of [`Interp::cache_epoch`] values.
static NEXT_CACHE_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl<'a> Interp<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        program: &'a IlirProgram,
        lin: &'a Linearized,
        params: &Params,
        persist_active: bool,
        opts: ExecOptions,
        shared: super::SharedPlans,
        max_slots: usize,
        param_arena: &mut HashMap<u32, Rc<Vec<f32>>>,
        buf_pool: &mut Vec<Vec<f32>>,
    ) -> Result<Self, ExecError> {
        let rt = RtEnv::new(program, lin)?;
        let n_tensors = program.tensors.len();
        let mut bufs: Vec<Option<Buffer>> = vec![None; n_tensors];
        let mut profile = Profile::new();
        for decl in program.declared_tensors() {
            assert!(decl.dims.len() <= 8, "tensor rank > 8 unsupported");
            let mut da = [0usize; 8];
            for (i, d) in decl.dims.iter().enumerate() {
                da[i] = match d {
                    DimExtent::Fixed(n) => *n,
                    DimExtent::Nodes => lin.num_nodes(),
                    DimExtent::MaxBatch => rt.max_batch,
                };
            }
            let dims = Dims {
                a: da,
                len: decl.dims.len() as u8,
            };
            let buf = if decl.class == StorageClass::Param {
                let bound = params
                    .get(&decl.name)
                    .ok_or_else(|| ExecError::MissingParam(decl.name.clone()))?;
                if bound.shape().dims() != &*dims {
                    return Err(ExecError::ParamShape {
                        name: decl.name.clone(),
                        expected: dims.to_vec(),
                        found: bound.shape().dims().to_vec(),
                    });
                }
                // Parameters are read-only to the generated code: every
                // interpreter shares the engine arena's one allocation
                // (filled on first use per params generation) instead of
                // copying the full weight + embedding set per run.
                let shared_buf = param_arena
                    .entry(decl.id.0)
                    .or_insert_with(|| Rc::new(bound.as_slice().to_vec()));
                debug_assert_eq!(shared_buf.len(), bound.len());
                Buffer::shared(dims, decl.class, shared_buf.clone())
            } else {
                Buffer::new(dims, decl.class, buf_pool)
            };
            if decl.class == StorageClass::Scratch {
                profile.scratch_allocated_bytes += buf.bytes();
            }
            profile.allocated_bytes += buf.bytes();
            bufs[decl.id.0 as usize] = Some(buf);
        }
        Ok(Interp {
            program,
            lin,
            rt,
            bufs,
            profile,
            slots: vec![0; max_slots],
            scopes: Vec::new(),
            persisted_loads: vec![0; n_tensors],
            store_gens: vec![0; n_tensors],
            persist_active,
            // The rational substitution is a schedule choice either side
            // can make: the engine option or the program's schedule.
            nonlin: if opts.nonlinearity == NonlinearityMode::Rational {
                NonlinearityMode::Rational
            } else {
                program.meta.schedule.nonlinearity
            },
            opts,
            compiled: shared.compiled,
            wave_plans: shared.wave_plans,
            bulk_plans: shared.bulk_plans,
            fused_waves: shared.fused_waves,
            plan: shared.plan,
            threaded: shared.threaded,
            cur_kernel: 0,
            wave_ancestors: shared.wave_ancestors,
            caches: Caches::default(),
            active: Vec::new(),
            active_groups: Vec::new(),
            memo: Vec::new(),
            scope_pool: Vec::new(),
            cache_epoch: NEXT_CACHE_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            #[cfg(feature = "checked")]
            shadow: Default::default(),
        })
    }

    /// Post-run accounting shared by both runtimes' completion paths.
    pub(crate) fn finalize_run(&mut self) {
        // Unrolled schedules: reclassify stage barriers and credit cache
        // reuse along intra-group edges (Fig. 3's yellow boxes).
        if self.program.meta.schedule.unroll.is_some() {
            if self.program.meta.schedule.unroll_block_local {
                // One node per thread block: intra-group stage boundaries
                // are block-local syncs; only super waves need the device.
                let total = self.profile.barriers_global;
                let global = self.rt.num_super_waves as u64;
                self.profile.barriers_block = total.saturating_sub(global);
                self.profile.barriers_global = global;
            } else {
                // Fig. 11: the barrier cannot be amortized across the
                // groups of a super wave — each unrolled call region
                // synchronizes its own stages.
                self.profile.barriers_global = self
                    .profile
                    .barriers_global
                    .max(self.rt.unamortized_barriers as u64);
            }
            let per_edge_bytes: u64 = self
                .program
                .declared_tensors()
                .filter(|t| t.is_output || matches!(t.dims.first(), Some(DimExtent::Nodes)))
                .filter(|t| t.class == StorageClass::Global)
                .map(|t| {
                    t.dims
                        .iter()
                        .skip(1)
                        .map(|d| match d {
                            DimExtent::Fixed(n) => *n as u64,
                            _ => 1,
                        })
                        .product::<u64>()
                        * 4
                })
                .sum();
            self.profile.cache_reuse_bytes = self.rt.intra_group_edges as u64 * per_edge_bytes;
        }
        // Recursive refactoring: the fused A2/A1 stage boundary is a
        // block-local sync per wave (per-subtree blocking), accounted here.
        if self.program.meta.schedule.refactor_split.is_some() {
            self.profile.barriers_block += self.lin.internal_batches().len() as u64;
        }
        // Persisted parameters: each needed byte read exactly once.
        if self.persist_active {
            for (i, &loads) in self.persisted_loads.iter().enumerate() {
                if loads > 0 {
                    if let Some(buf) = &self.bufs[i] {
                        self.profile.param_bytes_read += (loads * 4).min(buf.bytes());
                    }
                }
            }
        }
    }

    pub(crate) fn finish(
        mut self,
        buf_pool: &mut Vec<Vec<f32>>,
    ) -> Result<(HashMap<TensorId, Tensor>, Profile), ExecError> {
        let mut outputs = HashMap::new();
        for id in &self.program.outputs {
            let buf = self.bufs[id.0 as usize]
                .take()
                .ok_or_else(|| ExecError::Internal(format!("output {id} has no buffer")))?;
            let t = Tensor::from_vec(buf.data.into_vec(), &buf.dims)
                .map_err(|e| ExecError::Internal(e.to_string()))?;
            outputs.insert(*id, t);
        }
        // Recycle the non-output allocations (outputs left via
        // `into_vec` above). Capped so one oversized structure cannot
        // pin memory forever.
        const POOL_CAP: usize = 256;
        for slot in &mut self.bufs {
            if let Some(Buffer {
                data: BufData::Owned(v),
                ..
            }) = slot.take()
            {
                if buf_pool.len() < POOL_CAP && v.capacity() > 0 {
                    buf_pool.push(v);
                }
            }
        }
        Ok((outputs, self.profile))
    }

    // -- accounting ---------------------------------------------------

    pub(crate) fn push_scope(&mut self, is_wave: bool) {
        let flops = self.profile.flops;
        let touch = self
            .scope_pool
            .pop()
            .unwrap_or_else(|| vec![(0, 0); self.bufs.len()]);
        debug_assert!(touch.iter().all(|&t| t == (0, 0)));
        self.scopes.push(Scope {
            touch,
            flops_start: flops,
            flops_attributed: 0,
            width: 0,
            is_wave,
        });
    }

    pub(crate) fn pop_scope(&mut self) {
        let mut scope = self.scopes.pop().expect("scope underflow");
        let delta = self.profile.flops - scope.flops_start;
        let own = delta - scope.flops_attributed;
        if let Some(parent) = self.scopes.last_mut() {
            parent.flops_attributed += delta;
        }
        let mut wave_bytes = 0u64;
        for (t, counts) in scope.touch.iter_mut().enumerate() {
            let (loads, stores) = std::mem::take(counts);
            if loads == 0 && stores == 0 {
                continue;
            }
            let tensor = TensorId(t as u32);
            let Some(buf) = &self.bufs[tensor.0 as usize] else {
                continue;
            };
            let size = buf.bytes();
            match buf.class {
                StorageClass::Param => {
                    // Persistence pins the recurrent parameters (those
                    // read every wave); one-shot reads (embedding gathers
                    // in leaf/precompute kernels) always pay their
                    // traffic, as in GRNN/DeepCPU.
                    if self.persist_active && scope.is_wave {
                        self.persisted_loads[tensor.0 as usize] += loads;
                    } else {
                        let b = (loads * 4).min(size);
                        self.profile.param_bytes_read += b;
                        wave_bytes += b;
                    }
                }
                StorageClass::Global => {
                    let r = (loads * 4).min(size);
                    let w = (stores * 4).min(size);
                    self.profile.global_bytes_read += r;
                    self.profile.global_bytes_written += w;
                    wave_bytes += r + w;
                }
                StorageClass::Scratch => {
                    self.profile.scratch_bytes_accessed += (loads + stores) * 4;
                }
            }
        }
        if own > 0 || wave_bytes > 0 {
            self.profile.waves.push(WaveStat {
                flops: own,
                width: scope.width.max(1),
                bytes: wave_bytes,
            });
        }
        self.scope_pool.push(scope.touch);
    }

    #[inline]
    pub(crate) fn record_load(&mut self, tensor: TensorId) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.touch[tensor.0 as usize].0 += 1;
        }
    }

    #[inline]
    pub(crate) fn record_store(&mut self, tensor: TensorId) {
        self.store_gens[tensor.0 as usize] += 1;
        if let Some(scope) = self.scopes.last_mut() {
            scope.touch[tensor.0 as usize].1 += 1;
        }
    }

    // -- statement helpers shared by both runtimes --------------------

    /// Executes a `Store` statement (offset, accounting, write).
    pub(crate) fn exec_store(
        &mut self,
        tensor: TensorId,
        index: &[IdxExpr],
        value: &cortex_core::expr::ValExpr,
    ) {
        let v = self.eval_val(value);
        let off = self.offset(tensor, index);
        #[cfg(feature = "checked")]
        self.shadow_check_store(tensor, off);
        self.record_store(tensor);
        let buf = self.bufs[tensor.0 as usize]
            .as_mut()
            .expect("stored tensor allocated");
        buf.data.as_mut()[off] = v;
    }

    pub(crate) fn offset(&mut self, tensor: TensorId, index: &[IdxExpr]) -> usize {
        let mut coords = [0i64; 8];
        for (d, e) in index.iter().enumerate() {
            coords[d] = self.eval_idx(e);
        }
        let buf = self.bufs[tensor.0 as usize]
            .as_ref()
            .expect("tensor allocated");
        let mut off = 0usize;
        for (d, &c) in coords.iter().enumerate().take(index.len()) {
            debug_assert!(
                c >= 0 && (c as usize) < buf.dims[d],
                "index {} out of bounds for dim {} of {:?} (tensor {tensor})",
                c,
                d,
                buf.dims
            );
            off += c as usize * buf.strides[d];
        }
        off
    }

    /// Base offset and `i`-stride of an index list whose non-`i`
    /// positions are loop-invariant (evaluated once).
    pub(crate) fn strided_offset(
        &mut self,
        tensor: TensorId,
        index: &[IdxExpr],
        i_pos: Option<usize>,
    ) -> (usize, usize) {
        let mut coords = [0i64; 8];
        for (d, e) in index.iter().enumerate() {
            if Some(d) == i_pos {
                continue;
            }
            coords[d] = self.eval_idx(e);
        }
        let buf = self.bufs[tensor.0 as usize]
            .as_ref()
            .expect("tensor allocated");
        let mut base = 0usize;
        for (d, _) in index.iter().enumerate() {
            if Some(d) == i_pos {
                continue;
            }
            base += coords[d] as usize * buf.strides[d];
        }
        (base, i_pos.map_or(0, |d| buf.strides[d]))
    }

    // -- index/boolean expression evaluation --------------------------

    pub(crate) fn eval_idx(&mut self, e: &IdxExpr) -> i64 {
        match e {
            IdxExpr::Const(c) => *c,
            IdxExpr::Var(v) => self.slots[v.id() as usize],
            IdxExpr::Rt(r) => self.rt_scalar(*r),
            IdxExpr::Ufn(f, args) => {
                let a0 = self.eval_idx(&args[0]);
                match f {
                    Ufn::Child(k) => self.lin.child_array(*k as usize)[a0 as usize] as i64,
                    Ufn::Word => self.lin.word(a0 as u32) as i64,
                    Ufn::NumChildren => {
                        self.profile.leaf_check_loads += 1;
                        self.lin.num_children_of(a0 as u32) as i64
                    }
                    Ufn::BatchBegin => self.rt.batches[a0 as usize].begin() as i64,
                    Ufn::BatchLength => self.rt.batches[a0 as usize].len() as i64,
                    Ufn::NodeAt => self.lin.post_order()[a0 as usize] as i64,
                    Ufn::RootAt => self.lin.roots()[a0 as usize] as i64,
                    Ufn::StageLength => self.rt.stages[a0 as usize].len() as i64,
                    Ufn::StageNodeAt => {
                        let a1 = self.eval_idx(&args[1]);
                        self.rt.stages[a0 as usize][a1 as usize] as i64
                    }
                }
            }
            IdxExpr::Bin(op, a, b) => {
                let (x, y) = (self.eval_idx(a), self.eval_idx(b));
                match op {
                    IdxBinOp::Add => x + y,
                    IdxBinOp::Sub => x - y,
                    IdxBinOp::Mul => x * y,
                    IdxBinOp::Div => x.div_euclid(y),
                    IdxBinOp::Rem => x.rem_euclid(y),
                    IdxBinOp::Min => x.min(y),
                    IdxBinOp::Max => x.max(y),
                }
            }
        }
    }

    pub(crate) fn rt_scalar(&self, r: RtScalar) -> i64 {
        match r {
            RtScalar::NumNodes => self.lin.num_nodes() as i64,
            RtScalar::NumInternal => self.lin.num_internal() as i64,
            RtScalar::NumLeaves => (self.lin.num_nodes() - self.lin.num_internal()) as i64,
            RtScalar::NumInternalBatches => self.lin.internal_batches().len() as i64,
            RtScalar::LeafBegin => self.lin.num_internal() as i64,
            RtScalar::MaxBatchLen => self.rt.max_batch as i64,
            RtScalar::NumRoots => self.lin.roots().len() as i64,
            RtScalar::NumStages => self.rt.stages.len() as i64,
        }
    }

    pub(crate) fn eval_bool(&mut self, e: &BoolExpr) -> bool {
        match e {
            BoolExpr::Cmp(op, a, b) => {
                let (x, y) = (self.eval_idx(a), self.eval_idx(b));
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            }
            BoolExpr::IsLeaf(n) => {
                let v = self.eval_idx(n);
                self.lin.is_leaf(v as u32)
            }
            BoolExpr::And(a, b) => self.eval_bool(a) && self.eval_bool(b),
            BoolExpr::Or(a, b) => self.eval_bool(a) || self.eval_bool(b),
            BoolExpr::Not(a) => !self.eval_bool(a),
        }
    }

    /// The flat launch schedule both runtimes execute: `Once` kernels in
    /// order, each `PerInternalBatch` run expanded over the input's batch
    /// indices. Precomputing it lets the resumable machines treat every
    /// kernel launch uniformly.
    pub(crate) fn launch_units(&self) -> Vec<(usize, Option<i64>)> {
        launch_units(&self.compiled, self.program, self.lin)
    }
}

/// See [`Interp::launch_units`].
pub(crate) fn launch_units(
    compiled: &[CompiledKernel],
    program: &IlirProgram,
    lin: &Linearized,
) -> Vec<(usize, Option<i64>)> {
    use cortex_core::ilir::LaunchPattern;
    let num_internal_batches = if program.meta.schedule.specialize {
        lin.internal_batches().len() as i64
    } else {
        lin.internal_batches().len() as i64 + 1
    };
    let mut units = Vec::new();
    let mut i = 0;
    while i < compiled.len() {
        match compiled[i].launch {
            LaunchPattern::Once => {
                units.push((i, None));
                i += 1;
            }
            LaunchPattern::PerInternalBatch => {
                let mut j = i;
                while j < compiled.len() && compiled[j].launch == LaunchPattern::PerInternalBatch {
                    j += 1;
                }
                for b in 0..num_internal_batches {
                    for k in i..j {
                        units.push((k, Some(b)));
                    }
                }
                i = j;
            }
        }
    }
    units
}

/// Marks every statement whose subtree contains a planned wave loop
/// (including the loop itself). Returns whether `stmt`'s subtree does.
pub(crate) fn collect_wave_ancestors(
    stmt: &Stmt,
    plans: &HashMap<usize, Rc<WavePlan>>,
    out: &mut std::collections::HashSet<usize>,
) -> bool {
    let mut contains = plans.contains_key(&(stmt as *const Stmt as usize));
    match stmt {
        Stmt::For { body, .. } | Stmt::Let { body, .. } => {
            for s in body {
                contains |= collect_wave_ancestors(s, plans, out);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                contains |= collect_wave_ancestors(s, plans, out);
            }
        }
        Stmt::Store { .. } | Stmt::Barrier => {}
    }
    if contains {
        out.insert(stmt as *const Stmt as usize);
    }
    contains
}

//! Semantic analyses over the lowered ExecPlan IR.
//!
//! PR 5 flattened every kernel into a [`Program`](super::program) op
//! stream and PR 7 gave it a *structural* verifier; this module adds
//! the *semantic* layer a real compiler IR carries (Relay and the
//! DL-compiler survey both treat these as table stakes):
//!
//! * [`cfg`] — the explicit op-level control-flow graph (successors /
//!   predecessors per op, derived from the jump/branch/loop operands
//!   the lowering already resolves).
//! * [`dataflow`] — a direction- and meet-generic worklist solver over
//!   gen/kill transfer functions on slot bit-sets.
//! * [`effects`] — per-op effect summaries: which slots an op reads and
//!   writes, plus the symbolic *region* model ([`effects::RegionDim`])
//!   that abstracts index expressions into row descriptors
//!   (constant / loop-counter / child-indirection chains).
//! * [`liveness`] — backward slot liveness and its two consumers:
//!   dead-`Let` elimination and slot coalescing
//!   ([`liveness::optimize_kernels`], run at engine build when
//!   [`ExecOptions::optimize`](super::ExecOptions::optimize) is on).
//! * [`parsafety`] — the static parallel-safety certifier: region-based
//!   disjointness reasoning that certifies each wave GEMM body and each
//!   fused row pass as [`ParSafety::RowDisjoint`] or
//!   [`ParSafety::Sequential`] with a typed reason. Certificates are
//!   stored in the lowered [`Program`](super::program::Program) and
//!   re-derived by [`super::verify`], so a forged certificate is
//!   rejected before any run is admitted. The multicore roadmap item
//!   consumes exactly these certificates.
//! * [`shadow`] (`checked` feature only) — the dynamic shadow-access
//!   checker: records the rows each wave actually gathers and the rows
//!   each fused pass actually writes, and panics the moment a runtime
//!   access falls outside what the static summaries promised.

pub(crate) mod cfg;
pub(crate) mod dataflow;
pub(crate) mod effects;
pub(crate) mod liveness;
pub(crate) mod parsafety;
#[cfg(feature = "checked")]
pub(crate) mod shadow;

pub use parsafety::{ParSafety, SeqReason};

//! The dynamic shadow-access checker (`checked` feature only).
//!
//! Soundness instrumentation for the static analyses: while a wave's
//! GEMM results are active, every tensor cell the gather phase packed
//! into an operand row is recorded, and any interpreted store that
//! lands on a recorded cell panics — it would mean the wave batcher
//! read a value that per-node interpretation would have produced
//! *during* the wave, exactly the intra-wave dependence `plan_wave`
//! statically rules out. Likewise each fused row pass records which
//! wave row wrote each cell and asserts that no other row writes or
//! reads it — the runtime twin of the
//! [`ParSafety::RowDisjoint`](super::parsafety::ParSafety) certificate.
//!
//! The hooks live behind `--features checked` and are exercised by the
//! cross-model suites (every model × every schedule, both runtimes);
//! they are absent from release builds. Each hook bumps
//! `ExecStats::shadow_checks` so tests can assert the instrumentation
//! actually ran.

use std::collections::{HashMap, HashSet};

use cortex_core::expr::TensorId;

use super::super::interp::Interp;
use super::super::scalar::Res;

/// Per-interpreter shadow state.
#[derive(Default)]
pub(crate) struct ShadowState {
    /// Nesting depth of active waves (gathered rows outstanding).
    wave_depth: usize,
    /// `(tensor, cell)` pairs the active waves' gathers read.
    gathered: HashSet<(usize, usize)>,
    /// The wave row the current fused pass is serving.
    fused_row: Option<i64>,
    /// `(tensor, cell) → owning row` for the current fused wave.
    fused_writes: HashMap<(u32, usize), i64>,
}

impl<'a> Interp<'a> {
    /// A wave's gathered rows just became live.
    pub(crate) fn shadow_enter_wave(&mut self) {
        self.caches.stats.shadow_checks += 1;
        self.shadow.wave_depth += 1;
    }

    /// A wave retired; at depth zero its recorded cells are released.
    pub(crate) fn shadow_exit_wave(&mut self) {
        self.caches.stats.shadow_checks += 1;
        self.shadow.wave_depth = self.shadow.wave_depth.saturating_sub(1);
        if self.shadow.wave_depth == 0 {
            self.shadow.gathered.clear();
        }
    }

    /// Records the cells one packed operand row read.
    pub(crate) fn shadow_record_row(&mut self, resolved: &[Res], k_len: usize) {
        self.caches.stats.shadow_checks += 1;
        let mut record = |t: usize, b: usize, s: usize| {
            if s == 0 {
                self.shadow.gathered.insert((t, b));
            } else {
                for kk in 0..k_len {
                    self.shadow.gathered.insert((t, b + kk * s));
                }
            }
        };
        for r in resolved {
            match r {
                Res::Stream(t, b, s) => record(*t, *b, *s),
                Res::AddStreams(v) => v.iter().for_each(|(t, b, s)| record(*t, *b, *s)),
                Res::Zero => {}
            }
        }
    }

    /// An interpreted store: must not touch a gathered cell.
    pub(crate) fn shadow_check_store(&mut self, tensor: TensorId, off: usize) {
        self.caches.stats.shadow_checks += 1;
        if self.shadow.wave_depth > 0 {
            assert!(
                !self.shadow.gathered.contains(&(tensor.0 as usize, off)),
                "shadow violation: store to {tensor}[{off}] while the wave's \
                 gather holds that cell (intra-wave dependence)"
            );
        }
    }

    /// A bulk store pass: no gathered cell, and within a fused wave the
    /// serving row claims exclusive ownership of each written cell.
    pub(crate) fn shadow_check_bulk_store(
        &mut self,
        tensor: TensorId,
        base: usize,
        stride: usize,
        h: usize,
    ) {
        self.caches.stats.shadow_checks += 1;
        let cells = if stride == 0 { h.min(1) } else { h };
        for kk in 0..cells {
            let off = base + kk * stride;
            if self.shadow.wave_depth > 0 {
                assert!(
                    !self.shadow.gathered.contains(&(tensor.0 as usize, off)),
                    "shadow violation: bulk store to {tensor}[{off}] while the \
                     wave's gather holds that cell (intra-wave dependence)"
                );
            }
            if let Some(row) = self.shadow.fused_row {
                let owner = *self
                    .shadow
                    .fused_writes
                    .entry((tensor.0, off))
                    .or_insert(row);
                assert!(
                    owner == row,
                    "shadow violation: fused rows {owner} and {row} both wrote \
                     {tensor}[{off}] (RowDisjoint certificate broken)"
                );
            }
        }
    }

    /// A bulk load pass within a fused wave: every cell read must be
    /// unwritten by this fused wave or owned by the serving row itself.
    pub(crate) fn shadow_check_bulk_load(
        &mut self,
        tensor: TensorId,
        base: usize,
        stride: usize,
        h: usize,
    ) {
        self.caches.stats.shadow_checks += 1;
        let Some(row) = self.shadow.fused_row else {
            return;
        };
        let cells = if stride == 0 { h.min(1) } else { h };
        for kk in 0..cells {
            let off = base + kk * stride;
            if let Some(&owner) = self.shadow.fused_writes.get(&(tensor.0, off)) {
                assert!(
                    owner == row,
                    "shadow violation: fused row {row} read {tensor}[{off}] \
                     written by row {owner} (RowDisjoint certificate broken)"
                );
            }
        }
    }

    /// The fused wave starts serving row `r`.
    pub(crate) fn shadow_begin_fused_row(&mut self, r: i64) {
        self.caches.stats.shadow_checks += 1;
        self.shadow.fused_row = Some(r);
    }

    /// The fused wave retired; ownership records are released.
    pub(crate) fn shadow_end_fused(&mut self) {
        self.caches.stats.shadow_checks += 1;
        self.shadow.fused_row = None;
        self.shadow.fused_writes.clear();
    }
}

//! Slot liveness and its consumers: dead-`Let` elimination and slot
//! coalescing, run over the compiled kernels at engine build.
//!
//! [`optimize_kernels`] lowers the kernels once *without* any plans
//! (the plan-free op stream has the same control flow and the same
//! expressions as the final program — wave/bulk/fused ops only replace
//! loop bodies wholesale), solves backward slot liveness over the op
//! CFG, and then:
//!
//! 1. **Dead-`Let` elimination** — a `Let` whose slot is dead at its
//!    own out-point computes a value nothing reads; it is removed and
//!    its body spliced inline. Re-solved to a fixpoint so chains of
//!    dead bindings collapse. `Let`s whose value evaluation bumps a
//!    `Profile` counter (a `num_children` load — the only counting
//!    uninterpreted function) are kept, so profiles stay bit-identical
//!    with the optimization on or off.
//! 2. **Slot coalescing** — slots that are never simultaneously live
//!    share one register: interference is built at definition points
//!    (standard for programs with definite assignment, which the
//!    ILIR's scoped binders guarantee and `verify`'s `UseBeforeDef`
//!    check enforces), plus three structural rules — the external
//!    batch-slot binding interferes with everything live at kernel
//!    entry; `Sum` binders interfere with everything their op reads or
//!    keeps live (they clobber mid-evaluation); and all slots
//!    appearing syntactically inside one parallel `d_batch` body are
//!    pairwise kept distinct. The last rule is what keeps renaming
//!    sound for the wave analyses: renaming is a uniform function, so
//!    equal expressions stay equal, but a *non-injective* merge could
//!    manufacture false structural equality between expressions the
//!    wave/fused/stacking analyses compare across loop iterations —
//!    and every such cross-time comparison is confined to `d_batch`
//!    bodies.
//!
//! A forward definite-assignment solve (the must-analysis twin of
//! liveness) re-checks the rewritten kernels under debug assertions:
//! every read must be dominated by a write on all paths, which would
//! catch a miscolored rewrite long before the weaker textual
//! `UseBeforeDef` scan does.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use cortex_core::expr::{BoolExpr, IdxExpr, ValExpr, Var};
use cortex_core::ilir::{LoopKind, Stmt};

use super::super::lowering::{self, CompiledKernel};
use super::super::program::{Op, Program};
use super::cfg::OpCfg;
use super::dataflow::{self, BitSet, Direction, GenKill, Meet};
use super::effects::{self, OpEffects};

/// What [`optimize_kernels`] did, surfaced through
/// [`PlanStats`](super::super::PlanStats) and `Engine::stats()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OptStats {
    /// Dead `Let` bindings eliminated.
    pub(crate) dead_lets: usize,
    /// Register slots saved by coalescing (live slots minus colors).
    pub(crate) slots_coalesced: usize,
}

/// Rewrites `kernels` with dead `Let`s removed and slots coalesced.
///
/// Outputs and `Profile`s are bit-identical to the unoptimized
/// kernels by construction: removed evaluations are counter-free, the
/// store/branch/launch structure is untouched, and renaming slots
/// changes only register numbering (property-tested against the
/// interp oracle over every model).
pub(crate) fn optimize_kernels(kernels: Vec<CompiledKernel>) -> (Vec<CompiledKernel>, OptStats) {
    if kernels.is_empty() {
        return (kernels, OptStats::default());
    }
    let rc = Rc::new(kernels);
    // Plan-free preliminary lowering: same CFG and expressions as the
    // final program, analyzable before any wave/bulk/fused decisions.
    let plan = lowering::lower(&rc, &HashMap::new(), &HashMap::new(), &HashMap::new());
    let cfg = OpCfg::build(&plan);
    let eff = effects::op_effects(&plan);
    let nslots = rc.iter().map(|k| k.num_slots).max().unwrap_or(0);

    // --- Liveness + dead-`Let` elimination, to a fixpoint ---
    let mut dead: HashSet<usize> = HashSet::new();
    let live = loop {
        let transfers = liveness_transfers(&plan, &eff, &dead, nslots);
        let sol = dataflow::solve(
            &cfg,
            Direction::Backward,
            Meet::Union,
            &transfers,
            nslots,
            &HashMap::new(),
        );
        let mut changed = false;
        for (pc, op) in plan.ops.iter().enumerate() {
            if let Op::Let { slot, value } = op {
                let addr = *value as usize;
                if dead.contains(&addr) || sol.outs[pc].contains(*slot) {
                    continue;
                }
                // SAFETY: `plan.source` owns the expression tree (the
                // pointer invariant of `super::super::program`).
                if crate::wave::idx_has_counting_ufn(unsafe { &**value }) {
                    continue;
                }
                dead.insert(addr);
                changed = true;
            }
        }
        if !changed {
            break sol;
        }
    };

    // --- Per-kernel interference, coloring, and rewrite ---
    let mut stats = OptStats {
        dead_lets: dead.len(),
        slots_coalesced: 0,
    };
    let mut out = Vec::with_capacity(rc.len());
    for (ki, &(lo, hi)) in cfg.kernel_ranges.iter().enumerate() {
        let kernel = &rc[ki];
        let s_count = kernel.num_slots;
        let mut used = vec![false; s_count];
        let mut adj: Vec<BitSet> = vec![BitSet::new(s_count); s_count];
        let add_edge = |adj: &mut Vec<BitSet>, a: usize, b: usize| {
            if a != b {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        };
        for (pc, e) in eff.iter().enumerate().take(hi).skip(lo) {
            if is_dead_let(&plan.ops[pc], &dead) {
                continue;
            }
            debug_assert!(!e.clobbers_all, "plan-free lowering emitted a plan op");
            for &s in e.reads.iter().chain(&e.writes).chain(&e.binders) {
                used[s as usize] = true;
            }
            // Definition-point rule: a write interferes with everything
            // live just after it.
            for &w in &e.writes {
                for s in live.outs[pc].iter() {
                    add_edge(&mut adj, w as usize, s);
                }
            }
            // `Sum` binders clobber mid-evaluation: keep them apart
            // from the op's reads, everything live across the op, and
            // each other (nested reductions).
            for (bi, &b) in e.binders.iter().enumerate() {
                for &r in &e.reads {
                    add_edge(&mut adj, b as usize, r as usize);
                }
                for s in live.outs[pc].iter() {
                    add_edge(&mut adj, b as usize, s);
                }
                for &b2 in &e.binders[bi + 1..] {
                    add_edge(&mut adj, b as usize, b2 as usize);
                }
            }
        }
        // The batch slot is bound by the runtime before kernel entry.
        if let Some(bs) = kernel.batch_slot {
            used[bs] = true;
            for s in live.ins[lo].iter() {
                add_edge(&mut adj, bs, s);
            }
        }
        // Parallel `d_batch` bodies: keep every syntactic slot distinct
        // (see module docs — cross-iteration structural comparisons).
        let mut cliques = Vec::new();
        collect_batch_body_cliques(&kernel.body, &mut cliques);
        for set in &cliques {
            for (i, &a) in set.iter().enumerate() {
                for &b in &set[i + 1..] {
                    add_edge(&mut adj, a as usize, b as usize);
                }
            }
        }

        // Greedy coloring in slot order.
        let mut colors = vec![u32::MAX; s_count];
        let mut colors_used = 0u32;
        for s in 0..s_count {
            if !used[s] {
                continue;
            }
            let mut c = 0u32;
            loop {
                let clash = adj[s].iter().any(|n| used[n] && colors[n] == c);
                if !clash {
                    break;
                }
                c += 1;
            }
            colors[s] = c;
            colors_used = colors_used.max(c + 1);
        }
        let live_slots = used.iter().filter(|&&u| u).count();
        stats.slots_coalesced += live_slots - colors_used as usize;

        let body = kernel
            .body
            .iter()
            .flat_map(|s| rewrite_stmt(s, &dead, &colors))
            .collect();
        out.push(CompiledKernel {
            launch: kernel.launch,
            batch_slot: kernel.batch_slot.map(|s| colors[s] as usize),
            body,
            num_slots: colors_used as usize,
        });
    }

    if cfg!(debug_assertions) {
        let rc = Rc::new(out);
        let plan = lowering::lower(&rc, &HashMap::new(), &HashMap::new(), &HashMap::new());
        assert!(
            definitely_assigned(&plan),
            "slot optimization broke definite assignment"
        );
        drop(plan);
        out = Rc::try_unwrap(rc).unwrap_or_else(|_| unreachable!("plan dropped above"));
    }
    (out, stats)
}

/// Backward-liveness transfers: `gen` = slots read, `kill` = slots
/// written; dead `Let`s contribute nothing (they will be removed).
fn liveness_transfers(
    plan: &Program,
    eff: &[OpEffects],
    dead: &HashSet<usize>,
    nslots: usize,
) -> Vec<GenKill> {
    plan.ops
        .iter()
        .zip(eff)
        .map(|(op, e)| {
            let mut t = GenKill::empty(nslots);
            if is_dead_let(op, dead) {
                return t;
            }
            if e.clobbers_all {
                t.gen = BitSet::full(nslots);
                return t;
            }
            for &r in &e.reads {
                t.gen.insert(r as usize);
            }
            for &w in &e.writes {
                t.kill.insert(w as usize);
            }
            t
        })
        .collect()
}

fn is_dead_let(op: &Op, dead: &HashSet<usize>) -> bool {
    matches!(op, Op::Let { value, .. } if dead.contains(&(*value as usize)))
}

/// Forward definite-assignment (must) analysis: every slot an op reads
/// is written on *all* paths reaching it. The rewrite cross-check.
pub(crate) fn definitely_assigned(plan: &Program) -> bool {
    let cfg = OpCfg::build(plan);
    let eff = effects::op_effects(plan);
    let nslots = plan.source.iter().map(|k| k.num_slots).max().unwrap_or(0);
    let transfers: Vec<GenKill> = eff
        .iter()
        .map(|e| {
            let mut t = GenKill::empty(nslots);
            for &w in &e.writes {
                t.gen.insert(w as usize);
            }
            t
        })
        .collect();
    let mut boundary = HashMap::new();
    for (ki, &(lo, _)) in cfg.kernel_ranges.iter().enumerate() {
        let mut b = BitSet::new(nslots);
        if let Some(bs) = plan.source[ki].batch_slot {
            b.insert(bs);
        }
        boundary.insert(lo, b);
    }
    let sol = dataflow::solve(
        &cfg,
        Direction::Forward,
        Meet::Intersect,
        &transfers,
        nslots,
        &boundary,
    );
    eff.iter()
        .enumerate()
        .all(|(pc, e)| e.clobbers_all || e.reads.iter().all(|&r| sol.ins[pc].contains(r as usize)))
}

// ---------------------------------------------------------------------
// Rewrite
// ---------------------------------------------------------------------

/// Rewrites one statement: dead `Let`s splice their body inline, every
/// surviving variable is renamed to its color.
fn rewrite_stmt(s: &Stmt, dead: &HashSet<usize>, colors: &[u32]) -> Vec<Stmt> {
    match s {
        Stmt::For {
            var,
            extent,
            kind,
            dim,
            body,
        } => vec![Stmt::For {
            var: recolor(*var, colors),
            extent: rewrite_idx(extent, colors),
            kind: *kind,
            dim: dim.clone(),
            body: body
                .iter()
                .flat_map(|st| rewrite_stmt(st, dead, colors))
                .collect(),
        }],
        Stmt::Let { var, value, body } => {
            let inner: Vec<Stmt> = body
                .iter()
                .flat_map(|st| rewrite_stmt(st, dead, colors))
                .collect();
            if dead.contains(&(value as *const IdxExpr as usize)) {
                inner
            } else {
                vec![Stmt::Let {
                    var: recolor(*var, colors),
                    value: rewrite_idx(value, colors),
                    body: inner,
                }]
            }
        }
        Stmt::Store {
            tensor,
            index,
            value,
        } => vec![Stmt::Store {
            tensor: *tensor,
            index: index.iter().map(|e| rewrite_idx(e, colors)).collect(),
            value: rewrite_val(value, colors),
        }],
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => vec![Stmt::If {
            cond: rewrite_bool(cond, colors),
            then_branch: then_branch
                .iter()
                .flat_map(|st| rewrite_stmt(st, dead, colors))
                .collect(),
            else_branch: else_branch
                .iter()
                .flat_map(|st| rewrite_stmt(st, dead, colors))
                .collect(),
        }],
        Stmt::Barrier => vec![Stmt::Barrier],
    }
}

fn recolor(v: Var, colors: &[u32]) -> Var {
    let c = colors[v.id() as usize];
    debug_assert_ne!(c, u32::MAX, "uncolored slot survived the rewrite");
    Var::from_raw(c)
}

fn rewrite_idx(e: &IdxExpr, colors: &[u32]) -> IdxExpr {
    match e {
        IdxExpr::Const(_) | IdxExpr::Rt(_) => e.clone(),
        IdxExpr::Var(v) => IdxExpr::Var(recolor(*v, colors)),
        IdxExpr::Ufn(f, args) => {
            IdxExpr::Ufn(*f, args.iter().map(|a| rewrite_idx(a, colors)).collect())
        }
        IdxExpr::Bin(op, a, b) => IdxExpr::Bin(
            *op,
            Box::new(rewrite_idx(a, colors)),
            Box::new(rewrite_idx(b, colors)),
        ),
    }
}

fn rewrite_bool(e: &BoolExpr, colors: &[u32]) -> BoolExpr {
    match e {
        BoolExpr::Cmp(op, a, b) => {
            BoolExpr::Cmp(*op, rewrite_idx(a, colors), rewrite_idx(b, colors))
        }
        BoolExpr::IsLeaf(a) => BoolExpr::IsLeaf(rewrite_idx(a, colors)),
        BoolExpr::And(a, b) => BoolExpr::And(
            Box::new(rewrite_bool(a, colors)),
            Box::new(rewrite_bool(b, colors)),
        ),
        BoolExpr::Or(a, b) => BoolExpr::Or(
            Box::new(rewrite_bool(a, colors)),
            Box::new(rewrite_bool(b, colors)),
        ),
        BoolExpr::Not(a) => BoolExpr::Not(Box::new(rewrite_bool(a, colors))),
    }
}

fn rewrite_val(e: &ValExpr, colors: &[u32]) -> ValExpr {
    match e {
        ValExpr::Const(_) => e.clone(),
        ValExpr::Load { tensor, index } => ValExpr::Load {
            tensor: *tensor,
            index: index.iter().map(|i| rewrite_idx(i, colors)).collect(),
        },
        ValExpr::Unary(op, a) => ValExpr::Unary(*op, Box::new(rewrite_val(a, colors))),
        ValExpr::Bin(op, a, b) => ValExpr::Bin(
            *op,
            Box::new(rewrite_val(a, colors)),
            Box::new(rewrite_val(b, colors)),
        ),
        ValExpr::Sum { var, extent, body } => ValExpr::Sum {
            var: recolor(*var, colors),
            extent: rewrite_idx(extent, colors),
            body: Box::new(rewrite_val(body, colors)),
        },
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => ValExpr::Select {
            cond: rewrite_bool(cond, colors),
            then: Box::new(rewrite_val(then, colors)),
            otherwise: Box::new(rewrite_val(otherwise, colors)),
        },
    }
}

// ---------------------------------------------------------------------
// Parallel d_batch cliques
// ---------------------------------------------------------------------

/// Collects, per parallel `d_batch` loop, every slot appearing
/// syntactically within it (the loop variable, nested binders, every
/// expression variable) — the sets the coalescer keeps pairwise
/// distinct.
fn collect_batch_body_cliques(stmts: &[Stmt], cliques: &mut Vec<Vec<u32>>) {
    for s in stmts {
        match s {
            Stmt::For {
                var,
                kind: LoopKind::Parallel,
                dim: Some(d),
                body,
                ..
            } if d.0 == "d_batch" => {
                let mut set = vec![var.id()];
                for st in body {
                    collect_stmt_slots(st, &mut set);
                }
                cliques.push(set);
            }
            Stmt::For { body, .. } | Stmt::Let { body, .. } => {
                collect_batch_body_cliques(body, cliques);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_batch_body_cliques(then_branch, cliques);
                collect_batch_body_cliques(else_branch, cliques);
            }
            Stmt::Store { .. } | Stmt::Barrier => {}
        }
    }
}

/// Every slot mentioned by `s`, binders included.
fn collect_stmt_slots(s: &Stmt, out: &mut Vec<u32>) {
    let push = |v: u32, out: &mut Vec<u32>| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    match s {
        Stmt::For {
            var, extent, body, ..
        } => {
            push(var.id(), out);
            effects::idx_slots(extent, &mut Vec::new(), out);
            body.iter().for_each(|st| collect_stmt_slots(st, out));
        }
        Stmt::Let { var, value, body } => {
            push(var.id(), out);
            effects::idx_slots(value, &mut Vec::new(), out);
            body.iter().for_each(|st| collect_stmt_slots(st, out));
        }
        Stmt::Store { index, value, .. } => {
            for dim in index {
                effects::idx_slots(dim, &mut Vec::new(), out);
            }
            let mut binders = Vec::new();
            effects::val_slots(value, &mut Vec::new(), &mut binders, out);
            for b in binders {
                push(b, out);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            effects::bool_slots(cond, &mut Vec::new(), out);
            then_branch
                .iter()
                .for_each(|st| collect_stmt_slots(st, out));
            else_branch
                .iter()
                .for_each(|st| collect_stmt_slots(st, out));
        }
        Stmt::Barrier => {}
    }
}

//! Per-op effect summaries and the symbolic region model.
//!
//! Two abstraction levels, one per consumer:
//!
//! * **Slot effects** ([`OpEffects`], [`op_effects`]) — which register
//!   slots each lowered op reads and writes. This is the input the
//!   gen/kill dataflow transfers are built from
//!   ([`super::liveness`]).
//! * **Symbolic regions** ([`RegionDim`], [`region_of_idx`]) — an
//!   index expression abstracted into the *row* it addresses,
//!   parameterized by loop counters: a constant row, a loop-counter
//!   row (`Slot`), a child-indirection chain off a counter row
//!   (`Child`), or unknown (`Any`). The parallel-safety certifier
//!   ([`super::parsafety`]) reasons about store/load disjointness
//!   entirely in these terms, and the shadow checker
//!   ([`super::shadow`]) dynamically validates the concrete accesses
//!   against what the regions promised.
//!
//! # Safety
//!
//! Ops reference their expressions by raw pointer into the compiled
//! kernels; every deref here is covered by the pointer invariant
//! documented in [`super::super::program`]: `Program::source` owns the
//! statement trees for the program's whole lifetime, and compiled
//! kernels are immutable after construction.

use std::collections::HashMap;

use cortex_core::expr::{BoolExpr, IdxExpr, Ufn, ValExpr};
use cortex_core::ilir::Stmt;

use super::super::program::{Op, Program};

/// The slot-level effect summary of one op.
pub(crate) struct OpEffects {
    /// Slots the op reads (free variables of its expressions; `Sum`
    /// binders are bound, not read).
    pub(crate) reads: Vec<u32>,
    /// Slots the op writes.
    pub(crate) writes: Vec<u32>,
    /// `Sum` binder slots the op clobbers *while* evaluating — never
    /// live across ops, but real writes to the register file within
    /// one (the coalescer must keep them from aliasing anything the op
    /// reads or keeps live).
    pub(crate) binders: Vec<u32>,
    /// The op executes an attached plan (wave prepare, bulk pass,
    /// fused epilogue, scalar fallback) whose slot traffic is not
    /// summarized here; treat as reading and writing everything.
    pub(crate) clobbers_all: bool,
}

impl OpEffects {
    fn none() -> OpEffects {
        OpEffects {
            reads: Vec::new(),
            writes: Vec::new(),
            binders: Vec::new(),
            clobbers_all: false,
        }
    }

    fn opaque() -> OpEffects {
        OpEffects {
            clobbers_all: true,
            ..OpEffects::none()
        }
    }
}

/// Summarizes every op of `plan`.
pub(crate) fn op_effects(plan: &Program) -> Vec<OpEffects> {
    plan.ops
        .iter()
        .map(|op| match op {
            Op::LoopEnter(id) => {
                let l = &plan.loops[*id];
                if l.wave.is_some() || l.fused.is_some() {
                    // Wave prepare / fused dispatch evaluates plan
                    // expressions and drives the loop slot per row.
                    return OpEffects::opaque();
                }
                let mut e = OpEffects::none();
                // SAFETY: see module docs — `plan.source` owns the tree.
                idx_slots(unsafe { &*l.extent }, &mut Vec::new(), &mut e.reads);
                push_unique(&mut e.writes, l.slot as u32);
                e
            }
            Op::LoopNext(id) => {
                let slot = plan.loops[*id].slot as u32;
                OpEffects {
                    reads: vec![slot],
                    writes: vec![slot],
                    ..OpEffects::none()
                }
            }
            Op::Let { slot, value } => {
                let mut e = OpEffects::none();
                // SAFETY: see module docs.
                idx_slots(unsafe { &**value }, &mut Vec::new(), &mut e.reads);
                push_unique(&mut e.writes, *slot as u32);
                e
            }
            Op::Store { stmt } => {
                // SAFETY: see module docs.
                let Stmt::Store { index, value, .. } = (unsafe { &**stmt }) else {
                    return OpEffects::opaque();
                };
                let mut e = OpEffects::none();
                let mut bound = Vec::new();
                for dim in index {
                    idx_slots(dim, &mut bound, &mut e.reads);
                }
                val_slots(value, &mut bound, &mut e.binders, &mut e.reads);
                e
            }
            Op::Branch { cond, .. } => {
                let mut e = OpEffects::none();
                // SAFETY: see module docs.
                bool_slots(unsafe { &**cond }, &mut Vec::new(), &mut e.reads);
                e
            }
            Op::FusedEpilogue | Op::BulkPass { .. } | Op::ScalarStmt { .. } => OpEffects::opaque(),
            Op::Jump(_) | Op::Barrier | Op::KernelEnd => OpEffects::none(),
        })
        .collect()
}

fn push_unique(out: &mut Vec<u32>, s: u32) {
    if !out.contains(&s) {
        out.push(s);
    }
}

/// Collects the slots `e` reads, excluding `bound` binders.
pub(crate) fn idx_slots(e: &IdxExpr, bound: &mut Vec<u32>, out: &mut Vec<u32>) {
    match e {
        IdxExpr::Const(_) | IdxExpr::Rt(_) => {}
        IdxExpr::Var(v) => {
            if !bound.contains(&v.id()) {
                push_unique(out, v.id());
            }
        }
        IdxExpr::Ufn(_, args) => args.iter().for_each(|a| idx_slots(a, bound, out)),
        IdxExpr::Bin(_, a, b) => {
            idx_slots(a, bound, out);
            idx_slots(b, bound, out);
        }
    }
}

pub(crate) fn bool_slots(e: &BoolExpr, bound: &mut Vec<u32>, out: &mut Vec<u32>) {
    match e {
        BoolExpr::Cmp(_, a, b) => {
            idx_slots(a, bound, out);
            idx_slots(b, bound, out);
        }
        BoolExpr::IsLeaf(a) => idx_slots(a, bound, out),
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
            bool_slots(a, bound, out);
            bool_slots(b, bound, out);
        }
        BoolExpr::Not(a) => bool_slots(a, bound, out),
    }
}

/// Collects the slots `e` reads and the `Sum` binder slots it clobbers.
pub(crate) fn val_slots(
    e: &ValExpr,
    bound: &mut Vec<u32>,
    binders: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    match e {
        ValExpr::Const(_) => {}
        ValExpr::Load { index, .. } => index.iter().for_each(|i| idx_slots(i, bound, out)),
        ValExpr::Unary(_, a) => val_slots(a, bound, binders, out),
        ValExpr::Bin(_, a, b) => {
            val_slots(a, bound, binders, out);
            val_slots(b, bound, binders, out);
        }
        ValExpr::Sum { var, extent, body } => {
            // The extent is evaluated before the binder is driven.
            idx_slots(extent, bound, out);
            push_unique(binders, var.id());
            bound.push(var.id());
            val_slots(body, bound, binders, out);
            bound.pop();
        }
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            bool_slots(cond, bound, out);
            val_slots(then, bound, binders, out);
            val_slots(otherwise, bound, binders, out);
        }
    }
}

// ---------------------------------------------------------------------
// Symbolic regions
// ---------------------------------------------------------------------

/// One tensor dimension of a symbolic access region: the row an index
/// expression addresses, abstracted over the current loop state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RegionDim {
    /// A fixed row, shared by every loop iteration.
    Const(i64),
    /// Exactly the value of a register slot (a loop counter or a
    /// let-bound alias of one): distinct iterations address distinct
    /// rows iff the slot is iteration-unique.
    Slot(u32),
    /// A child-indirection chain rooted at a row: `child_k[of]`. When
    /// `of` is an iteration row, this is a *strictly earlier* row in
    /// dependence order (children are computed in earlier waves).
    Child { k: u8, of: Box<RegionDim> },
    /// Anything else — arithmetic over counters, runtime scalars,
    /// multi-argument indirections. Unknown aliasing.
    Any,
}

/// Abstracts an index expression into the region dimension it
/// addresses, resolving let-bound aliases through `env` (var id →
/// region of its bound value).
pub(crate) fn region_of_idx(e: &IdxExpr, env: &HashMap<u32, RegionDim>) -> RegionDim {
    match e {
        IdxExpr::Const(c) => RegionDim::Const(*c),
        IdxExpr::Var(v) => env.get(&v.id()).cloned().unwrap_or(RegionDim::Slot(v.id())),
        IdxExpr::Ufn(Ufn::Child(k), args) if args.len() == 1 => RegionDim::Child {
            k: *k,
            of: Box::new(region_of_idx(&args[0], env)),
        },
        IdxExpr::Rt(_) | IdxExpr::Ufn(..) | IdxExpr::Bin(..) => RegionDim::Any,
    }
}

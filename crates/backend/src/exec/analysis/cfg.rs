//! The op-level control-flow graph of a lowered [`Program`].
//!
//! Every edge is already explicit in the op operands the lowering
//! resolves (`Jump`/`Branch` targets, `LoopDef` body/exit/fused pcs,
//! `BulkPass` done pcs); this module just materializes them as
//! successor/predecessor lists so the dataflow solver never needs to
//! know op semantics. Kernel bodies are disjoint subgraphs — no edge
//! ever crosses a [`KernelDef`](super::super::program::KernelDef)
//! boundary — which is what lets one global solve interpret each
//! kernel's private slot numbering independently.

use super::super::program::{Op, Program};

/// Successor/predecessor lists per op, plus the textual op range of
/// each kernel.
pub(crate) struct OpCfg {
    pub(crate) succs: Vec<Vec<usize>>,
    pub(crate) preds: Vec<Vec<usize>>,
    /// Per-kernel `entry..end` op ranges (the end is the pc just past
    /// the kernel's `KernelEnd`).
    pub(crate) kernel_ranges: Vec<(usize, usize)>,
}

impl OpCfg {
    /// Materializes the edges of `plan`.
    ///
    /// Loop ops get every edge the runtime can take: `LoopEnter` falls
    /// into the body, exits directly on a zero trip count, and jumps to
    /// the fused epilogue when one is attached; `LoopNext` either takes
    /// the back edge or retires to the exit; `BulkPass` serves and
    /// jumps `done` or falls through into the per-element loop.
    pub(crate) fn build(plan: &Program) -> OpCfg {
        let n = plan.ops.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pc, op) in plan.ops.iter().enumerate() {
            match op {
                Op::Jump(t) => succs[pc].push(*t),
                Op::Branch { on_false, .. } => {
                    succs[pc].push(pc + 1);
                    if *on_false != pc + 1 {
                        succs[pc].push(*on_false);
                    }
                }
                Op::LoopEnter(id) => {
                    let l = &plan.loops[*id];
                    succs[pc].push(l.body);
                    succs[pc].push(l.exit);
                    if l.fused.is_some() {
                        succs[pc].push(l.fused_pc);
                    }
                }
                Op::LoopNext(id) => {
                    let l = &plan.loops[*id];
                    succs[pc].push(l.body);
                    succs[pc].push(l.exit);
                }
                Op::BulkPass { done, .. } => {
                    succs[pc].push(pc + 1);
                    succs[pc].push(*done);
                }
                Op::FusedEpilogue => {
                    // The epilogue op belongs to the unique loop whose
                    // `fused_pc` names it; it retires that loop.
                    if let Some(l) = plan
                        .loops
                        .iter()
                        .find(|l| l.fused.is_some() && l.fused_pc == pc)
                    {
                        succs[pc].push(l.exit);
                    }
                }
                Op::KernelEnd => {}
                Op::Let { .. } | Op::Store { .. } | Op::ScalarStmt { .. } | Op::Barrier => {
                    succs[pc].push(pc + 1);
                }
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pc, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(pc);
            }
        }
        let kernel_ranges = plan
            .kernels
            .iter()
            .enumerate()
            .map(|(ki, k)| {
                let end = plan.kernels.get(ki + 1).map(|next| next.entry).unwrap_or(n);
                (k.entry, end)
            })
            .collect();
        OpCfg {
            succs,
            preds,
            kernel_ranges,
        }
    }
}

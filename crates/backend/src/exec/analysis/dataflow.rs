//! A small, reusable worklist dataflow solver.
//!
//! Analyses are expressed as gen/kill transfer functions over slot
//! bit-sets and solved to a fixpoint over the [`OpCfg`], in either
//! direction and under either lattice meet:
//!
//! * **backward + union** — *may* analyses flowing against control
//!   flow (slot liveness, [`super::liveness`]);
//! * **forward + intersect** — *must* analyses flowing with it
//!   (definite assignment, the rewrite cross-check in
//!   [`super::liveness::optimize_kernels`]).
//!
//! The solver is oblivious to op semantics: callers derive transfers
//! from [`super::effects`] and interpret the resulting in/out sets.

use std::collections::{HashMap, VecDeque};

use super::cfg::OpCfg;

/// A fixed-universe bit-set over `u64` words.
#[derive(Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// The empty set over a universe of `nbits` elements.
    pub(crate) fn new(nbits: usize) -> BitSet {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// The full set over a universe of `nbits` elements.
    pub(crate) fn full(nbits: usize) -> BitSet {
        let mut s = BitSet::new(nbits);
        for (w, word) in s.words.iter_mut().enumerate() {
            let lo = w * 64;
            let in_universe = s.nbits.saturating_sub(lo).min(64);
            *word = if in_universe == 64 {
                u64::MAX
            } else {
                (1u64 << in_universe) - 1
            };
        }
        s
    }

    pub(crate) fn insert(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        i < self.nbits && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`; reports whether `self` changed.
    pub(crate) fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; reports whether `self` changed.
    pub(crate) fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self \= other`.
    pub(crate) fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates the members in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| w * 64 + b)
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Which way facts flow.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    Forward,
    Backward,
}

/// The lattice meet applied where paths join.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Meet {
    /// *May* analyses: a fact holds if it holds on any path.
    Union,
    /// *Must* analyses: a fact holds only if it holds on all paths.
    Intersect,
}

/// One op's transfer function: `out = gen ∪ (in \ kill)` (forward), or
/// `in = gen ∪ (out \ kill)` (backward).
pub(crate) struct GenKill {
    pub(crate) gen: BitSet,
    pub(crate) kill: BitSet,
}

impl GenKill {
    pub(crate) fn empty(nbits: usize) -> GenKill {
        GenKill {
            gen: BitSet::new(nbits),
            kill: BitSet::new(nbits),
        }
    }
}

/// The fixpoint: per-op fact sets on entry (`ins`) and exit (`outs`) in
/// *execution* order, regardless of the analysis direction.
pub(crate) struct Solution {
    pub(crate) ins: Vec<BitSet>,
    pub(crate) outs: Vec<BitSet>,
}

/// Solves `transfer` over `cfg` to a fixpoint.
///
/// `boundary` pins the meet-side value of specific ops, joined as one
/// extra incoming edge — the in-set of entry ops under
/// [`Direction::Forward`], the out-set of terminal ops under
/// [`Direction::Backward`]. An op with no incoming edges and no
/// boundary gets the meet identity: empty under union, full under
/// intersect — so **forward-intersect analyses must pin every kernel
/// entry** or entries come out vacuously full. Backward-union analyses
/// need no boundary: `KernelEnd` has no successors and an empty union,
/// which is the "nothing live after the kernel" boundary liveness
/// wants.
pub(crate) fn solve(
    cfg: &OpCfg,
    dir: Direction,
    meet: Meet,
    transfer: &[GenKill],
    nbits: usize,
    boundary: &HashMap<usize, BitSet>,
) -> Solution {
    let n = cfg.succs.len();
    let top = match meet {
        Meet::Union => BitSet::new(nbits),
        Meet::Intersect => BitSet::full(nbits),
    };
    let mut ins: Vec<BitSet> = vec![top.clone(); n];
    let mut outs: Vec<BitSet> = vec![top; n];
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = match dir {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    while let Some(pc) = work.pop_front() {
        queued[pc] = false;
        let sources: &[usize] = match dir {
            Direction::Forward => &cfg.preds[pc],
            Direction::Backward => &cfg.succs[pc],
        };
        let mut acc: Option<BitSet> = boundary.get(&pc).cloned();
        for &q in sources {
            let v = match dir {
                Direction::Forward => &outs[q],
                Direction::Backward => &ins[q],
            };
            match &mut acc {
                None => acc = Some(v.clone()),
                Some(a) => {
                    match meet {
                        Meet::Union => a.union_with(v),
                        Meet::Intersect => a.intersect_with(v),
                    };
                }
            }
        }
        let meet_val = acc.unwrap_or_else(|| match meet {
            Meet::Union => BitSet::new(nbits),
            Meet::Intersect => BitSet::full(nbits),
        });
        let mut flow = meet_val.clone();
        flow.subtract(&transfer[pc].kill);
        flow.union_with(&transfer[pc].gen);
        match dir {
            Direction::Forward => {
                ins[pc] = meet_val;
                if flow != outs[pc] {
                    outs[pc] = flow;
                    for &s in &cfg.succs[pc] {
                        if !queued[s] {
                            queued[s] = true;
                            work.push_back(s);
                        }
                    }
                }
            }
            Direction::Backward => {
                outs[pc] = meet_val;
                if flow != ins[pc] {
                    ins[pc] = flow;
                    for &p in &cfg.preds[pc] {
                        if !queued[p] {
                            queued[p] = true;
                            work.push_back(p);
                        }
                    }
                }
            }
        }
    }
    Solution { ins, outs }
}

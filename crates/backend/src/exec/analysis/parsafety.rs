//! The static parallel-safety certifier.
//!
//! Certifies the two parallel surfaces of a lowered program — wave-loop
//! bodies (the `d_batch` parallel loops the wave batcher targets) and
//! fused whole-wave row passes — as either [`ParSafety::RowDisjoint`]
//! (iterations touch pairwise-disjoint rows of every tensor written, so
//! running them concurrently is race-free) or
//! [`ParSafety::Sequential`] with a typed [`SeqReason`] naming the
//! first obstruction. Certificates are computed once at lowering,
//! stored in the [`Program`](super::super::program::Program), re-derived
//! and compared by [`super::super::verify`] (a forged certificate is a
//! [`VerifyError::CertificateMismatch`](super::super::VerifyError)),
//! and surfaced through `Engine::stats()`. The multicore roadmap item
//! consumes exactly these certificates: a `RowDisjoint` wave may fan
//! its rows across threads, a `Sequential` one must not.
//!
//! Reasoning is in the symbolic region model of [`super::effects`]: a
//! store is row-disjoint when some non-feature index dimension is
//! *exactly* an iteration-unique row slot (the wave counter or an
//! injective alias of it — `BatchBegin(b) + n`, `node_at(n)`, …), and a
//! read of a wave-written tensor is safe when its row is the
//! iteration's own row or a child-indirection chain rooted at it (a
//! strictly earlier wave's row, which this wave never writes).

use std::collections::{HashMap, HashSet};

use cortex_core::expr::{IdxBinOp, IdxExpr, TensorId, Ufn, ValExpr, Var};
use cortex_core::ilir::Stmt;

use super::super::bulk::{BulkExpr, FusedLoop};
use super::effects::{self, region_of_idx, RegionDim};

/// A parallel-safety certificate for one wave body or fused row pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParSafety {
    /// Distinct iterations write pairwise-disjoint rows and read only
    /// their own or strictly-earlier rows: iterations may run
    /// concurrently without synchronization.
    RowDisjoint,
    /// Not certified for parallel execution; `reason` names the first
    /// obstruction found.
    Sequential {
        /// Why the surface failed to certify.
        reason: SeqReason,
    },
}

/// Why a parallel surface failed to certify as row-disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqReason {
    /// A store's index does not depend on the iteration at all: every
    /// iteration writes the same cells.
    WriteRowShared,
    /// A store's iteration-dependent row is not exactly an
    /// iteration-unique slot (arithmetic over the counter, a child
    /// indirection, an opaque function) — two iterations may collide.
    WriteRowAliased,
    /// Two fused passes store the same tensor with different index
    /// patterns, so pass-order interchange is not per-row sequential.
    StorePatternMismatch,
    /// A read of an iteration-written tensor lands on a row another
    /// iteration may be writing.
    ReadOverlapsWrites,
    /// A read of an iteration-written tensor addresses a fixed row,
    /// which some iteration's write may own.
    FixedRowOfStored,
    /// The body contains an explicit `Barrier`: it stages its own
    /// internal ordering and must not be blindly row-parallelized.
    Barrier,
}

impl SeqReason {
    /// Every reason, in [`Self::index`] order — the layout of the
    /// `par_unsafe_by_reason` counters in `ExecStats`.
    pub const ALL: [SeqReason; 6] = [
        SeqReason::WriteRowShared,
        SeqReason::WriteRowAliased,
        SeqReason::StorePatternMismatch,
        SeqReason::ReadOverlapsWrites,
        SeqReason::FixedRowOfStored,
        SeqReason::Barrier,
    ];

    /// This reason's position in [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            SeqReason::WriteRowShared => 0,
            SeqReason::WriteRowAliased => 1,
            SeqReason::StorePatternMismatch => 2,
            SeqReason::ReadOverlapsWrites => 3,
            SeqReason::FixedRowOfStored => 4,
            SeqReason::Barrier => 5,
        }
    }

    /// A stable snake_case name (bench schema, logs).
    pub fn name(self) -> &'static str {
        match self {
            SeqReason::WriteRowShared => "write_row_shared",
            SeqReason::WriteRowAliased => "write_row_aliased",
            SeqReason::StorePatternMismatch => "store_pattern_mismatch",
            SeqReason::ReadOverlapsWrites => "read_overlaps_writes",
            SeqReason::FixedRowOfStored => "fixed_row_of_stored",
            SeqReason::Barrier => "barrier",
        }
    }
}

impl std::fmt::Display for SeqReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::fmt::Display for ParSafety {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParSafety::RowDisjoint => f.write_str("row_disjoint"),
            ParSafety::Sequential { reason } => write!(f, "sequential({reason})"),
        }
    }
}

// ---------------------------------------------------------------------
// Wave bodies
// ---------------------------------------------------------------------

/// Certifies one parallel `d_batch` wave body: may its iterations (one
/// per node of the wave) run concurrently?
///
/// The walk mirrors the shape `plan_wave` consumes — an optional
/// top-level `let node = …` binding over the per-node statements — but
/// reasons about *every* statement, not just the batchable reductions:
/// each store must ride an iteration-unique row slot in some
/// non-feature dimension, and each read of a wave-written tensor must
/// stay on its own row or a child chain rooted at it.
pub(crate) fn certify_wave_body(n_idx: Var, body: &[Stmt]) -> ParSafety {
    let mut cx = WaveCx {
        row_slots: HashSet::from([n_idx.id()]),
        wave_dep: HashSet::from([n_idx.id()]),
        env: HashMap::new(),
    };
    let (stmts, node_let): (&[Stmt], Option<(&Var, &IdxExpr)>) = match body {
        [Stmt::Let { var, value, body }] => (body.as_slice(), Some((var, value))),
        other => (other, None),
    };
    if let Some((var, value)) = node_let {
        if injective_in(value, n_idx) {
            // The node alias enumerates distinct rows per iteration —
            // itself an iteration-unique row slot.
            cx.row_slots.insert(var.id());
        }
        if cx.uses_wave(value) {
            cx.wave_dep.insert(var.id());
        }
    }
    let mut stored = HashSet::new();
    for s in stmts {
        collect_stored(s, &mut stored);
    }
    match certify_stmts(stmts, &mut cx, &stored) {
        Ok(()) => ParSafety::RowDisjoint,
        Err(reason) => ParSafety::Sequential { reason },
    }
}

struct WaveCx {
    /// Slots holding an iteration-unique row (the wave counter and
    /// injective aliases of it).
    row_slots: HashSet<u32>,
    /// Slots whose value varies with the wave iteration at all.
    wave_dep: HashSet<u32>,
    /// Let-bound region aliases (var id → region of the bound value).
    env: HashMap<u32, RegionDim>,
}

impl WaveCx {
    /// Whether evaluating `e` depends on the wave iteration.
    fn uses_wave(&self, e: &IdxExpr) -> bool {
        let mut free = Vec::new();
        effects::idx_slots(e, &mut Vec::new(), &mut free);
        free.iter().any(|v| self.wave_dep.contains(v))
    }

    /// Whether `r` is the iteration's own row.
    fn is_own_row(&self, r: &RegionDim) -> bool {
        matches!(r, RegionDim::Slot(s) if self.row_slots.contains(s))
    }

    /// Whether `r` is a strictly-earlier wave's row: a child chain
    /// rooted at the iteration's own row.
    fn is_earlier_row(&self, r: &RegionDim) -> bool {
        match r {
            RegionDim::Child { of, .. } => self.is_own_row(of) || self.is_earlier_row(of),
            _ => false,
        }
    }
}

fn certify_stmts(
    stmts: &[Stmt],
    cx: &mut WaveCx,
    stored: &HashSet<TensorId>,
) -> Result<(), SeqReason> {
    for s in stmts {
        match s {
            Stmt::Barrier => return Err(SeqReason::Barrier),
            Stmt::For { var, body, .. } => {
                // A nested counter is iteration-independent (it restarts
                // per iteration); the coalescer keeps wave-body slots
                // distinct, so shadowing cannot occur — drop defensively.
                cx.wave_dep.remove(&var.id());
                cx.row_slots.remove(&var.id());
                cx.env.remove(&var.id());
                certify_stmts(body, cx, stored)?;
            }
            Stmt::Let { var, value, body } => {
                let region = region_of_idx(value, &cx.env);
                if cx.uses_wave(value) {
                    cx.wave_dep.insert(var.id());
                } else {
                    cx.wave_dep.remove(&var.id());
                }
                cx.row_slots.remove(&var.id());
                cx.env.insert(var.id(), region);
                certify_stmts(body, cx, stored)?;
            }
            Stmt::Store { index, value, .. } => {
                let mut row_dims = 0usize;
                for dim in index {
                    if !cx.uses_wave(dim) {
                        continue;
                    }
                    if !cx.is_own_row(&region_of_idx(dim, &cx.env)) {
                        return Err(SeqReason::WriteRowAliased);
                    }
                    row_dims += 1;
                }
                if row_dims == 0 {
                    return Err(SeqReason::WriteRowShared);
                }
                certify_val_loads(value, cx, stored)?;
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                certify_stmts(then_branch, cx, stored)?;
                certify_stmts(else_branch, cx, stored)?;
            }
        }
    }
    Ok(())
}

/// Checks every load under `e` against the wave's store set.
fn certify_val_loads(
    e: &ValExpr,
    cx: &WaveCx,
    stored: &HashSet<TensorId>,
) -> Result<(), SeqReason> {
    match e {
        ValExpr::Const(_) => Ok(()),
        ValExpr::Load { tensor, index } => {
            if !stored.contains(tensor) {
                return Ok(());
            }
            let mut row_dims = 0usize;
            for dim in index {
                if !cx.uses_wave(dim) {
                    continue;
                }
                let r = region_of_idx(dim, &cx.env);
                if !cx.is_own_row(&r) && !cx.is_earlier_row(&r) {
                    return Err(SeqReason::ReadOverlapsWrites);
                }
                row_dims += 1;
            }
            if row_dims == 0 {
                return Err(SeqReason::FixedRowOfStored);
            }
            Ok(())
        }
        ValExpr::Unary(_, a) => certify_val_loads(a, cx, stored),
        ValExpr::Bin(_, a, b) => {
            certify_val_loads(a, cx, stored)?;
            certify_val_loads(b, cx, stored)
        }
        // The extent and condition load no tensors.
        ValExpr::Sum { body, .. } => certify_val_loads(body, cx, stored),
        ValExpr::Select {
            then, otherwise, ..
        } => {
            certify_val_loads(then, cx, stored)?;
            certify_val_loads(otherwise, cx, stored)
        }
    }
}

fn collect_stored(s: &Stmt, out: &mut HashSet<TensorId>) {
    s.visit(&mut |st| {
        if let Stmt::Store { tensor, .. } = st {
            out.insert(*tensor);
        }
    });
}

/// Whether `e` is injective in `n`: distinct values of `n` produce
/// distinct results. Recognizes the counter itself, affine offsets with
/// unit coefficient (`BatchBegin(b) + n`), and the injective node
/// enumerators (`node_at` / `root_at` / `stage_node` applied to an
/// injective position).
fn injective_in(e: &IdxExpr, n: Var) -> bool {
    use crate::fastdot::idx_uses_var;
    match e {
        IdxExpr::Var(v) => *v == n,
        IdxExpr::Bin(IdxBinOp::Add | IdxBinOp::Sub, a, b) => {
            (injective_in(a, n) && !idx_uses_var(b, n))
                || (!idx_uses_var(a, n) && injective_in(b, n))
        }
        IdxExpr::Ufn(Ufn::NodeAt | Ufn::RootAt | Ufn::StageNodeAt, args) => {
            let mut using = args.iter().filter(|a| idx_uses_var(a, n));
            match (using.next(), using.next()) {
                (Some(a), None) => injective_in(a, n),
                _ => false,
            }
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Fused row passes
// ---------------------------------------------------------------------

/// Certifies a fused wave's row passes: whether running the body
/// statements as whole-wave passes (loop interchange) is
/// observationally identical to per-node interpretation — and, the same
/// condition, whether one pass's rows may be served concurrently.
///
/// Requirements, each mapped to its [`SeqReason`]:
///
/// * every store targets a node-unique row (some non-feature index
///   position rides the wave variable), so no two nodes' passes write
///   the same cell — else [`SeqReason::WriteRowShared`];
/// * passes storing one tensor share one index pattern, so pass order
///   coincides with body order per row — else
///   [`SeqReason::StorePatternMismatch`];
/// * every load of a body-stored tensor either stays within its own
///   node's row (non-feature index positions structurally equal to the
///   store's) or reads a strictly-earlier wave's row through a child
///   indirection rooted at the wave node — else
///   [`SeqReason::ReadOverlapsWrites`].
///
/// [`plan_fused_wave`](super::super::bulk) only builds a [`FusedWave`]
/// when this certifies [`ParSafety::RowDisjoint`], so every fused wave
/// stored in a program carries — and `verify` re-derives — a
/// row-disjoint certificate.
pub(crate) fn certify_fused(loops: &[FusedLoop], n_idx: Var, node: Option<Var>) -> ParSafety {
    use crate::fastdot::idx_uses_var;
    let mut stores: HashMap<TensorId, (&[IdxExpr], usize)> = HashMap::new();
    for fl in loops {
        let p = &fl.plan;
        // A store must hit a different row for every node of the wave.
        let node_dep = p.index.iter().enumerate().any(|(d, e)| {
            d != p.i_pos && (idx_uses_var(e, n_idx) || node.is_some_and(|nv| idx_uses_var(e, nv)))
        });
        if !node_dep {
            return ParSafety::Sequential {
                reason: SeqReason::WriteRowShared,
            };
        }
        match stores.entry(p.tensor) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let &(idx, ipos) = e.get();
                if idx != p.index.as_slice() || ipos != p.i_pos {
                    return ParSafety::Sequential {
                        reason: SeqReason::StorePatternMismatch,
                    };
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((p.index.as_slice(), p.i_pos));
            }
        }
    }
    for fl in loops {
        if !fused_loads_disjoint(&fl.plan.expr, &stores, n_idx, node) {
            return ParSafety::Sequential {
                reason: SeqReason::ReadOverlapsWrites,
            };
        }
    }
    ParSafety::RowDisjoint
}

fn fused_loads_disjoint(
    e: &BulkExpr,
    stores: &HashMap<TensorId, (&[IdxExpr], usize)>,
    n_idx: Var,
    node: Option<Var>,
) -> bool {
    match e {
        BulkExpr::Load { tensor, index, .. } => {
            let Some(&(s_idx, s_ipos)) = stores.get(tensor) else {
                return true; // not written by this wave body
            };
            if index.len() != s_idx.len() {
                return false;
            }
            index.iter().enumerate().all(|(d, ix)| {
                // Within the stored row's feature dimension, any element
                // is same-row; elsewhere the coordinate must match the
                // store's (same node row) or be an earlier-wave child
                // row.
                d == s_ipos
                    || *ix == s_idx[d]
                    || crate::wave::is_wave_child_indirection(ix, n_idx, node)
            })
        }
        BulkExpr::Const(_) | BulkExpr::MemoSum(_) => true,
        BulkExpr::Unary(_, a) => fused_loads_disjoint(a, stores, n_idx, node),
        BulkExpr::Bin(_, a, b) => {
            fused_loads_disjoint(a, stores, n_idx, node)
                && fused_loads_disjoint(b, stores, n_idx, node)
        }
        // Guard conditions load no tensors.
        BulkExpr::Select {
            then, otherwise, ..
        } => {
            fused_loads_disjoint(then, stores, n_idx, node)
                && fused_loads_disjoint(otherwise, stores, n_idx, node)
        }
    }
}

//! The AST-walking interpreter: value-expression evaluation, the scalar
//! fastdot path, and the legacy recursive statement walk.
//!
//! Since the linear-plan lowering (`ExecOptions::interp == false`, the
//! default) the recursive walk survives as the **bit-exactness oracle**:
//! `ExecOptions { interp: true }` runs every statement through
//! [`Interp::exec_stmt`] and the frame-based resumable step machine,
//! exactly the pre-lowering executor, and a property test asserts the
//! two runtimes agree bit-for-bit (outputs *and* `Profile`s) on all
//! models — the same cross-check pattern as `bulk: false`.
//!
//! The expression evaluator ([`Interp::eval_val`], [`Interp::eval_dot`],
//! [`Interp::resolve_product`]) lives here too and is shared by the pc
//! runtime: a lowered `Store` op evaluates the very same `ValExpr` tree
//! the oracle would, so the two runtimes cannot diverge on arithmetic
//! or accounting.

use cortex_core::expr::{BoolExpr, ValExpr};
use cortex_core::ilir::{LaunchPattern, Stmt};

use super::interp::Interp;
use super::lowering::CompiledKernel;
use super::ExecError;
use super::StepOutcome;
use crate::wave::SuperWaveAcc;

/// A resolved multiplicative operand of a reduction.
pub(crate) enum Res {
    /// `data[base + k*stride]` of one tensor.
    Stream(usize, usize, usize),
    /// Sum of streams (child-sum).
    AddStreams(Vec<(usize, usize, usize)>),
    /// Guard failed: whole product is zero.
    Zero,
}

impl<'a> Interp<'a> {
    /// Runs the whole launch schedule through the recursive AST walk
    /// (the `interp: true` oracle's solo path).
    pub(crate) fn run_all(&mut self) -> Result<(), ExecError> {
        let compiled = self.compiled.clone();
        // Per-batch kernels run once per internal batch when specialized;
        // without specialization the leaf wave joins the batch table too
        // (see [`super::interp::launch_units`]).
        for (ki, b) in self.launch_units() {
            self.launch(ki, &compiled[ki], b);
        }
        self.finalize_run();
        Ok(())
    }

    // -- launching ----------------------------------------------------

    fn launch(&mut self, kernel_idx: usize, kernel: &CompiledKernel, batch_index: Option<i64>) {
        self.cur_kernel = kernel_idx;
        self.profile.launches += 1;
        self.profile.host_api_calls += 1;
        // Per-batch kernels are wave work: their parameter reads recur
        // every wave and are what persistence would pin.
        self.push_scope(kernel.launch == LaunchPattern::PerInternalBatch);
        if let Some(bv) = kernel.batch_slot {
            self.slots[bv] = batch_index.expect("per-batch kernel needs a batch index");
        }
        for s in &kernel.body {
            self.exec_stmt(s);
        }
        self.pop_scope();
    }

    // -- statement execution -------------------------------------------

    pub(crate) fn exec_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                extent,
                dim,
                body,
                ..
            } => {
                let n = self.eval_idx(extent);
                let slot = var.id() as usize;
                let is_wave = matches!(dim, Some(d) if d.0 == "d_all_batches");
                let is_node_loop = matches!(dim, Some(d) if d.0 == "d_batch");
                if is_node_loop {
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.width = scope.width.max(n.max(0) as u64);
                    }
                }
                // Batched wavefront execution: if this node loop has a
                // wave plan, run each stacking group of recognized
                // reduction sites as one packed GEMM over the whole wave,
                // then interpret the loop normally with `Sum`s served
                // from the result matrices. Waves below the width
                // threshold skip packing entirely — the scalar fastdot
                // path is cheaper there and produces the identical
                // `Profile`.
                let mut activated = (0usize, 0usize);
                if n > 0 && !self.wave_plans.is_empty() {
                    let for_key = s as *const Stmt as usize;
                    if let Some(plan) = self.wave_plans.get(&for_key).cloned() {
                        if (n as usize) < self.opts.min_wave_width {
                            self.caches.stats.narrow_waves_skipped += 1;
                        } else {
                            activated = self.prepare_wave(&plan, for_key, n as usize, None);
                        }
                    }
                }
                // Bulk serving: a fused wave runs the whole loop body as
                // loop-interchanged row passes (one pass per body
                // statement over every node); a bulk feature loop runs
                // one strided row pass over its extent. Either way the
                // values and counters are identical to per-element
                // interpretation.
                let mut served = false;
                if n > 0 && !is_wave && self.opts.fastdot && self.opts.bulk {
                    let key = (self.cur_kernel, s as *const Stmt as usize);
                    if let Some(fw) = self.fused_waves.get(&key).cloned() {
                        if self.fused_servable(&fw) {
                            self.exec_fused_wave(&fw, n as usize);
                            served = true;
                        }
                    } else if let Some(plan) = self.bulk_plans.get(&key).cloned() {
                        if self.bulk_servable(&plan) {
                            // Not timed: a clock pair per row pass would
                            // distort both the metric and the path
                            // (`ExecStats::epilogue_ns` is charged at
                            // fused-wave granularity).
                            self.exec_bulk(&plan);
                            served = true;
                        }
                    }
                }
                if !served {
                    for i in 0..n.max(0) {
                        if is_wave {
                            self.push_scope(true);
                        }
                        self.slots[slot] = i;
                        for st in body {
                            self.exec_stmt(st);
                        }
                        if is_wave {
                            self.pop_scope();
                        }
                    }
                }
                if activated != (0, 0) {
                    self.finish_wave(activated);
                }
            }
            Stmt::Let { var, value, body } => {
                let v = self.eval_idx(value);
                self.slots[var.id() as usize] = v;
                for st in body {
                    self.exec_stmt(st);
                }
            }
            Stmt::Store {
                tensor,
                index,
                value,
            } => self.exec_store(*tensor, index, value),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.profile.branch_checks += 1;
                let branch = if self.eval_bool(cond) {
                    then_branch
                } else {
                    else_branch
                };
                for st in branch {
                    self.exec_stmt(st);
                }
            }
            Stmt::Barrier => {
                self.profile.barriers_global += 1;
            }
        }
    }

    // -- expression evaluation -------------------------------------------

    pub(crate) fn eval_val(&mut self, e: &ValExpr) -> f32 {
        match e {
            ValExpr::Const(c) => *c,
            ValExpr::Load { tensor, index } => {
                let off = self.offset(*tensor, index);
                self.record_load(*tensor);
                self.bufs[tensor.0 as usize]
                    .as_ref()
                    .expect("loaded tensor allocated")
                    .data[off]
            }
            ValExpr::Unary(op, a) => {
                let x = self.eval_val(a);
                self.profile.flops += 1;
                match op {
                    cortex_core::expr::UnaryOp::Neg => -x,
                    cortex_core::expr::UnaryOp::Tanh => self.nonlin.tanh(x),
                    cortex_core::expr::UnaryOp::Sigmoid => self.nonlin.sigmoid(x),
                    cortex_core::expr::UnaryOp::Relu => x.max(0.0),
                    cortex_core::expr::UnaryOp::Exp => x.exp(),
                }
            }
            ValExpr::Bin(op, a, b) => {
                let x = self.eval_val(a);
                let y = self.eval_val(b);
                self.profile.flops += 1;
                match op {
                    cortex_core::expr::BinOp::Add => x + y,
                    cortex_core::expr::BinOp::Sub => x - y,
                    cortex_core::expr::BinOp::Mul => x * y,
                    cortex_core::expr::BinOp::Div => x / y,
                    cortex_core::expr::BinOp::Max => x.max(y),
                    cortex_core::expr::BinOp::Min => x.min(y),
                }
            }
            ValExpr::Sum { var, extent, body } => {
                let n = self.eval_idx(extent).max(0);
                let key = &**body as *const ValExpr as usize;
                // Wave memo: this reduction was computed by a wave GEMM —
                // serve the element and charge the exact counters the
                // scalar dot would have.
                if let Some(&(_, idx)) = self.memo.iter().find(|(k, _)| *k == key) {
                    return self.serve_memo_element(idx);
                }
                let plan = if self.opts.fastdot {
                    match self.caches.plan_cache.get(&key) {
                        Some(p) => p.clone(),
                        None => {
                            let p = crate::fastdot::compile(*var, body).map(std::rc::Rc::new);
                            self.caches.plan_cache.insert(key, p.clone());
                            p
                        }
                    }
                } else {
                    None
                };
                if let Some(plan) = plan {
                    self.eval_dot(&plan, n)
                } else {
                    let slot = var.id() as usize;
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        self.slots[slot] = k;
                        acc += self.eval_val(body);
                        self.profile.flops += 1;
                    }
                    acc
                }
            }
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                self.profile.branch_checks += 1;
                if self.eval_bool(cond) {
                    self.eval_val(then)
                } else {
                    self.eval_val(otherwise)
                }
            }
        }
    }

    /// Serves one element of a memo-active reduction site from its wave
    /// GEMM result, charging the exact counters the scalar dot would.
    /// `pub(crate)` so the threaded tier's compiled `Sum` closures can
    /// share it (their memo path must charge identically).
    #[inline]
    pub(crate) fn serve_memo_element(&mut self, idx: usize) -> f32 {
        let site = &self.active[idx];
        let group = &self.active_groups[site.group];
        let r = self.slots[site.n_idx_slot] as usize;
        // Rank-2 sites gather one row per (node, j) pair.
        let row = match site.inner {
            None => r,
            Some(d) => r * d.extent + self.slots[d.slot] as usize,
        };
        let m = &group.meta[site.meta_off + row];
        if m.zero {
            // The scalar path short-circuits before any accounting when
            // a guard kills the product.
            return 0.0;
        }
        let i = self.slots[site.feat_slot] as usize;
        let value = m.scale * group.value(site.row_off + row, site.col_off + i);
        // `m.streams` excludes the weight stream: `+1` for the weight,
        // `+1` for the accumulate — the scalar path's
        // `flops += k·(streams+1)` with the weight included.
        self.profile.flops += site.k * (m.streams + 2);
        if let Some(scope) = self.scopes.last_mut() {
            scope.touch[site.weight_tensor as usize].0 += site.k;
            for &t in &m.tensors {
                scope.touch[t as usize].0 += site.k;
            }
        }
        value
    }

    /// Evaluates a site's value-level `Select` guards without touching a
    /// single profile counter (the interpreter pays the `Select`'s
    /// counters itself, once per served element). Guard conditions are
    /// index-level booleans — they load no tensors — so restoring the
    /// three counters an `IdxExpr` evaluation can bump makes the
    /// evaluation fully invisible.
    pub(crate) fn eval_guards_silently(&mut self, guards: &[(BoolExpr, bool)]) -> bool {
        let saved = (
            self.profile.flops,
            self.profile.leaf_check_loads,
            self.profile.branch_checks,
        );
        let ok = guards
            .iter()
            .all(|(cond, want)| self.eval_bool(cond) == *want);
        self.profile.flops = saved.0;
        self.profile.leaf_check_loads = saved.1;
        self.profile.branch_checks = saved.2;
        ok
    }

    /// Resolves the multiplicative operands of a reduction into streams
    /// (shared by the scalar dot path and the wave packing phase).
    pub(crate) fn resolve_product(
        &mut self,
        operands: &[crate::fastdot::Operand],
    ) -> (Vec<Res>, f32) {
        use crate::fastdot::Operand;

        fn resolve_streams(
            interp: &mut Interp<'_>,
            op: &Operand,
            out: &mut Vec<(usize, usize, usize)>,
        ) -> bool {
            match op {
                Operand::Load {
                    tensor,
                    index,
                    k_pos,
                } => {
                    let mut base = 0usize;
                    for (d, e) in index.iter().enumerate() {
                        if d == *k_pos {
                            continue;
                        }
                        let c = interp.eval_idx(e);
                        let stride = interp.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("allocated")
                            .strides[d];
                        base += c as usize * stride;
                    }
                    let stride = interp.bufs[tensor.0 as usize]
                        .as_ref()
                        .expect("allocated")
                        .strides[*k_pos];
                    out.push((tensor.0 as usize, base, stride));
                    true
                }
                Operand::Add(parts) => {
                    for p in parts {
                        resolve_streams(interp, p, out);
                    }
                    true
                }
                Operand::Guarded { cond, inner } => {
                    if interp.eval_bool(cond) {
                        resolve_streams(interp, inner, out)
                    } else {
                        true // contributes nothing
                    }
                }
                Operand::Scalar(_) => unreachable!("scalars are resolved separately"),
            }
        }

        let mut resolved: Vec<Res> = Vec::with_capacity(operands.len());
        let mut scale = 1.0f32;
        for op in operands {
            match op {
                Operand::Scalar(e) => scale *= self.eval_val(e),
                Operand::Guarded { cond, inner } => {
                    if self.eval_bool(cond) {
                        let mut streams = Vec::new();
                        resolve_streams(self, inner, &mut streams);
                        match streams.len() {
                            0 => resolved.push(Res::Zero),
                            1 => {
                                resolved.push(Res::Stream(streams[0].0, streams[0].1, streams[0].2))
                            }
                            _ => resolved.push(Res::AddStreams(streams)),
                        }
                    } else {
                        resolved.push(Res::Zero);
                    }
                }
                Operand::Load { .. } => {
                    let mut streams = Vec::new();
                    resolve_streams(self, op, &mut streams);
                    let (t, b, s) = streams[0];
                    resolved.push(Res::Stream(t, b, s));
                }
                Operand::Add(_) => {
                    let mut streams = Vec::new();
                    resolve_streams(self, op, &mut streams);
                    if streams.is_empty() {
                        resolved.push(Res::Zero);
                    } else {
                        resolved.push(Res::AddStreams(streams));
                    }
                }
            }
        }
        (resolved, scale)
    }

    /// Executes a compiled reduction as tight strided loops.
    pub(crate) fn eval_dot(&mut self, plan: &crate::fastdot::DotPlan, n: i64) -> f32 {
        let (resolved, scale) = self.resolve_product(&plan.operands);
        if resolved.iter().any(|r| matches!(r, Res::Zero)) || n == 0 {
            return 0.0;
        }
        // Accounting in bulk, before borrowing buffers for the hot loop.
        let n_usize = n as usize;
        let mut stream_count = 0u64;
        for r in &resolved {
            match r {
                Res::Stream(t, _, _) => {
                    stream_count += 1;
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.touch[*t].0 += n as u64;
                    }
                }
                Res::AddStreams(v) => {
                    stream_count += v.len() as u64;
                    for (t, _, _) in v {
                        if let Some(scope) = self.scopes.last_mut() {
                            scope.touch[*t].0 += n as u64;
                        }
                    }
                }
                _ => {}
            }
        }
        self.profile.flops += n as u64 * (stream_count + 1);

        let bufs = &self.bufs;
        let data = |t: usize| -> &[f32] { &bufs[t].as_ref().expect("allocated").data };
        let mut acc = 0.0f32;
        // Specialize the overwhelmingly common case: product of exactly
        // two plain streams (a matvec row).
        if resolved.len() == 2 {
            if let (Res::Stream(t0, b0, s0), Res::Stream(t1, b1, s1)) = (&resolved[0], &resolved[1])
            {
                let (d0, d1) = (data(*t0), data(*t1));
                if *s0 == 1 && *s1 == 1 {
                    acc = cortex_tensor::kernels::dot(
                        &d0[*b0..*b0 + n_usize],
                        &d1[*b1..*b1 + n_usize],
                    );
                } else {
                    for k in 0..n_usize {
                        acc += d0[b0 + k * s0] * d1[b1 + k * s1];
                    }
                }
                return scale * acc;
            }
        }
        for k in 0..n_usize {
            let mut prod = 1.0f32;
            for r in &resolved {
                match r {
                    Res::Stream(t, b, s) => prod *= data(*t)[b + k * s],
                    Res::AddStreams(v) => {
                        let mut sum = 0.0f32;
                        for (t, b, s) in v {
                            sum += data(*t)[b + k * s];
                        }
                        prod *= sum;
                    }
                    Res::Zero => unreachable!("filtered above"),
                }
            }
            acc += prod;
        }
        scale * acc
    }

    // -- resumable execution (the `interp: true` step machine) ---------

    /// Advances this request until it parks at a planned wave loop whose
    /// GEMMs were deferred into `acc` ([`StepOutcome::Paused`] — resume
    /// after the flush installs results) or until the whole launch
    /// schedule completes ([`StepOutcome::Done`]).
    ///
    /// The machine walks statement paths that contain planned wave loops
    /// frame-by-frame (so it can suspend mid-loop with slot state
    /// intact) and delegates every other subtree to the recursive
    /// [`exec_stmt`](Self::exec_stmt) — both replicate the single-run
    /// executor's accounting exactly.
    pub(crate) fn step<'k>(
        &mut self,
        cur: &mut RunCursor<'k>,
        compiled: &'k [CompiledKernel],
        acc: &mut SuperWaveAcc,
        request: usize,
    ) -> StepOutcome {
        loop {
            if cur.frames.is_empty() {
                if cur.in_launch {
                    self.pop_scope();
                    cur.in_launch = false;
                    cur.unit += 1;
                }
                let Some(&(ki, b)) = cur.units.get(cur.unit) else {
                    if !cur.done {
                        cur.done = true;
                        self.finalize_run();
                    }
                    return StepOutcome::Done;
                };
                let kernel = &compiled[ki];
                self.cur_kernel = ki;
                self.profile.launches += 1;
                self.profile.host_api_calls += 1;
                self.push_scope(kernel.launch == LaunchPattern::PerInternalBatch);
                if let Some(bv) = kernel.batch_slot {
                    self.slots[bv] = b.expect("per-batch kernel needs a batch index");
                }
                cur.in_launch = true;
                cur.frames.push(Frame::Block {
                    stmts: &kernel.body,
                    idx: 0,
                });
                continue;
            }
            enum Action<'k> {
                Exec(&'k Stmt),
                PopBlock,
                LoopContinue,
                RunFused,
            }
            let action = match cur.frames.last_mut().expect("frame") {
                Frame::Block { stmts, idx } => {
                    if *idx < stmts.len() {
                        let s = &stmts[*idx];
                        *idx += 1;
                        Action::Exec(s)
                    } else {
                        Action::PopBlock
                    }
                }
                Frame::Loop { .. } => Action::LoopContinue,
                Frame::Fused { .. } => Action::RunFused,
            };
            match action {
                Action::PopBlock => {
                    cur.frames.pop();
                }
                Action::LoopContinue => self.loop_continue(cur),
                Action::RunFused => {
                    let Some(Frame::Fused { key, n, activated }) = cur.frames.pop() else {
                        unreachable!("fused frame")
                    };
                    // Resumed after the super-wave flush installed this
                    // request's result blocks: the whole wave's epilogue
                    // runs as fused row passes, then its sites retire.
                    let fw = self
                        .fused_waves
                        .get(&key)
                        .expect("fused wave planned")
                        .clone();
                    self.exec_fused_wave(&fw, n);
                    if activated != (0, 0) {
                        self.finish_wave(activated);
                    }
                }
                Action::Exec(s) => {
                    if !self.wave_ancestors.contains(&(s as *const Stmt as usize)) {
                        // No planned wave loop below: run it atomically
                        // through the ordinary recursive interpreter.
                        self.exec_stmt(s);
                        continue;
                    }
                    match s {
                        Stmt::For { .. } => {
                            if self.enter_for(s, cur, acc, request) {
                                return StepOutcome::Paused;
                            }
                        }
                        Stmt::Let { var, value, body } => {
                            let v = self.eval_idx(value);
                            self.slots[var.id() as usize] = v;
                            cur.frames.push(Frame::Block {
                                stmts: body,
                                idx: 0,
                            });
                        }
                        Stmt::If {
                            cond,
                            then_branch,
                            else_branch,
                        } => {
                            self.profile.branch_checks += 1;
                            let branch = if self.eval_bool(cond) {
                                then_branch
                            } else {
                                else_branch
                            };
                            cur.frames.push(Frame::Block {
                                stmts: branch,
                                idx: 0,
                            });
                        }
                        Stmt::Store { .. } | Stmt::Barrier => self.exec_stmt(s),
                    }
                }
            }
        }
    }

    /// The step machine's mirror of [`exec_stmt`](Self::exec_stmt)'s
    /// `For` entry: evaluates the extent, records wave width, runs the
    /// wave-plan prepare phase (with GEMMs deferred into `acc`), and
    /// pushes the loop's first iteration. Returns whether the request
    /// must park for a super-wave flush.
    fn enter_for<'k>(
        &mut self,
        s: &'k Stmt,
        cur: &mut RunCursor<'k>,
        acc: &mut SuperWaveAcc,
        request: usize,
    ) -> bool {
        let Stmt::For {
            var,
            extent,
            dim,
            body,
            ..
        } = s
        else {
            unreachable!("enter_for on a non-For statement")
        };
        let n = self.eval_idx(extent);
        let slot = var.id() as usize;
        let is_wave = matches!(dim, Some(d) if d.0 == "d_all_batches");
        if matches!(dim, Some(d) if d.0 == "d_batch") {
            if let Some(scope) = self.scopes.last_mut() {
                scope.width = scope.width.max(n.max(0) as u64);
            }
        }
        let mut activated = (0usize, 0usize);
        let mut paused = false;
        if n > 0 && !self.wave_plans.is_empty() {
            let for_key = s as *const Stmt as usize;
            if let Some(plan) = self.wave_plans.get(&for_key).cloned() {
                if (n as usize) < self.opts.min_wave_width {
                    self.caches.stats.narrow_waves_skipped += 1;
                } else {
                    activated = self.prepare_wave(&plan, for_key, n as usize, Some((acc, request)));
                    paused = activated.1 > 0;
                }
            }
        }
        if n > 0 {
            // A parked fusable wave runs its whole body as fused row
            // passes once the flush installs results, instead of
            // resuming per-node frames.
            if paused {
                let key = (self.cur_kernel, s as *const Stmt as usize);
                if let Some(fw) = self.fused_waves.get(&key).cloned() {
                    if self.fused_servable(&fw) {
                        cur.frames.push(Frame::Fused {
                            key,
                            n: n as usize,
                            activated,
                        });
                        return true;
                    }
                }
            }
            cur.frames.push(Frame::Loop {
                stmt: s,
                i: 0,
                n,
                is_wave,
                activated,
            });
            if is_wave {
                self.push_scope(true);
            }
            self.slots[slot] = 0;
            cur.frames.push(Frame::Block {
                stmts: body,
                idx: 0,
            });
        }
        paused
    }

    /// One loop-body completion in the step machine: close the finished
    /// iteration's wave scope, then either start the next iteration or
    /// pop the loop (deactivating its wave sites).
    fn loop_continue<'k>(&mut self, cur: &mut RunCursor<'k>) {
        let next_body: Option<&'k [Stmt]> = {
            let Some(Frame::Loop {
                stmt,
                i,
                n,
                is_wave,
                ..
            }) = cur.frames.last_mut()
            else {
                unreachable!("loop_continue without a loop frame")
            };
            if *is_wave {
                self.pop_scope();
            }
            *i += 1;
            if *i < *n {
                let Stmt::For { var, body, .. } = *stmt else {
                    unreachable!("loop frame holds a For")
                };
                if *is_wave {
                    self.push_scope(true);
                }
                self.slots[var.id() as usize] = *i;
                Some(body)
            } else {
                None
            }
        };
        match next_body {
            Some(body) => cur.frames.push(Frame::Block {
                stmts: body,
                idx: 0,
            }),
            None => {
                let Some(Frame::Loop { activated, .. }) = cur.frames.pop() else {
                    unreachable!("loop frame")
                };
                if activated != (0, 0) {
                    self.finish_wave(activated);
                }
            }
        }
    }
}

/// One suspended position in a kernel body (the `interp: true` oracle's
/// suspension state; the pc runtime parks as a program counter instead).
pub(crate) enum Frame<'k> {
    /// Executing `stmts[idx..]` of a statement list.
    Block { stmts: &'k [Stmt], idx: usize },
    /// A `For` loop mid-flight: iteration `i` of `n` is on the frame
    /// stack above (as a `Block`), with `activated` wave sites to
    /// deactivate when the loop closes.
    Loop {
        stmt: &'k Stmt,
        i: i64,
        n: i64,
        is_wave: bool,
        activated: (usize, usize),
    },
    /// A parked fusable wave loop: once the pending super-wave flush
    /// installs this request's result blocks, the whole body runs as
    /// fused bulk passes ([`Interp::exec_fused_wave`]) and the wave's
    /// `activated` sites retire.
    Fused {
        key: (usize, usize),
        n: usize,
        activated: (usize, usize),
    },
}

/// The resumable execution state of one request in a batch: its launch
/// schedule position plus the frame stack of the statement walk. Loop
/// variables live in the interpreter's slot array (which nothing
/// unwinds), so suspending at a wave loop and resuming after the flush
/// needs no re-evaluation of any control expression — the counters
/// stay exactly those of an uninterrupted run.
pub(crate) struct RunCursor<'k> {
    pub(crate) units: Vec<(usize, Option<i64>)>,
    pub(crate) unit: usize,
    pub(crate) in_launch: bool,
    pub(crate) frames: Vec<Frame<'k>>,
    pub(crate) done: bool,
}

impl<'k> RunCursor<'k> {
    pub(crate) fn new(units: Vec<(usize, Option<i64>)>) -> Self {
        RunCursor {
            units,
            unit: 0,
            in_launch: false,
            frames: Vec::new(),
            done: false,
        }
    }
}

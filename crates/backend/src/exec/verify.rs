//! Static verification of a lowered [`Program`].
//!
//! Runs once per [`super::build_plans`] (fresh engine builds *and*
//! `set_options` rebuilds) and turns every invariant the pc runtime
//! assumes — documented on [`super::program`] — into a checked one:
//!
//! * every jump/branch/loop/kernel pc operand lands inside the op
//!   stream ([`VerifyError::DanglingJump`]);
//! * `LoopEnter`/`LoopNext` pair up and nest properly within each
//!   kernel ([`VerifyError::UnpairedLoopNext`],
//!   [`VerifyError::UnclosedLoop`]);
//! * every register slot is written (by a `Let`, a loop header, or the
//!   kernel's batch binding) before any expression reads it
//!   ([`VerifyError::UseBeforeDef`], [`VerifyError::SlotOutOfRange`]);
//! * every `d_all_batches` wave loop that drives a wave-GEMM loop
//!   contains a `Barrier` separating its iterations
//!   ([`VerifyError::MissingBarrier`]);
//! * every raw expression pointer an op carries is owned by the
//!   engine's compiled kernels — the pointer invariant the runtime's
//!   `unsafe` dereferences rely on ([`VerifyError::ForeignExpr`]);
//! * every stored parallel-safety certificate matches what the static
//!   certifier derives from the kernels, and every fused wave's is
//!   `RowDisjoint` — a forged or stale certificate is rejected before
//!   any run is admitted ([`VerifyError::CertificateMismatch`]).
//!
//! The scan is textual (it does not follow jumps): the lowering emits
//! defs lexically before their uses and brackets loops in op order, so
//! a linear walk checks exactly the shape the runtime executes.
//! Verification is build-time only — the runtime's dispatch loop is
//! untouched in default builds.

use std::collections::{HashMap, HashSet};

use cortex_core::expr::{BoolExpr, CmpOp, IdxExpr, Ufn, ValExpr};
use cortex_core::ilir::Stmt;

use super::lowering::CompiledKernel;
use super::program::{Op, Program};

/// A violated ExecPlan invariant, naming the offending op index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A pc operand (jump target, branch join, loop body/exit, bulk
    /// `done`, kernel entry) points outside the op stream.
    DanglingJump {
        /// The op carrying the target (`usize::MAX` for a kernel entry).
        op: usize,
        /// The out-of-range pc.
        target: usize,
    },
    /// A `LoopEnter`/`LoopNext` names a loop id with no `LoopDef`
    /// (or a plan id — wave, fused, bulk — with no plan entry).
    PlanRefOutOfBounds {
        /// The op carrying the reference.
        op: usize,
        /// What kind of table the reference indexes.
        what: &'static str,
        /// The out-of-range index.
        index: usize,
    },
    /// A `LoopNext` whose loop id does not match the innermost open
    /// `LoopEnter` (unpaired or improperly nested).
    UnpairedLoopNext {
        /// The `LoopNext` op.
        op: usize,
        /// Its loop id.
        loop_id: usize,
    },
    /// A `LoopEnter` still open when its kernel ends.
    UnclosedLoop {
        /// The unclosed `LoopEnter` op.
        op: usize,
        /// Its loop id.
        loop_id: usize,
    },
    /// A register slot outside the kernel's compiled slot file.
    SlotOutOfRange {
        /// The op writing or reading the slot.
        op: usize,
        /// The offending slot.
        slot: usize,
        /// The kernel's slot-file size.
        limit: usize,
    },
    /// An expression reads a slot no earlier op in the kernel wrote.
    UseBeforeDef {
        /// The op evaluating the expression.
        op: usize,
        /// The undefined slot.
        slot: usize,
    },
    /// An op's raw expression pointer is not owned by the engine's
    /// compiled kernels — dereferencing it would be UB.
    ForeignExpr {
        /// The op carrying the pointer.
        op: usize,
    },
    /// A `d_all_batches` wave loop drives a wave-GEMM loop but contains
    /// no `Barrier` separating its iterations.
    MissingBarrier {
        /// The wave loop's `LoopEnter` op.
        op: usize,
        /// Its loop id.
        loop_id: usize,
    },
    /// A loop's static shape disagrees with its op placement (body must
    /// immediately follow the `LoopEnter`, the fused epilogue its
    /// `LoopNext`).
    BadLoopShape {
        /// The loop's `LoopEnter` op.
        op: usize,
        /// Its loop id.
        loop_id: usize,
        /// Which field disagrees.
        what: &'static str,
    },
    /// A specialized step table's length disagrees with the layout
    /// re-derived from the source program (`what` names the table:
    /// `"step"`, `"kernel"`, `"pc-map"`) — the table was truncated,
    /// extended or built against a different program.
    ThreadedLengthMismatch {
        /// Which specialized table disagrees.
        what: &'static str,
        /// The table's length.
        found: usize,
        /// The length the program's layout requires.
        expected: usize,
    },
    /// A specialized kernel entry does not translate the source
    /// program's entry (or its launch metadata was altered).
    ThreadedEntryMismatch {
        /// The kernel index.
        kernel: usize,
        /// The table's entry step.
        entry: usize,
        /// The step the program's entry translates to.
        expected: usize,
    },
    /// A specialized step records a jump target outside the step table —
    /// dispatching through it would read past the table.
    ThreadedDanglingTarget {
        /// The step carrying the target.
        step: usize,
        /// The out-of-range target.
        target: usize,
        /// The step-table length.
        len: usize,
    },
    /// A specialized step's recorded jump targets disagree with the ones
    /// re-derived from the source op — the table was retargeted after
    /// specialization.
    ThreadedTargetMismatch {
        /// The disagreeing step.
        step: usize,
    },
    /// A stored parallel-safety certificate disagrees with the one the
    /// certifier re-derives from the compiled kernels (or a fused wave
    /// carries anything other than `RowDisjoint`): the plan was forged
    /// or tampered with after lowering.
    CertificateMismatch {
        /// Which certificate table (`"wave"` / `"fused"`).
        what: &'static str,
        /// Index into that table.
        index: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::DanglingJump { op, target } => {
                write!(f, "op {op}: jump target {target} outside the op stream")
            }
            VerifyError::PlanRefOutOfBounds { op, what, index } => {
                write!(f, "op {op}: {what} id {index} has no table entry")
            }
            VerifyError::UnpairedLoopNext { op, loop_id } => {
                write!(
                    f,
                    "op {op}: LoopNext({loop_id}) does not close the innermost open loop"
                )
            }
            VerifyError::UnclosedLoop { op, loop_id } => {
                write!(
                    f,
                    "op {op}: LoopEnter({loop_id}) never closed in its kernel"
                )
            }
            VerifyError::SlotOutOfRange { op, slot, limit } => {
                write!(
                    f,
                    "op {op}: slot {slot} outside the kernel's {limit}-slot file"
                )
            }
            VerifyError::UseBeforeDef { op, slot } => {
                write!(f, "op {op}: reads slot {slot} before any op defines it")
            }
            VerifyError::ForeignExpr { op } => {
                write!(
                    f,
                    "op {op}: expression pointer not owned by the compiled kernels"
                )
            }
            VerifyError::MissingBarrier { op, loop_id } => {
                write!(
                    f,
                    "op {op}: wave loop {loop_id} drives a wave GEMM with no barrier in its body"
                )
            }
            VerifyError::BadLoopShape { op, loop_id, what } => {
                write!(f, "op {op}: loop {loop_id} has inconsistent {what}")
            }
            VerifyError::ThreadedLengthMismatch {
                what,
                found,
                expected,
            } => {
                write!(
                    f,
                    "threaded {what} table has {found} entries, layout requires {expected}"
                )
            }
            VerifyError::ThreadedEntryMismatch {
                kernel,
                entry,
                expected,
            } => {
                write!(
                    f,
                    "threaded kernel {kernel} enters at step {entry}, program requires {expected}"
                )
            }
            VerifyError::ThreadedDanglingTarget { step, target, len } => {
                write!(
                    f,
                    "threaded step {step}: jump target {target} outside the {len}-step table"
                )
            }
            VerifyError::ThreadedTargetMismatch { step } => {
                write!(
                    f,
                    "threaded step {step}: recorded jump targets disagree with the source program"
                )
            }
            VerifyError::CertificateMismatch { what, index } => {
                write!(
                    f,
                    "{what} certificate {index} does not match the re-derived parallel-safety \
                     analysis"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Every expression/statement address owned by the compiled kernels —
/// the set of pointers ops may legally carry.
struct OwnedAddrs {
    stmts: HashSet<usize>,
    idxs: HashSet<usize>,
    bools: HashSet<usize>,
}

impl OwnedAddrs {
    fn collect(kernels: &[CompiledKernel]) -> Self {
        let mut o = OwnedAddrs {
            stmts: HashSet::new(),
            idxs: HashSet::new(),
            bools: HashSet::new(),
        };
        for k in kernels {
            for s in &k.body {
                o.add_stmt(s);
            }
        }
        o
    }

    fn add_stmt(&mut self, s: &Stmt) {
        self.stmts.insert(s as *const Stmt as usize);
        match s {
            Stmt::For { extent, body, .. } => {
                self.add_idx(extent);
                body.iter().for_each(|st| self.add_stmt(st));
            }
            Stmt::Let { value, body, .. } => {
                self.add_idx(value);
                body.iter().for_each(|st| self.add_stmt(st));
            }
            Stmt::Store { index, value, .. } => {
                index.iter().for_each(|e| self.add_idx(e));
                self.add_val(value);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.add_bool(cond);
                then_branch.iter().for_each(|st| self.add_stmt(st));
                else_branch.iter().for_each(|st| self.add_stmt(st));
            }
            Stmt::Barrier => {}
        }
    }

    fn add_idx(&mut self, e: &IdxExpr) {
        self.idxs.insert(e as *const IdxExpr as usize);
        match e {
            IdxExpr::Const(_) | IdxExpr::Rt(_) | IdxExpr::Var(_) => {}
            IdxExpr::Ufn(_, args) => args.iter().for_each(|a| self.add_idx(a)),
            IdxExpr::Bin(_, a, b) => {
                self.add_idx(a);
                self.add_idx(b);
            }
        }
    }

    fn add_bool(&mut self, e: &BoolExpr) {
        self.bools.insert(e as *const BoolExpr as usize);
        match e {
            BoolExpr::Cmp(_, a, b) => {
                self.add_idx(a);
                self.add_idx(b);
            }
            BoolExpr::IsLeaf(a) => self.add_idx(a),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                self.add_bool(a);
                self.add_bool(b);
            }
            BoolExpr::Not(a) => self.add_bool(a),
        }
    }

    fn add_val(&mut self, e: &ValExpr) {
        match e {
            ValExpr::Const(_) => {}
            ValExpr::Load { index, .. } => index.iter().for_each(|i| self.add_idx(i)),
            ValExpr::Unary(_, a) => self.add_val(a),
            ValExpr::Bin(_, a, b) => {
                self.add_val(a);
                self.add_val(b);
            }
            ValExpr::Sum { extent, body, .. } => {
                self.add_idx(extent);
                self.add_val(body);
            }
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                self.add_bool(cond);
                self.add_val(then);
                self.add_val(otherwise);
            }
        }
    }
}

/// Tracks which register slots are defined at the current textual point
/// of one kernel, plus expression-local binders (`Sum`/nested loops).
struct SlotEnv {
    defined: Vec<bool>,
    /// Binders introduced inside the expression currently being walked.
    bound: Vec<usize>,
    op: usize,
}

impl SlotEnv {
    fn new(limit: usize) -> Self {
        SlotEnv {
            defined: vec![false; limit],
            bound: Vec::new(),
            op: 0,
        }
    }

    fn define(&mut self, slot: usize) -> Result<(), VerifyError> {
        if slot >= self.defined.len() {
            return Err(VerifyError::SlotOutOfRange {
                op: self.op,
                slot,
                limit: self.defined.len(),
            });
        }
        self.defined[slot] = true;
        Ok(())
    }

    fn read(&self, slot: usize) -> Result<(), VerifyError> {
        if slot >= self.defined.len() {
            return Err(VerifyError::SlotOutOfRange {
                op: self.op,
                slot,
                limit: self.defined.len(),
            });
        }
        if !self.defined[slot] && !self.bound.contains(&slot) {
            return Err(VerifyError::UseBeforeDef { op: self.op, slot });
        }
        Ok(())
    }

    fn check_idx(&self, e: &IdxExpr) -> Result<(), VerifyError> {
        match e {
            IdxExpr::Const(_) | IdxExpr::Rt(_) => Ok(()),
            IdxExpr::Var(v) => self.read(v.id() as usize),
            IdxExpr::Ufn(_, args) => args.iter().try_for_each(|a| self.check_idx(a)),
            IdxExpr::Bin(_, a, b) => {
                self.check_idx(a)?;
                self.check_idx(b)
            }
        }
    }

    fn check_bool(&self, e: &BoolExpr) -> Result<(), VerifyError> {
        match e {
            BoolExpr::Cmp(_, a, b) => {
                self.check_idx(a)?;
                self.check_idx(b)
            }
            BoolExpr::IsLeaf(a) => self.check_idx(a),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                self.check_bool(a)?;
                self.check_bool(b)
            }
            BoolExpr::Not(a) => self.check_bool(a),
        }
    }

    fn check_val(&mut self, e: &ValExpr) -> Result<(), VerifyError> {
        match e {
            ValExpr::Const(_) => Ok(()),
            ValExpr::Load { index, .. } => index.iter().try_for_each(|i| self.check_idx(i)),
            ValExpr::Unary(_, a) => self.check_val(a),
            ValExpr::Bin(_, a, b) => {
                self.check_val(a)?;
                self.check_val(b)
            }
            ValExpr::Sum { var, extent, body } => {
                self.check_idx(extent)?;
                self.bound.push(var.id() as usize);
                let r = self.check_val(body);
                self.bound.pop();
                r
            }
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                self.check_bool(cond)?;
                self.check_val(then)?;
                self.check_val(otherwise)
            }
        }
    }

    /// Use-check a whole statement subtree (`Store` / `ScalarStmt` ops),
    /// treating nested `For`/`Let` binders as locally bound.
    fn check_stmt(&mut self, s: &Stmt) -> Result<(), VerifyError> {
        match s {
            Stmt::For {
                var, extent, body, ..
            } => {
                self.check_idx(extent)?;
                self.bound.push(var.id() as usize);
                let r = body.iter().try_for_each(|st| self.check_stmt(st));
                self.bound.pop();
                r
            }
            Stmt::Let { var, value, body } => {
                self.check_idx(value)?;
                self.bound.push(var.id() as usize);
                let r = body.iter().try_for_each(|st| self.check_stmt(st));
                self.bound.pop();
                r
            }
            Stmt::Store { index, value, .. } => {
                index.iter().try_for_each(|i| self.check_idx(i))?;
                self.check_val(value)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_bool(cond)?;
                then_branch.iter().try_for_each(|st| self.check_stmt(st))?;
                else_branch.iter().try_for_each(|st| self.check_stmt(st))
            }
            Stmt::Barrier => Ok(()),
        }
    }
}

/// Verifies every static invariant of a lowered program (module docs).
///
/// # Errors
///
/// The first violated invariant, naming the offending op index.
pub(crate) fn verify(plan: &Program) -> Result<(), VerifyError> {
    let owned = OwnedAddrs::collect(&plan.source);
    let n_ops = plan.ops.len();
    // Textual kernel ranges: entry of kernel k up to the next entry.
    for (ki, kd) in plan.kernels.iter().enumerate() {
        if kd.entry >= n_ops {
            return Err(VerifyError::DanglingJump {
                op: usize::MAX,
                target: kd.entry,
            });
        }
        let end = plan.kernels.get(ki + 1).map(|k| k.entry).unwrap_or(n_ops);
        let limit = plan
            .source
            .get(ki)
            .map(|k| k.num_slots)
            .unwrap_or(usize::MAX);
        verify_kernel(plan, &owned, ki, kd.entry..end, limit)?;
    }
    verify_certificates(plan)
}

/// Re-derives every parallel-safety certificate from the compiled
/// kernels and compares it with the stored one, so a forged or stale
/// certificate never reaches a consumer (the multicore dispatcher
/// trusts `RowDisjoint` blindly — this is where that trust is earned).
fn verify_certificates(plan: &Program) -> Result<(), VerifyError> {
    use super::analysis::parsafety::{self, ParSafety};
    if plan.wave_safety.len() != plan.waves.len() {
        return Err(VerifyError::CertificateMismatch {
            what: "wave",
            index: plan.wave_safety.len().min(plan.waves.len()),
        });
    }
    if plan.fused_safety.len() != plan.fused.len() {
        return Err(VerifyError::CertificateMismatch {
            what: "fused",
            index: plan.fused_safety.len().min(plan.fused.len()),
        });
    }
    // Wave bodies are found back through the plan's `for_key` (the
    // planned `For`'s statement address within the compiled kernels).
    // An explicit walker — `Stmt::visit` cannot lend references with
    // the tree's lifetime out of its callback.
    fn collect_fors<'a>(s: &'a Stmt, out: &mut HashMap<usize, (cortex_core::Var, &'a [Stmt])>) {
        match s {
            Stmt::For { var, body, .. } => {
                out.insert(s as *const Stmt as usize, (*var, body.as_slice()));
                body.iter().for_each(|c| collect_fors(c, out));
            }
            Stmt::Let { body, .. } => body.iter().for_each(|c| collect_fors(c, out)),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.iter().for_each(|c| collect_fors(c, out));
                else_branch.iter().for_each(|c| collect_fors(c, out));
            }
            Stmt::Store { .. } | Stmt::Barrier => {}
        }
    }
    let mut fors: HashMap<usize, (cortex_core::Var, &[Stmt])> = HashMap::new();
    for k in plan.source.iter() {
        for s in &k.body {
            collect_fors(s, &mut fors);
        }
    }
    for (i, (wref, cert)) in plan.waves.iter().zip(&plan.wave_safety).enumerate() {
        let Some(&(var, body)) = fors.get(&wref.for_key) else {
            return Err(VerifyError::CertificateMismatch {
                what: "wave",
                index: i,
            });
        };
        if parsafety::certify_wave_body(var, body) != *cert {
            return Err(VerifyError::CertificateMismatch {
                what: "wave",
                index: i,
            });
        }
    }
    for (i, (fw, cert)) in plan.fused.iter().zip(&plan.fused_safety).enumerate() {
        let node = fw
            .node_let
            .as_ref()
            .map(|(slot, _)| cortex_core::Var::from_raw(*slot as u32));
        let derived = parsafety::certify_fused(
            &fw.loops,
            cortex_core::Var::from_raw(fw.n_idx_slot as u32),
            node,
        );
        // A fused wave must not merely match: only row-disjoint bodies
        // may fuse at all.
        if derived != *cert || derived != ParSafety::RowDisjoint {
            return Err(VerifyError::CertificateMismatch {
                what: "fused",
                index: i,
            });
        }
    }
    Ok(())
}

fn verify_kernel(
    plan: &Program,
    owned: &OwnedAddrs,
    ki: usize,
    range: std::ops::Range<usize>,
    slot_limit: usize,
) -> Result<(), VerifyError> {
    let n_ops = plan.ops.len();
    // A kernel range with no matching compiled kernel (hand-built test
    // programs) gets a generous slot file instead of none.
    let mut env = SlotEnv::new(if slot_limit == usize::MAX {
        4096
    } else {
        slot_limit
    });
    // The launch prologue binds the kernel's batch slot before any op.
    if let Some(bv) = plan.kernels[ki].batch_slot {
        env.op = range.start;
        env.define(bv)?;
    }
    // Open `LoopEnter`s, innermost last: (op pc, loop id).
    let mut open: Vec<(usize, usize)> = Vec::new();
    // Wave loops driving a wave-GEMM loop must barrier each iteration:
    // (enter pc, loop id, exit pc, saw_gemm, saw_barrier).
    let mut wave_watch: Vec<(usize, usize, usize, bool, bool)> = Vec::new();
    for pc in range {
        env.op = pc;
        match &plan.ops[pc] {
            Op::KernelEnd => {
                if let Some(&(at, loop_id)) = open.last() {
                    return Err(VerifyError::UnclosedLoop { op: at, loop_id });
                }
                break;
            }
            Op::LoopEnter(id) => {
                let d = plan.loops.get(*id).ok_or(VerifyError::PlanRefOutOfBounds {
                    op: pc,
                    what: "loop",
                    index: *id,
                })?;
                if !owned.idxs.contains(&(d.extent as usize)) {
                    return Err(VerifyError::ForeignExpr { op: pc });
                }
                // SAFETY: ownership checked above — the pointer targets
                // an expression the program's `source` keeps alive.
                env.check_idx(unsafe { &*d.extent })?;
                for (target, what) in [(d.body, "body"), (d.fused_pc, "fused_pc"), (d.exit, "exit")]
                {
                    if target >= n_ops {
                        return Err(VerifyError::DanglingJump { op: pc, target });
                    }
                    if what == "body" && target != pc + 1 {
                        return Err(VerifyError::BadLoopShape {
                            op: pc,
                            loop_id: *id,
                            what: "body pc",
                        });
                    }
                }
                if let Some(w) = d.wave {
                    if w >= plan.waves.len() {
                        return Err(VerifyError::PlanRefOutOfBounds {
                            op: pc,
                            what: "wave",
                            index: w,
                        });
                    }
                    for watch in wave_watch.iter_mut() {
                        watch.3 = true;
                    }
                }
                if let Some(fu) = d.fused {
                    if fu >= plan.fused.len() {
                        return Err(VerifyError::PlanRefOutOfBounds {
                            op: pc,
                            what: "fused",
                            index: fu,
                        });
                    }
                }
                env.define(d.slot)?;
                open.push((pc, *id));
                if d.is_wave {
                    wave_watch.push((pc, *id, d.exit, false, false));
                }
            }
            Op::LoopNext(id) => {
                if *id >= plan.loops.len() {
                    return Err(VerifyError::PlanRefOutOfBounds {
                        op: pc,
                        what: "loop",
                        index: *id,
                    });
                }
                match open.pop() {
                    Some((_, open_id)) if open_id == *id => {}
                    _ => {
                        return Err(VerifyError::UnpairedLoopNext {
                            op: pc,
                            loop_id: *id,
                        })
                    }
                }
                if let Some(at) = wave_watch.iter().position(|&(_, lid, ..)| lid == *id) {
                    let (enter, loop_id, _, saw_gemm, saw_barrier) = wave_watch.remove(at);
                    if saw_gemm && !saw_barrier {
                        return Err(VerifyError::MissingBarrier { op: enter, loop_id });
                    }
                }
            }
            Op::FusedEpilogue => {}
            Op::Let { slot, value } => {
                if !owned.idxs.contains(&(*value as usize)) {
                    return Err(VerifyError::ForeignExpr { op: pc });
                }
                // SAFETY: ownership checked above.
                env.check_idx(unsafe { &**value })?;
                env.define(*slot)?;
            }
            Op::Store { stmt } | Op::ScalarStmt { stmt } => {
                if !owned.stmts.contains(&(*stmt as usize)) {
                    return Err(VerifyError::ForeignExpr { op: pc });
                }
                // SAFETY: ownership checked above.
                env.check_stmt(unsafe { &**stmt })?;
            }
            Op::Branch { cond, on_false } => {
                if !owned.bools.contains(&(*cond as usize)) {
                    return Err(VerifyError::ForeignExpr { op: pc });
                }
                // SAFETY: ownership checked above.
                env.check_bool(unsafe { &**cond })?;
                if *on_false >= n_ops {
                    return Err(VerifyError::DanglingJump {
                        op: pc,
                        target: *on_false,
                    });
                }
            }
            Op::Jump(target) => {
                if *target >= n_ops {
                    return Err(VerifyError::DanglingJump {
                        op: pc,
                        target: *target,
                    });
                }
            }
            Op::Barrier => {
                for watch in wave_watch.iter_mut() {
                    watch.4 = true;
                }
            }
            Op::BulkPass { id, done } => {
                if *id >= plan.bulks.len() {
                    return Err(VerifyError::PlanRefOutOfBounds {
                        op: pc,
                        what: "bulk",
                        index: *id,
                    });
                }
                if *done >= n_ops {
                    return Err(VerifyError::DanglingJump {
                        op: pc,
                        target: *done,
                    });
                }
            }
        }
    }
    if let Some(&(at, loop_id)) = open.last() {
        return Err(VerifyError::UnclosedLoop { op: at, loop_id });
    }
    Ok(())
}

/// Child-arity bounds the plan was lowered for, scanned from the
/// compiled kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArityBounds {
    /// One past the highest child slot any kernel reads
    /// (`Ufn::Child(k)`), or 0 if no kernel touches children.
    /// Structures with more children per node would have their extra
    /// children silently ignored, so intake rejects them
    /// ([`super::InvalidInput::ArityExceedsPlan`]).
    pub max: usize,
    /// One past the highest child slot read *unguarded* — outside the
    /// `then` branch of a `Select` whose condition proves the slot
    /// exists (`Const(c) < NumChildren(n)` with `k <= c`). Exact
    /// (unguarded) plans read every slot up to this for any node with
    /// children, so intake rejects internal nodes with fewer
    /// ([`super::InvalidInput::ArityBelowPlan`]); guarded plans
    /// (`required == 0`) substitute zero and accept any arity.
    pub required: usize,
}

/// Scans the compiled kernels for [`ArityBounds`]. `bound` carries the
/// highest child slot the enclosing `Select` guards prove present.
pub(crate) fn plan_arity_bounds(kernels: &[CompiledKernel]) -> ArityBounds {
    /// `Some(c)` when `cond` is the canonical slot guard
    /// `Const(c) < NumChildren(n)`, proving slots `0..=c` exist.
    fn guard_bound(cond: &BoolExpr) -> Option<usize> {
        if let BoolExpr::Cmp(CmpOp::Lt, IdxExpr::Const(c), IdxExpr::Ufn(Ufn::NumChildren, _)) = cond
        {
            usize::try_from(*c).ok()
        } else {
            None
        }
    }
    fn scan_stmt(s: &Stmt, b: &mut ArityBounds, bound: Option<usize>) {
        match s {
            Stmt::For { extent, body, .. } => {
                scan_idx(extent, b, bound);
                body.iter().for_each(|st| scan_stmt(st, b, bound));
            }
            Stmt::Let { value, body, .. } => {
                scan_idx(value, b, bound);
                body.iter().for_each(|st| scan_stmt(st, b, bound));
            }
            Stmt::Store { index, value, .. } => {
                index.iter().for_each(|i| scan_idx(i, b, bound));
                scan_val(value, b, bound);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                scan_bool(cond, b, bound);
                then_branch.iter().for_each(|st| scan_stmt(st, b, bound));
                else_branch.iter().for_each(|st| scan_stmt(st, b, bound));
            }
            Stmt::Barrier => {}
        }
    }
    fn scan_idx(e: &IdxExpr, b: &mut ArityBounds, bound: Option<usize>) {
        match e {
            IdxExpr::Const(_) | IdxExpr::Rt(_) | IdxExpr::Var(_) => {}
            IdxExpr::Ufn(u, args) => {
                if let Ufn::Child(k) = u {
                    let k = *k as usize;
                    b.max = b.max.max(k + 1);
                    if bound.is_none_or(|c| k > c) {
                        b.required = b.required.max(k + 1);
                    }
                }
                args.iter().for_each(|a| scan_idx(a, b, bound));
            }
            IdxExpr::Bin(_, x, y) => {
                scan_idx(x, b, bound);
                scan_idx(y, b, bound);
            }
        }
    }
    fn scan_bool(e: &BoolExpr, b: &mut ArityBounds, bound: Option<usize>) {
        match e {
            BoolExpr::Cmp(_, x, y) => {
                scan_idx(x, b, bound);
                scan_idx(y, b, bound);
            }
            BoolExpr::IsLeaf(x) => scan_idx(x, b, bound),
            BoolExpr::And(x, y) | BoolExpr::Or(x, y) => {
                scan_bool(x, b, bound);
                scan_bool(y, b, bound);
            }
            BoolExpr::Not(x) => scan_bool(x, b, bound),
        }
    }
    fn scan_val(e: &ValExpr, b: &mut ArityBounds, bound: Option<usize>) {
        match e {
            ValExpr::Const(_) => {}
            ValExpr::Load { index, .. } => index.iter().for_each(|i| scan_idx(i, b, bound)),
            ValExpr::Unary(_, a) => scan_val(a, b, bound),
            ValExpr::Bin(_, x, y) => {
                scan_val(x, b, bound);
                scan_val(y, b, bound);
            }
            ValExpr::Sum { extent, body, .. } => {
                scan_idx(extent, b, bound);
                scan_val(body, b, bound);
            }
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                scan_bool(cond, b, bound);
                // Guards compose conjunctively along the path: keep the
                // strongest proof in scope.
                let inner = match guard_bound(cond) {
                    Some(c) => Some(bound.map_or(c, |prev| prev.max(c))),
                    None => bound,
                };
                scan_val(then, b, inner);
                scan_val(otherwise, b, bound);
            }
        }
    }
    let mut b = ArityBounds {
        max: 0,
        required: 0,
    };
    for k in kernels {
        for s in &k.body {
            scan_stmt(s, &mut b, None);
        }
    }
    b
}

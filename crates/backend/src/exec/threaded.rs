//! The direct-threaded runtime tier: a [`Program`] specialized into a
//! flat table of monomorphized step closures.
//!
//! The pc runtime ([`super::run`]) still pays a match-on-op plus operand
//! decode per [`Op`] executed. This module removes that hot-path cost by
//! compiling each **verified** program once at engine build into a
//! [`ThreadedProgram`]: one boxed closure per step, with everything the
//! dispatch loop used to decode — loop bounds, slot numbers, jump
//! targets, wave/bulk/fused plan handles — resolved into each closure's
//! captured state. Three specializations do the work:
//!
//! * **Expression compilation** ([`CIdx`], [`CVal`]): index expressions
//!   lower to closure trees with constants folded (`Const` operands
//!   disappear, `Var` reads become direct slot loads, two-`Const`
//!   arithmetic folds at build time), boolean conditions compile per
//!   comparison op, and `Store` values compile per value-op — a `Sum`
//!   site resolves its fastdot plan *once into the closure* instead of
//!   the per-element hash-map lookup the pc tier pays. Counter semantics
//!   are preserved exactly — `Ufn::NumChildren` still bumps
//!   `leaf_check_loads`, every `Unary`/`Bin` still charges its flop,
//!   `And`/`Or` still short-circuit — so the `Profile` is bit-identical
//!   to the other tiers.
//! * **Peephole run fusion**: maximal runs of adjacent straight-line ops
//!   (`Let`/`Store`/`Barrier`) that no jump target lands inside fuse
//!   into a *single* step executing a micro-op list, so a block of k
//!   scalar ops costs one dispatch instead of k.
//! * **Native loop fusion** ([`native_loops`]): a plain loop — no wave,
//!   no fused epilogue, no scope bookkeeping, a straight-line body no
//!   external jump lands inside — folds into a *single* step running a
//!   native `for` over its micro-ops. The per-iteration
//!   body-step/`LoopNext` dispatch pair, loop-record mutation and step
//!   bounds check all disappear; the watchdog still charges one unit of
//!   fuel per back-edge, exactly as the pc tier's `LoopNext` does.
//!
//! Suspension is unchanged: the threaded tier reuses [`PcCursor`] (the
//! pc now indexes steps instead of ops), so a parked request is still a
//! plain value — step index plus loop records — and the super-wave
//! park/flush/resume protocol, watchdog fuel, fault hooks and the
//! `checked` shadow auditor all work identically. The pc runtime remains
//! the tier-2 fallback (`ExecOptions { threaded: false }`) and the AST
//! oracle (`interp: true`) the bit-exactness reference; a three-way
//! property test holds all tiers to identical outputs *and* `Profile`.
//!
//! # Safety
//!
//! Like the pc runtime, step closures capture raw pointers into the
//! engine's compiled kernels (`Store` values, escape-hatch statements).
//! Every dereference is sound because [`ThreadedProgram::source`] holds
//! the owning `Rc<Vec<CompiledKernel>>` — the same pointer invariant
//! [`super::program`] documents and [`super::verify`] checks.

use std::rc::Rc;
use std::time::Instant;

use cortex_core::expr::{BoolExpr, CmpOp, IdxBinOp, IdxExpr, TensorId, ValExpr};
use cortex_core::ilir::{LaunchPattern, Stmt};

use super::bulk::{BulkPlan, FusedWave};
use super::interp::Interp;
use super::lowering::CompiledKernel;
use super::program::{Op, Pc, Program};
use super::run::{LoopRec, PcCursor};
use super::{checked_assert, ExecError, StepOutcome, VerifyError};
use crate::wave::{SuperWaveAcc, WavePlan};

/// The super-wave deferral slot a step may register gathered rows into
/// (`None` on solo runs — nothing ever parks without an accumulator).
type Defer<'d> = Option<(&'d mut SuperWaveAcc, usize)>;

/// One specialized dispatch step: advances the cursor and returns
/// whether the request parked for a super-wave flush.
type StepFn =
    Box<dyn Fn(&mut Interp<'_>, &mut PcCursor, &mut Defer<'_>) -> Result<bool, ExecError>>;

/// A compiled boolean condition.
type BoolFn = Box<dyn Fn(&mut Interp<'_>) -> bool>;

/// One entry of the specialized dispatch table.
pub(crate) struct ThreadedStep {
    pub(crate) run: StepFn,
    /// The static jump targets (step indices) this step may assign —
    /// recorded at build so [`verify_threaded`] can re-derive and check
    /// them against the source program without calling the closure.
    pub(crate) targets: Vec<Pc>,
}

/// One kernel's entry point in the specialized step table (the step-space
/// twin of [`super::program::KernelDef`]).
pub(crate) struct ThreadedKernel {
    pub(crate) entry: Pc,
    pub(crate) launch: LaunchPattern,
    pub(crate) batch_slot: Option<usize>,
}

/// A [`Program`] specialized into direct-threaded closure code (see the
/// module docs). Built once per engine by [`specialize`], after static
/// verification passes, and checked by [`verify_threaded`] before the
/// engine will dispatch through it.
pub(crate) struct ThreadedProgram {
    pub(crate) steps: Vec<ThreadedStep>,
    pub(crate) kernels: Vec<ThreadedKernel>,
    /// Op pc → step index for ops that begin a step (`None` for ops
    /// fused into the middle of a run). The translation every recorded
    /// jump target went through — [`verify_threaded`] re-derives it.
    pub(crate) pc_map: Vec<Option<Pc>>,
    /// Runs of ≥ 2 adjacent straight-line ops fused into single steps,
    /// plus whole plain loops folded into native-loop steps (see
    /// [`native_loops`]).
    pub(crate) fused_scalar_runs: usize,
    /// Wall-clock nanoseconds the specializer took.
    pub(crate) specialize_ns: u64,
    /// Owner of every statement tree the step closures point into — see
    /// the module-level safety note.
    #[allow(dead_code)]
    pub(crate) source: Rc<Vec<CompiledKernel>>,
}

// ---------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------

/// A compiled index expression: constants folded at build time, slot
/// reads direct, everything else a closure.
enum CIdx {
    Const(i64),
    /// A bare `Var` read — the overwhelmingly common leaf, kept out of
    /// the boxed-closure path so loop-variable reads stay one load.
    Slot(usize),
    Dyn(Box<dyn Fn(&mut Interp<'_>) -> i64>),
}

impl CIdx {
    #[inline]
    fn eval(&self, it: &mut Interp<'_>) -> i64 {
        match self {
            CIdx::Const(c) => *c,
            CIdx::Slot(s) => it.slots[*s],
            CIdx::Dyn(f) => f(it),
        }
    }
}

/// Compiles one index expression, mirroring `Interp::eval_idx` exactly:
/// same evaluation order, same counter bumps, same euclidean division —
/// only the dispatch is resolved at build time.
fn compile_idx(e: &IdxExpr) -> CIdx {
    use cortex_core::expr::Ufn;
    match e {
        IdxExpr::Const(c) => CIdx::Const(*c),
        IdxExpr::Var(v) => CIdx::Slot(v.id() as usize),
        IdxExpr::Rt(r) => {
            let r = *r;
            CIdx::Dyn(Box::new(move |it| it.rt_scalar(r)))
        }
        IdxExpr::Ufn(f, args) => {
            let a0 = compile_idx(&args[0]);
            match f {
                Ufn::Child(k) => {
                    let k = *k as usize;
                    CIdx::Dyn(Box::new(move |it| {
                        let a0 = a0.eval(it);
                        it.lin.child_array(k)[a0 as usize] as i64
                    }))
                }
                Ufn::Word => CIdx::Dyn(Box::new(move |it| {
                    let a0 = a0.eval(it);
                    it.lin.word(a0 as u32) as i64
                })),
                Ufn::NumChildren => CIdx::Dyn(Box::new(move |it| {
                    let a0 = a0.eval(it);
                    it.profile.leaf_check_loads += 1;
                    it.lin.num_children_of(a0 as u32) as i64
                })),
                Ufn::BatchBegin => CIdx::Dyn(Box::new(move |it| {
                    let a0 = a0.eval(it);
                    it.rt.batches[a0 as usize].begin() as i64
                })),
                Ufn::BatchLength => CIdx::Dyn(Box::new(move |it| {
                    let a0 = a0.eval(it);
                    it.rt.batches[a0 as usize].len() as i64
                })),
                Ufn::NodeAt => CIdx::Dyn(Box::new(move |it| {
                    let a0 = a0.eval(it);
                    it.lin.post_order()[a0 as usize] as i64
                })),
                Ufn::RootAt => CIdx::Dyn(Box::new(move |it| {
                    let a0 = a0.eval(it);
                    it.lin.roots()[a0 as usize] as i64
                })),
                Ufn::StageLength => CIdx::Dyn(Box::new(move |it| {
                    let a0 = a0.eval(it);
                    it.rt.stages[a0 as usize].len() as i64
                })),
                Ufn::StageNodeAt => {
                    let a1 = compile_idx(&args[1]);
                    CIdx::Dyn(Box::new(move |it| {
                        let x = a0.eval(it);
                        let y = a1.eval(it);
                        it.rt.stages[x as usize][y as usize] as i64
                    }))
                }
            }
        }
        IdxExpr::Bin(op, a, b) => {
            let ca = compile_idx(a);
            let cb = compile_idx(b);
            // Fold two-constant arithmetic at build time. Div/Rem by a
            // constant zero stay dynamic so the failure mode (a panic at
            // evaluation, not at build) matches the other tiers.
            if let (CIdx::Const(x), CIdx::Const(y)) = (&ca, &cb) {
                let (x, y) = (*x, *y);
                let folded = match op {
                    IdxBinOp::Add => Some(x + y),
                    IdxBinOp::Sub => Some(x - y),
                    IdxBinOp::Mul => Some(x * y),
                    IdxBinOp::Div if y != 0 => Some(x.div_euclid(y)),
                    IdxBinOp::Rem if y != 0 => Some(x.rem_euclid(y)),
                    IdxBinOp::Min => Some(x.min(y)),
                    IdxBinOp::Max => Some(x.max(y)),
                    _ => None,
                };
                if let Some(v) = folded {
                    return CIdx::Const(v);
                }
            }
            // One closure per operator: the op match is resolved here,
            // not per evaluation.
            match op {
                IdxBinOp::Add => CIdx::Dyn(Box::new(move |it| ca.eval(it) + cb.eval(it))),
                IdxBinOp::Sub => CIdx::Dyn(Box::new(move |it| ca.eval(it) - cb.eval(it))),
                IdxBinOp::Mul => CIdx::Dyn(Box::new(move |it| ca.eval(it) * cb.eval(it))),
                IdxBinOp::Div => CIdx::Dyn(Box::new(move |it| ca.eval(it).div_euclid(cb.eval(it)))),
                IdxBinOp::Rem => CIdx::Dyn(Box::new(move |it| ca.eval(it).rem_euclid(cb.eval(it)))),
                IdxBinOp::Min => CIdx::Dyn(Box::new(move |it| ca.eval(it).min(cb.eval(it)))),
                IdxBinOp::Max => CIdx::Dyn(Box::new(move |it| ca.eval(it).max(cb.eval(it)))),
            }
        }
    }
}

/// Compiles one boolean condition, mirroring `Interp::eval_bool`:
/// comparison ops are resolved at build time, `And`/`Or` keep their
/// short-circuit order (a skipped operand must also skip its counter
/// bumps, or the `Profile` would drift from the other tiers).
fn compile_bool(e: &BoolExpr) -> BoolFn {
    match e {
        BoolExpr::Cmp(op, a, b) => {
            let ca = compile_idx(a);
            let cb = compile_idx(b);
            match op {
                CmpOp::Eq => Box::new(move |it| ca.eval(it) == cb.eval(it)),
                CmpOp::Ne => Box::new(move |it| ca.eval(it) != cb.eval(it)),
                CmpOp::Lt => Box::new(move |it| ca.eval(it) < cb.eval(it)),
                CmpOp::Le => Box::new(move |it| ca.eval(it) <= cb.eval(it)),
                CmpOp::Gt => Box::new(move |it| ca.eval(it) > cb.eval(it)),
                CmpOp::Ge => Box::new(move |it| ca.eval(it) >= cb.eval(it)),
            }
        }
        BoolExpr::IsLeaf(n) => {
            let cn = compile_idx(n);
            Box::new(move |it| {
                let v = cn.eval(it);
                it.lin.is_leaf(v as u32)
            })
        }
        BoolExpr::And(a, b) => {
            let ca = compile_bool(a);
            let cb = compile_bool(b);
            Box::new(move |it| ca(it) && cb(it))
        }
        BoolExpr::Or(a, b) => {
            let ca = compile_bool(a);
            let cb = compile_bool(b);
            Box::new(move |it| ca(it) || cb(it))
        }
        BoolExpr::Not(a) => {
            let ca = compile_bool(a);
            Box::new(move |it| !ca(it))
        }
    }
}

/// A compiled value expression. Only bare `Const` leaves fold — a
/// constant under a `Unary`/`Bin` must stay a closure because the other
/// tiers charge a flop for evaluating it, and the `Profile` may not
/// drift.
enum CVal {
    Const(f32),
    Dyn(Box<dyn Fn(&mut Interp<'_>) -> f32>),
}

impl CVal {
    #[inline]
    fn eval(&self, it: &mut Interp<'_>) -> f32 {
        match self {
            CVal::Const(c) => *c,
            CVal::Dyn(f) => f(it),
        }
    }
}

/// Compiles one value expression, mirroring `Interp::eval_val` exactly:
/// same evaluation order, same counter bumps (`flops` per `Unary`/`Bin`
/// and per scalar-dot iteration, `branch_checks` per `Select`, load
/// accounting per `Load`), same memo-before-fastdot-before-scalar-loop
/// serving order for `Sum` — only the dispatch, the operand decode and
/// the fastdot plan lookup are resolved at build time.
fn compile_val(e: &ValExpr) -> CVal {
    use cortex_core::expr::{BinOp, UnaryOp};
    match e {
        ValExpr::Const(c) => CVal::Const(*c),
        ValExpr::Load { tensor, index } => {
            // The exact shape of `Interp::offset` + `record_load`:
            // coordinates in order, strides read at evaluation (tensor
            // extents may be `Nodes`/`MaxBatch`). The common 1-D/2-D
            // arities get dedicated closures.
            let tensor = *tensor;
            let mut cidx: Vec<CIdx> = index.iter().map(compile_idx).collect();
            match cidx.len() {
                1 => {
                    let i0 = cidx.pop().expect("one coordinate");
                    CVal::Dyn(Box::new(move |it| {
                        let c0 = i0.eval(it);
                        let buf = it.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("loaded tensor allocated");
                        debug_assert!(
                            c0 >= 0 && (c0 as usize) < buf.dims[0],
                            "index {c0} out of bounds for dim 0 of {:?} (tensor {tensor})",
                            buf.dims
                        );
                        let off = c0 as usize * buf.strides[0];
                        it.record_load(tensor);
                        it.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("loaded tensor allocated")
                            .data[off]
                    }))
                }
                2 => {
                    let i1 = cidx.pop().expect("two coordinates");
                    let i0 = cidx.pop().expect("two coordinates");
                    CVal::Dyn(Box::new(move |it| {
                        let c0 = i0.eval(it);
                        let c1 = i1.eval(it);
                        let off = {
                            let buf = it.bufs[tensor.0 as usize]
                                .as_ref()
                                .expect("loaded tensor allocated");
                            debug_assert!(
                                c0 >= 0 && (c0 as usize) < buf.dims[0],
                                "index {c0} out of bounds for dim 0 of {:?} (tensor {tensor})",
                                buf.dims
                            );
                            debug_assert!(
                                c1 >= 0 && (c1 as usize) < buf.dims[1],
                                "index {c1} out of bounds for dim 1 of {:?} (tensor {tensor})",
                                buf.dims
                            );
                            c0 as usize * buf.strides[0] + c1 as usize * buf.strides[1]
                        };
                        it.record_load(tensor);
                        it.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("loaded tensor allocated")
                            .data[off]
                    }))
                }
                _ => {
                    let index = cidx;
                    CVal::Dyn(Box::new(move |it| {
                        let mut coords = [0i64; 8];
                        for (d, e) in index.iter().enumerate() {
                            coords[d] = e.eval(it);
                        }
                        let off = {
                            let buf = it.bufs[tensor.0 as usize]
                                .as_ref()
                                .expect("loaded tensor allocated");
                            let mut off = 0usize;
                            for (d, &c) in coords.iter().enumerate().take(index.len()) {
                                debug_assert!(
                                    c >= 0 && (c as usize) < buf.dims[d],
                                    "index {} out of bounds for dim {} of {:?} (tensor {tensor})",
                                    c,
                                    d,
                                    buf.dims
                                );
                                off += c as usize * buf.strides[d];
                            }
                            off
                        };
                        it.record_load(tensor);
                        it.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("loaded tensor allocated")
                            .data[off]
                    }))
                }
            }
        }
        ValExpr::Unary(op, a) => {
            let ca = compile_val(a);
            macro_rules! un {
                (|$it:ident, $x:ident| $body:expr) => {
                    CVal::Dyn(Box::new(move |$it| {
                        let $x = ca.eval($it);
                        $it.profile.flops += 1;
                        $body
                    }))
                };
            }
            match op {
                UnaryOp::Neg => un!(|it, x| -x),
                UnaryOp::Tanh => un!(|it, x| it.nonlin.tanh(x)),
                UnaryOp::Sigmoid => un!(|it, x| it.nonlin.sigmoid(x)),
                UnaryOp::Relu => un!(|it, x| x.max(0.0)),
                UnaryOp::Exp => un!(|it, x| x.exp()),
            }
        }
        ValExpr::Bin(op, a, b) => {
            let ca = compile_val(a);
            let cb = compile_val(b);
            macro_rules! bin {
                (|$x:ident, $y:ident| $body:expr) => {
                    CVal::Dyn(Box::new(move |it| {
                        let $x = ca.eval(it);
                        let $y = cb.eval(it);
                        it.profile.flops += 1;
                        $body
                    }))
                };
            }
            match op {
                BinOp::Add => bin!(|x, y| x + y),
                BinOp::Sub => bin!(|x, y| x - y),
                BinOp::Mul => bin!(|x, y| x * y),
                BinOp::Div => bin!(|x, y| x / y),
                BinOp::Max => bin!(|x, y| x.max(y)),
                BinOp::Min => bin!(|x, y| x.min(y)),
            }
        }
        ValExpr::Sum { var, extent, body } => {
            // The wave memo and the shared plan cache are keyed by the
            // body expression's address — stable because the expression
            // tree is owned by `ThreadedProgram::source`.
            let key = &**body as *const ValExpr as usize;
            let body_ptr: *const ValExpr = &**body;
            let var = *var;
            let slot = var.id() as usize;
            let cext = compile_idx(extent);
            let cbody = compile_val(body);
            // The site's fastdot plan, resolved once on first
            // evaluation. The pc tier re-looks this up in a hash map per
            // served element; here the site *is* the closure, so the
            // plan lives in it. `fastdot::compile` is deterministic in
            // the body expression, so this holds exactly the value the
            // shared cache would serve.
            let plan: std::cell::OnceCell<Option<Rc<crate::fastdot::DotPlan>>> =
                std::cell::OnceCell::new();
            CVal::Dyn(Box::new(move |it| {
                let n = cext.eval(it).max(0);
                if let Some(&(_, idx)) = it.memo.iter().find(|(k, _)| *k == key) {
                    return it.serve_memo_element(idx);
                }
                if it.opts.fastdot {
                    // SAFETY: see the module docs — the body tree is
                    // kept alive by `ThreadedProgram::source`.
                    let p = plan.get_or_init(|| {
                        crate::fastdot::compile(var, unsafe { &*body_ptr }).map(Rc::new)
                    });
                    if let Some(p) = p {
                        return it.eval_dot(p, n);
                    }
                }
                let mut acc = 0.0f32;
                for k in 0..n {
                    it.slots[slot] = k;
                    acc += cbody.eval(it);
                    it.profile.flops += 1;
                }
                acc
            }))
        }
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            let cc = compile_bool(cond);
            let ct = compile_val(then);
            let co = compile_val(otherwise);
            CVal::Dyn(Box::new(move |it| {
                it.profile.branch_checks += 1;
                if cc(it) {
                    ct.eval(it)
                } else {
                    co.eval(it)
                }
            }))
        }
    }
}

// ---------------------------------------------------------------------
// Micro-ops (fused straight-line runs)
// ---------------------------------------------------------------------

/// One straight-line op of a fused run, with every index coordinate and
/// the stored value compiled.
enum MicroOp {
    Let {
        slot: usize,
        value: CIdx,
    },
    Store {
        tensor: TensorId,
        index: Vec<CIdx>,
        value: CVal,
    },
    Barrier,
}

impl MicroOp {
    #[inline]
    fn exec(&self, it: &mut Interp<'_>) {
        match self {
            MicroOp::Let { slot, value } => {
                checked_assert!(*slot < it.slots.len(), "Let slot {slot} out of range");
                let v = value.eval(it);
                it.slots[*slot] = v;
            }
            MicroOp::Store {
                tensor,
                index,
                value,
            } => {
                // The exact shape of `Interp::exec_store`/`offset`: value
                // first, then coordinates, then accounting, then the
                // write — with the per-run strides read at evaluation
                // (tensor extents may be `Nodes`/`MaxBatch`, so strides
                // are not build-time constants).
                let v = value.eval(it);
                let tensor = *tensor;
                let off = match index.as_slice() {
                    [i0] => {
                        let c0 = i0.eval(it);
                        let buf = it.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("stored tensor allocated");
                        debug_assert!(
                            c0 >= 0 && (c0 as usize) < buf.dims[0],
                            "index {c0} out of bounds for dim 0 of {:?} (tensor {tensor})",
                            buf.dims
                        );
                        c0 as usize * buf.strides[0]
                    }
                    [i0, i1] => {
                        let c0 = i0.eval(it);
                        let c1 = i1.eval(it);
                        let buf = it.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("stored tensor allocated");
                        debug_assert!(
                            c0 >= 0 && (c0 as usize) < buf.dims[0],
                            "index {c0} out of bounds for dim 0 of {:?} (tensor {tensor})",
                            buf.dims
                        );
                        debug_assert!(
                            c1 >= 0 && (c1 as usize) < buf.dims[1],
                            "index {c1} out of bounds for dim 1 of {:?} (tensor {tensor})",
                            buf.dims
                        );
                        c0 as usize * buf.strides[0] + c1 as usize * buf.strides[1]
                    }
                    index => {
                        let mut coords = [0i64; 8];
                        for (d, e) in index.iter().enumerate() {
                            coords[d] = e.eval(it);
                        }
                        let buf = it.bufs[tensor.0 as usize]
                            .as_ref()
                            .expect("stored tensor allocated");
                        let mut off = 0usize;
                        for (d, &c) in coords.iter().enumerate().take(index.len()) {
                            debug_assert!(
                                c >= 0 && (c as usize) < buf.dims[d],
                                "index {} out of bounds for dim {} of {:?} (tensor {tensor})",
                                c,
                                d,
                                buf.dims
                            );
                            off += c as usize * buf.strides[d];
                        }
                        off
                    }
                };
                #[cfg(feature = "checked")]
                it.shadow_check_store(tensor, off);
                it.record_store(tensor);
                let buf = it.bufs[tensor.0 as usize]
                    .as_mut()
                    .expect("stored tensor allocated");
                buf.data.as_mut()[off] = v;
            }
            MicroOp::Barrier => it.profile.barriers_global += 1,
        }
    }
}

// ---------------------------------------------------------------------
// Specialization
// ---------------------------------------------------------------------

/// Whether an op is straight-line (fusable into a micro-op run) as
/// opposed to control flow (always its own step).
fn is_simple(op: &Op) -> bool {
    matches!(op, Op::Let { .. } | Op::Store { .. } | Op::Barrier)
}

/// Compiles a straight-line run of ops into its micro-op list.
fn compile_run(ops: &[Op]) -> Vec<MicroOp> {
    ops.iter()
        .map(|op| match op {
            Op::Let { slot, value } => MicroOp::Let {
                slot: *slot,
                // SAFETY: `value` points into the compiled kernels
                // (verified `ForeignExpr`-clean).
                value: compile_idx(unsafe { &**value }),
            },
            Op::Store { stmt } => {
                // SAFETY: as above.
                let Stmt::Store {
                    tensor,
                    index,
                    value,
                } = (unsafe { &**stmt })
                else {
                    unreachable!("Store op holds a Store statement")
                };
                MicroOp::Store {
                    tensor: *tensor,
                    index: index.iter().map(compile_idx).collect(),
                    value: compile_val(value),
                }
            }
            Op::Barrier => MicroOp::Barrier,
            _ => unreachable!("run contains only straight-line ops"),
        })
        .collect()
}

/// The loops the specializer folds whole into single native-loop steps:
/// per loop id, `Some((enter_pc, next_pc))` — the pcs of its `LoopEnter`
/// and `LoopNext` ops — when the loop qualifies. A loop qualifies when
/// the step machinery is pure overhead for it: no wave (nothing to
/// prepare, serve or finish), no fused epilogue, no scope or width
/// bookkeeping, a straight-line body directly between enter and next
/// that no external jump lands inside, and the exit on the op after
/// `LoopNext`. Such a loop can never park (parking requires a wave), so
/// running it to completion inside one step is unobservable — except for
/// the watchdog, which the native loop still charges per back-edge.
/// Shared by [`step_layout`], [`static_targets`] and [`specialize`] so
/// the build and [`verify_threaded`]'s re-derivation always agree.
fn native_loops(plan: &Program) -> Vec<Option<(Pc, Pc)>> {
    let n = plan.ops.len();
    let mut ext_target = vec![false; n];
    for k in &plan.kernels {
        ext_target[k.entry] = true;
    }
    for op in &plan.ops {
        match op {
            Op::Branch { on_false, .. } => ext_target[*on_false] = true,
            Op::Jump(t) => ext_target[*t] = true,
            Op::BulkPass { done, .. } => ext_target[*done] = true,
            _ => {}
        }
    }
    plan.loops
        .iter()
        .enumerate()
        .map(|(id, d)| {
            if d.wave.is_some() || d.fused.is_some() || d.is_wave || d.is_node {
                return None;
            }
            let enter = plan
                .ops
                .iter()
                .position(|op| matches!(op, Op::LoopEnter(i) if *i == id))?;
            if d.body != enter + 1 {
                return None;
            }
            let mut next = d.body;
            while next < n && is_simple(&plan.ops[next]) {
                next += 1;
            }
            if next >= n || !matches!(&plan.ops[next], Op::LoopNext(i) if *i == id) {
                return None;
            }
            if d.exit != next + 1 {
                return None;
            }
            // Nothing may jump into the swallowed span: external control
            // flow would bypass the native loop, and another loop
            // claiming a boundary inside it would mean the layouts
            // disagree. (A nested loop is already impossible — the body
            // is all straight-line ops.)
            if (d.body..=next).any(|p| ext_target[p]) {
                return None;
            }
            let claimed = plan.loops.iter().enumerate().any(|(j, o)| {
                j != id
                    && (((d.body..=next).contains(&o.body) || (d.body..=next).contains(&o.exit))
                        || (o.fused.is_some() && (d.body..=next).contains(&o.fused_pc)))
            });
            if claimed {
                return None;
            }
            Some((enter, next))
        })
        .collect()
}

/// Step layout of a program: which op pcs begin a step, and the op-pc →
/// step-index translation. Shared by [`specialize`] and
/// [`verify_threaded`] so the check re-derives the exact layout the
/// build used. A step begins at every control op, every op after a
/// control op, and every jump target (a run must not hide a target in
/// its interior — landing there would skip the run's prefix) — except
/// inside a [`native_loops`] span, whose body and `LoopNext` are
/// swallowed by the `LoopEnter` step.
fn step_layout(plan: &Program) -> Vec<Option<Pc>> {
    let native = native_loops(plan);
    let n = plan.ops.len();
    let mut covered = vec![false; n];
    for &(enter, next) in native.iter().flatten() {
        covered[enter + 1..=next].fill(true);
    }
    let mut is_target = vec![false; n];
    for k in &plan.kernels {
        is_target[k.entry] = true;
    }
    for (id, d) in plan.loops.iter().enumerate() {
        if native[id].is_none() {
            is_target[d.body] = true;
        }
        is_target[d.exit] = true;
        if d.fused.is_some() {
            is_target[d.fused_pc] = true;
        }
    }
    for op in &plan.ops {
        match op {
            Op::Branch { on_false, .. } => is_target[*on_false] = true,
            Op::Jump(t) => is_target[*t] = true,
            Op::BulkPass { done, .. } => is_target[*done] = true,
            _ => {}
        }
    }
    let mut pc_map = vec![None; n];
    let mut prev_control = true;
    let mut count = 0;
    for pc in 0..n {
        if covered[pc] {
            // Swallowed into a native-loop step; the op after the span
            // (the loop's exit) starts fresh.
            prev_control = true;
            continue;
        }
        let control = !is_simple(&plan.ops[pc]);
        if prev_control || control || is_target[pc] {
            pc_map[pc] = Some(count);
            count += 1;
        }
        prev_control = control;
    }
    pc_map
}

/// The static jump targets (in step space) of the step starting at op
/// `pc` with exclusive end `end` — the source of truth both for the
/// closures' captured targets and for [`verify_threaded`]'s re-check.
fn static_targets(
    plan: &Program,
    native: &[Option<(Pc, Pc)>],
    pc_map: &[Option<Pc>],
    pc: Pc,
    end: Pc,
) -> Vec<Pc> {
    let tr = |p: Pc| pc_map[p].expect("jump target must begin a step");
    match &plan.ops[pc] {
        Op::KernelEnd => Vec::new(),
        Op::LoopEnter(id) => {
            let d = &plan.loops[*id];
            if native[*id].is_some() {
                // The whole loop runs inside this step: the only place
                // control can go next is the exit.
                return vec![tr(d.exit)];
            }
            let mut t = vec![tr(d.body), tr(d.exit)];
            if d.fused.is_some() {
                t.push(tr(d.fused_pc));
            }
            t
        }
        Op::LoopNext(id) => {
            let d = &plan.loops[*id];
            vec![tr(d.body), tr(d.exit)]
        }
        Op::FusedEpilogue => {
            // The epilogue's exit comes from the loop record's def; find
            // the loop that placed this op (lowering sets fused_pc).
            let d = plan
                .loops
                .iter()
                .find(|d| d.fused.is_some() && d.fused_pc == pc)
                .expect("FusedEpilogue placed by a fused loop");
            vec![tr(d.exit)]
        }
        Op::Branch { on_false, .. } => vec![tr(pc + 1), tr(*on_false)],
        Op::Jump(t) => vec![tr(*t)],
        Op::BulkPass { done, .. } => vec![tr(*done), tr(pc + 1)],
        Op::Let { .. } | Op::Store { .. } | Op::Barrier | Op::ScalarStmt { .. } => vec![tr(end)],
    }
}

/// Compiles a verified [`Program`] into its specialized step table. Run
/// **after** [`super::verify::verify`] passes (the closures trust the
/// invariants it established — in-range slots, owned pointers, paired
/// loops); [`verify_threaded`] then checks the produced table against
/// the program before the engine dispatches through it.
pub(crate) fn specialize(plan: &Rc<Program>) -> ThreadedProgram {
    let t0 = Instant::now();
    let n = plan.ops.len();
    let native = native_loops(plan);
    let pc_map = step_layout(plan);
    let mut steps = Vec::new();
    let mut fused_scalar_runs = 0usize;
    let mut pc = 0usize;
    while pc < n {
        debug_assert!(pc_map[pc].is_some(), "step boundary expected at {pc}");
        let op = &plan.ops[pc];
        let span = if let Op::LoopEnter(id) = op {
            native[*id]
        } else {
            None
        };
        if is_simple(op) {
            // Maximal straight-line run: everything to the next step
            // boundary fuses into one micro-op list.
            let mut end = pc + 1;
            while end < n && pc_map[end].is_none() {
                end += 1;
            }
            debug_assert!(end < n, "kernels end with KernelEnd, a control op");
            let targets = static_targets(plan, &native, &pc_map, pc, end);
            let next_t = targets[0];
            let micro = compile_run(&plan.ops[pc..end]);
            if micro.len() >= 2 {
                fused_scalar_runs += 1;
            }
            steps.push(ThreadedStep {
                run: Box::new(move |it, cur, _| {
                    for m in &micro {
                        m.exec(it);
                    }
                    cur.pc = next_t;
                    Ok(false)
                }),
                targets,
            });
            pc = end;
        } else if let Some((enter, next)) = span {
            // A whole plain loop folds into this one step: evaluate the
            // extent, then run the body micro-ops in a native `for`. A
            // line-for-line mirror of what the pc tier's
            // `op_loop_enter`/body/`op_loop_next` cycle does for a loop
            // with no wave, no fusion and no scope bookkeeping — which
            // is exactly nothing besides the iteration itself and the
            // per-back-edge watchdog charge.
            debug_assert_eq!(enter, pc, "native span starts at its LoopEnter");
            let Op::LoopEnter(id) = op else {
                unreachable!("native spans only cover LoopEnter ops")
            };
            let d = &plan.loops[*id];
            // SAFETY: see the module docs (verified pointer ownership).
            let extent = compile_idx(unsafe { &*d.extent });
            let slot = d.slot;
            let targets = static_targets(plan, &native, &pc_map, pc, next + 1);
            let exit_t = targets[0];
            let micro = compile_run(&plan.ops[d.body..next]);
            fused_scalar_runs += 1;
            steps.push(ThreadedStep {
                run: Box::new(move |it, cur, _| {
                    let n = extent.eval(it);
                    if n <= 0 {
                        cur.pc = exit_t;
                        return Ok(false);
                    }
                    checked_assert!(slot < it.slots.len(), "loop slot {slot} out of range");
                    it.slots[slot] = 0;
                    let mut i: i64 = 0;
                    loop {
                        for m in &micro {
                            m.exec(it);
                        }
                        // The back-edge: charge the watchdog once per
                        // iteration, exactly as the pc tier's `LoopNext`
                        // does, so fuel totals match.
                        if cur.fuel == 0 {
                            return Err(ExecError::Watchdog {
                                limit: cur.fuel_limit,
                            });
                        }
                        cur.fuel -= 1;
                        i += 1;
                        if i >= n {
                            break;
                        }
                        it.slots[slot] = i;
                    }
                    cur.pc = exit_t;
                    Ok(false)
                }),
                targets,
            });
            pc = next + 1;
        } else {
            let targets = static_targets(plan, &native, &pc_map, pc, pc + 1);
            let run = compile_control(plan, pc, op, &targets);
            steps.push(ThreadedStep { run, targets });
            pc += 1;
        }
    }
    let kernels = plan
        .kernels
        .iter()
        .map(|k| ThreadedKernel {
            entry: pc_map[k.entry].expect("kernel entry must begin a step"),
            launch: k.launch,
            batch_slot: k.batch_slot,
        })
        .collect();
    ThreadedProgram {
        steps,
        kernels,
        pc_map,
        fused_scalar_runs,
        specialize_ns: t0.elapsed().as_nanos() as u64,
        source: plan.source.clone(),
    }
}

/// Builds the closure of one control op, capturing exactly the state the
/// pc runtime would decode per execution. Each body is a line-for-line
/// mirror of the corresponding arm in `Interp::step_program` /
/// `op_loop_enter` / `op_loop_next` / `op_fused_epilogue` — the
/// three-way bit-identity property holds the mirrors to account.
fn compile_control(plan: &Program, pc: Pc, op: &Op, targets: &[Pc]) -> StepFn {
    match op {
        Op::KernelEnd => Box::new(move |it, cur, _| {
            it.pop_scope();
            cur.in_launch = false;
            cur.unit += 1;
            Ok(false)
        }),
        Op::Branch { cond, .. } => {
            // SAFETY: see the module docs (verified pointer ownership).
            let cond = compile_bool(unsafe { &**cond });
            let (on_true, on_false) = (targets[0], targets[1]);
            Box::new(move |it, cur, _| {
                it.profile.branch_checks += 1;
                cur.pc = if cond(it) { on_true } else { on_false };
                Ok(false)
            })
        }
        Op::Jump(_) => {
            let t = targets[0];
            Box::new(move |_, cur, _| {
                cur.pc = t;
                Ok(false)
            })
        }
        Op::BulkPass { id, .. } => {
            let bulk: Rc<BulkPlan> = plan.bulks[*id].clone();
            let (done_t, next_t) = (targets[0], targets[1]);
            Box::new(move |it, cur, _| {
                if it.opts.fastdot && it.opts.bulk && it.bulk_servable(&bulk) {
                    it.exec_bulk(&bulk);
                    cur.pc = done_t;
                } else {
                    cur.pc = next_t;
                }
                Ok(false)
            })
        }
        Op::LoopEnter(id) => {
            let d = &plan.loops[*id];
            let extent = compile_idx(unsafe { &*d.extent });
            let (slot, is_wave, is_node) = (d.slot, d.is_wave, d.is_node);
            let wave: Option<(Rc<WavePlan>, usize)> = d.wave.map(|w| {
                let wref = &plan.waves[w];
                (wref.plan.clone(), wref.for_key)
            });
            let fused: Option<(usize, Rc<FusedWave>)> =
                d.fused.map(|f| (*id, plan.fused[f].clone()));
            let (body_t, exit_t) = (targets[0], targets[1]);
            let fused_t = targets.get(2).copied();
            Box::new(move |it, cur, defer| {
                let n = extent.eval(it);
                if is_node {
                    if let Some(scope) = it.scopes.last_mut() {
                        scope.width = scope.width.max(n.max(0) as u64);
                    }
                }
                let mut activated = (0usize, 0usize);
                let mut paused = false;
                if n > 0 {
                    if let Some((wplan, for_key)) = &wave {
                        if (n as usize) < it.opts.min_wave_width {
                            it.caches.stats.narrow_waves_skipped += 1;
                        } else {
                            let deferring = defer.is_some();
                            let d = defer.as_mut().map(|(acc, req)| (&mut **acc, *req));
                            activated = it.prepare_wave(wplan, *for_key, n as usize, d);
                            paused = deferring && activated.1 > 0;
                        }
                    }
                }
                if n <= 0 {
                    cur.pc = exit_t;
                    return Ok(false);
                }
                if let Some((loop_id, fw)) = &fused {
                    if it.opts.fastdot && it.opts.bulk && it.fused_servable(fw) {
                        cur.recs.push(LoopRec::Fused {
                            id: *loop_id,
                            n: n as usize,
                            activated,
                        });
                        cur.pc = fused_t.expect("fused loop records its epilogue target");
                        return Ok(paused);
                    }
                }
                let serve_t0 = (!paused && activated.1 > 0).then(Instant::now);
                cur.recs.push(LoopRec::Iter {
                    i: 0,
                    n,
                    activated,
                    serve_t0,
                });
                if is_wave {
                    it.push_scope(true);
                }
                checked_assert!(slot < it.slots.len(), "loop slot {slot} out of range");
                it.slots[slot] = 0;
                cur.pc = body_t;
                Ok(paused)
            })
        }
        Op::LoopNext(id) => {
            let d = &plan.loops[*id];
            let (slot, is_wave) = (d.slot, d.is_wave);
            let (body_t, exit_t) = (targets[0], targets[1]);
            Box::new(move |it, cur, _| {
                // The IR's only back-edge: charge the watchdog here, as
                // the pc dispatch loop does, so fuel totals match.
                if cur.fuel == 0 {
                    return Err(ExecError::Watchdog {
                        limit: cur.fuel_limit,
                    });
                }
                cur.fuel -= 1;
                let Some(LoopRec::Iter { i, n, .. }) = cur.recs.last_mut() else {
                    unreachable!("LoopNext without its loop record")
                };
                if is_wave {
                    it.pop_scope();
                }
                *i += 1;
                if *i < *n {
                    if is_wave {
                        it.push_scope(true);
                    }
                    let at = *i;
                    it.slots[slot] = at;
                    cur.pc = body_t;
                } else {
                    let Some(LoopRec::Iter {
                        activated,
                        serve_t0,
                        ..
                    }) = cur.recs.pop()
                    else {
                        unreachable!("checked above")
                    };
                    if activated != (0, 0) {
                        it.finish_wave(activated);
                    }
                    if let Some(t0) = serve_t0 {
                        it.caches.stats.serve_ns += t0.elapsed().as_nanos() as u64;
                    }
                    cur.pc = exit_t;
                }
                Ok(false)
            })
        }
        Op::FusedEpilogue => {
            let d = plan
                .loops
                .iter()
                .find(|d| d.fused.is_some() && d.fused_pc == pc)
                .expect("FusedEpilogue placed by a fused loop");
            let fw: Rc<FusedWave> = plan.fused[d.fused.expect("fused loop def")].clone();
            let exit_t = targets[0];
            Box::new(move |it, cur, _| {
                let Some(LoopRec::Fused { n, activated, .. }) = cur.recs.pop() else {
                    unreachable!("FusedEpilogue without its loop record")
                };
                it.exec_fused_wave(&fw, n);
                if activated != (0, 0) {
                    it.finish_wave(activated);
                }
                cur.pc = exit_t;
                Ok(false)
            })
        }
        Op::ScalarStmt { stmt } => {
            let stmt = *stmt;
            let next_t = targets[0];
            Box::new(move |it, cur, _| {
                it.caches.stats.interp_stmts += 1;
                // SAFETY: see the module docs.
                it.exec_stmt(unsafe { &*stmt });
                cur.pc = next_t;
                Ok(false)
            })
        }
        Op::Let { .. } | Op::Store { .. } | Op::Barrier => {
            unreachable!("straight-line ops compile as micro-op runs")
        }
    }
}

/// Consistency check of a specialized table against its source program,
/// run after [`specialize`] and before the engine dispatches through the
/// table (the threaded half of the verify-before-run contract). The step
/// layout and every static jump target are re-derived from the program
/// and compared entry by entry, so a truncated, reordered or retargeted
/// table is rejected typed — never executed.
pub(crate) fn verify_threaded(tp: &ThreadedProgram, plan: &Program) -> Result<(), VerifyError> {
    let native = native_loops(plan);
    let pc_map = step_layout(plan);
    let expected_steps = pc_map.iter().filter(|s| s.is_some()).count();
    if tp.steps.len() != expected_steps {
        return Err(VerifyError::ThreadedLengthMismatch {
            what: "step",
            found: tp.steps.len(),
            expected: expected_steps,
        });
    }
    if tp.kernels.len() != plan.kernels.len() {
        return Err(VerifyError::ThreadedLengthMismatch {
            what: "kernel",
            found: tp.kernels.len(),
            expected: plan.kernels.len(),
        });
    }
    if tp.pc_map != pc_map {
        return Err(VerifyError::ThreadedLengthMismatch {
            what: "pc-map",
            found: tp.pc_map.iter().filter(|s| s.is_some()).count(),
            expected: expected_steps,
        });
    }
    for (i, (k, src)) in tp.kernels.iter().zip(&plan.kernels).enumerate() {
        let expected = pc_map[src.entry].expect("kernel entry begins a step");
        if k.entry != expected || k.entry >= tp.steps.len() {
            return Err(VerifyError::ThreadedEntryMismatch {
                kernel: i,
                entry: k.entry,
                expected,
            });
        }
        if k.launch != src.launch || k.batch_slot != src.batch_slot {
            return Err(VerifyError::ThreadedEntryMismatch {
                kernel: i,
                entry: k.entry,
                expected,
            });
        }
    }
    // Re-derive every step's static targets and hold the table to them.
    let mut step = 0usize;
    let mut pc = 0usize;
    let n = plan.ops.len();
    while pc < n {
        let mut end = pc + 1;
        while end < n && pc_map[end].is_none() {
            end += 1;
        }
        let expected = static_targets(plan, &native, &pc_map, pc, end);
        let found = &tp.steps[step].targets;
        if let Some(&t) = found.iter().find(|&&t| t >= tp.steps.len()) {
            return Err(VerifyError::ThreadedDanglingTarget {
                step,
                target: t,
                len: tp.steps.len(),
            });
        }
        if *found != expected {
            return Err(VerifyError::ThreadedTargetMismatch { step });
        }
        step += 1;
        pc = end;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The threaded dispatch loop
// ---------------------------------------------------------------------

impl<'a> Interp<'a> {
    /// Runs the whole launch schedule to completion through the threaded
    /// tier (the solo path — without a deferral accumulator nothing ever
    /// parks). The fuel budget is [`Interp::watchdog_fuel`], identical
    /// to the pc tier's, so watchdog behavior cannot differ between
    /// them.
    ///
    /// # Errors
    ///
    /// [`ExecError::Watchdog`] if the run exhausts its back-edge budget.
    pub(crate) fn run_threaded(&mut self) -> Result<(), ExecError> {
        let fuel = self.watchdog_fuel();
        let mut cur = PcCursor::new(self.launch_units(), fuel);
        let outcome = self.step_threaded(&mut cur, None)?;
        debug_assert_eq!(outcome, StepOutcome::Done, "solo runs never park");
        Ok(())
    }

    /// Advances this request through the specialized step table until it
    /// parks for a super-wave flush or the launch schedule completes —
    /// the threaded twin of `Interp::step_program`, sharing [`PcCursor`]
    /// so the park/resume protocol is byte-for-byte the same (a parked
    /// request is a step index plus loop records).
    ///
    /// # Errors
    ///
    /// [`ExecError::Watchdog`] if the cursor's back-edge budget runs out.
    pub(crate) fn step_threaded(
        &mut self,
        cur: &mut PcCursor,
        defer: Option<(&mut SuperWaveAcc, usize)>,
    ) -> Result<StepOutcome, ExecError> {
        let tp = self
            .threaded
            .clone()
            .expect("threaded dispatch without a specialized program");
        let mut defer = defer;
        loop {
            if !cur.in_launch {
                let Some(&(ki, b)) = cur.units.get(cur.unit) else {
                    if !cur.done {
                        cur.done = true;
                        self.finalize_run();
                    }
                    return Ok(StepOutcome::Done);
                };
                super::maybe_inject(
                    &self.caches.fault_hook,
                    super::FaultSite::Launch {
                        nodes: self.lin.num_nodes(),
                    },
                );
                let kernel = &tp.kernels[ki];
                self.cur_kernel = ki;
                self.profile.launches += 1;
                self.profile.host_api_calls += 1;
                self.push_scope(kernel.launch == LaunchPattern::PerInternalBatch);
                if let Some(bv) = kernel.batch_slot {
                    self.slots[bv] = b.expect("per-batch kernel needs a batch index");
                }
                cur.in_launch = true;
                cur.pc = kernel.entry;
            }
            checked_assert!(cur.pc < tp.steps.len(), "step pc {} out of range", cur.pc);
            if (tp.steps[cur.pc].run)(self, cur, &mut defer)? {
                return Ok(StepOutcome::Paused);
            }
        }
    }
}

//! Lowering: from kernel ASTs to the linear [`Program`].
//!
//! Two stages, both run once per engine:
//!
//! 1. **Kernel compilation** ([`CompiledKernel::compile`]): remap every
//!    `Var` to a dense slot index so the interpreter's register file is
//!    a flat array.
//! 2. **Flattening** ([`lower`]): walk each compiled body once and emit
//!    the flat op stream, resolving every wave/bulk/fused plan lookup
//!    into op operands. Control flow becomes explicit jump targets
//!    (`Branch`/`Jump`, `LoopEnter`/`LoopNext`); plan decisions that
//!    the AST walker re-discovers per execution (map lookups keyed by
//!    statement address) happen exactly once, here.
//!
//! The lowering is total over the statement grammar — `For`, `Let`,
//! `Store`, `If`, `Barrier` all flatten — so no `ScalarStmt` fallback is
//! ever emitted today ([`Program::fallback_ops`] stays 0, CI-gated).

use std::collections::HashMap;
use std::rc::Rc;

use cortex_core::expr::{BoolExpr, IdxExpr, ValExpr};
use cortex_core::ilir::{LaunchPattern, Stmt};

use super::analysis::parsafety;
use super::bulk::{BulkPlan, FusedWave};
use super::program::{KernelDef, LoopDef, Op, Pc, Program, WaveRef};
use crate::wave::WavePlan;

// ---------------------------------------------------------------------
// Kernel compilation: dense variable slots
// ---------------------------------------------------------------------

pub(crate) struct CompiledKernel {
    pub(crate) launch: LaunchPattern,
    pub(crate) batch_slot: Option<usize>,
    pub(crate) body: Vec<Stmt>,
    pub(crate) num_slots: usize,
}

#[derive(Default)]
struct SlotMap {
    map: HashMap<u32, u32>,
}

impl SlotMap {
    fn slot(&mut self, v: cortex_core::Var) -> cortex_core::Var {
        let next = self.map.len() as u32;
        let s = *self.map.entry(v.id()).or_insert(next);
        cortex_core::Var::from_raw(s)
    }
}

impl CompiledKernel {
    pub(crate) fn compile(kernel: &cortex_core::ilir::Kernel) -> Self {
        let mut slots = SlotMap::default();
        let batch_slot = kernel.batch_var.map(|v| slots.slot(v).id() as usize);
        let body = kernel
            .body
            .iter()
            .map(|s| remap_stmt(s, &mut slots))
            .collect();
        CompiledKernel {
            launch: kernel.launch,
            batch_slot,
            body,
            num_slots: slots.map.len(),
        }
    }
}

fn remap_stmt(s: &Stmt, m: &mut SlotMap) -> Stmt {
    match s {
        Stmt::For {
            var,
            extent,
            kind,
            dim,
            body,
        } => Stmt::For {
            var: m.slot(*var),
            extent: remap_idx(extent, m),
            kind: *kind,
            dim: dim.clone(),
            body: body.iter().map(|st| remap_stmt(st, m)).collect(),
        },
        Stmt::Let { var, value, body } => Stmt::Let {
            var: m.slot(*var),
            value: remap_idx(value, m),
            body: body.iter().map(|st| remap_stmt(st, m)).collect(),
        },
        Stmt::Store {
            tensor,
            index,
            value,
        } => Stmt::Store {
            tensor: *tensor,
            index: index.iter().map(|e| remap_idx(e, m)).collect(),
            value: remap_val(value, m),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: remap_bool(cond, m),
            then_branch: then_branch.iter().map(|st| remap_stmt(st, m)).collect(),
            else_branch: else_branch.iter().map(|st| remap_stmt(st, m)).collect(),
        },
        Stmt::Barrier => Stmt::Barrier,
    }
}

fn remap_idx(e: &IdxExpr, m: &mut SlotMap) -> IdxExpr {
    match e {
        IdxExpr::Const(_) | IdxExpr::Rt(_) => e.clone(),
        IdxExpr::Var(v) => IdxExpr::Var(m.slot(*v)),
        IdxExpr::Ufn(f, args) => IdxExpr::Ufn(*f, args.iter().map(|a| remap_idx(a, m)).collect()),
        IdxExpr::Bin(op, a, b) => {
            IdxExpr::Bin(*op, Box::new(remap_idx(a, m)), Box::new(remap_idx(b, m)))
        }
    }
}

fn remap_bool(e: &BoolExpr, m: &mut SlotMap) -> BoolExpr {
    match e {
        BoolExpr::Cmp(op, a, b) => BoolExpr::Cmp(*op, remap_idx(a, m), remap_idx(b, m)),
        BoolExpr::IsLeaf(a) => BoolExpr::IsLeaf(remap_idx(a, m)),
        BoolExpr::And(a, b) => {
            BoolExpr::And(Box::new(remap_bool(a, m)), Box::new(remap_bool(b, m)))
        }
        BoolExpr::Or(a, b) => BoolExpr::Or(Box::new(remap_bool(a, m)), Box::new(remap_bool(b, m))),
        BoolExpr::Not(a) => BoolExpr::Not(Box::new(remap_bool(a, m))),
    }
}

fn remap_val(e: &ValExpr, m: &mut SlotMap) -> ValExpr {
    match e {
        ValExpr::Const(_) => e.clone(),
        ValExpr::Load { tensor, index } => ValExpr::Load {
            tensor: *tensor,
            index: index.iter().map(|i| remap_idx(i, m)).collect(),
        },
        ValExpr::Unary(op, a) => ValExpr::Unary(*op, Box::new(remap_val(a, m))),
        ValExpr::Bin(op, a, b) => {
            ValExpr::Bin(*op, Box::new(remap_val(a, m)), Box::new(remap_val(b, m)))
        }
        ValExpr::Sum { var, extent, body } => ValExpr::Sum {
            var: m.slot(*var),
            extent: remap_idx(extent, m),
            body: Box::new(remap_val(body, m)),
        },
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => ValExpr::Select {
            cond: remap_bool(cond, m),
            then: Box::new(remap_val(then, m)),
            otherwise: Box::new(remap_val(otherwise, m)),
        },
    }
}

// ---------------------------------------------------------------------
// Flattening
// ---------------------------------------------------------------------

/// Lowers every compiled kernel into one flat [`Program`], resolving the
/// engine's wave/bulk/fused plans into op operands.
pub(crate) fn lower(
    compiled: &Rc<Vec<CompiledKernel>>,
    wave_plans: &HashMap<usize, Rc<WavePlan>>,
    bulk_plans: &HashMap<(usize, usize), Rc<BulkPlan>>,
    fused_waves: &HashMap<(usize, usize), Rc<FusedWave>>,
) -> Program {
    let mut lw = Lowerer {
        ops: Vec::new(),
        loops: Vec::new(),
        waves: Vec::new(),
        wave_safety: Vec::new(),
        fused: Vec::new(),
        fused_safety: Vec::new(),
        bulks: Vec::new(),
        wave_plans,
        bulk_plans,
        fused_waves,
        cur_kernel: 0,
        fallback_ops: 0,
    };
    let mut kernels = Vec::with_capacity(compiled.len());
    for (ki, kernel) in compiled.iter().enumerate() {
        lw.cur_kernel = ki;
        let entry = lw.ops.len();
        for s in &kernel.body {
            lw.lower_stmt(s);
        }
        lw.ops.push(Op::KernelEnd);
        kernels.push(KernelDef {
            entry,
            launch: kernel.launch,
            batch_slot: kernel.batch_slot,
        });
    }
    Program {
        ops: lw.ops,
        loops: lw.loops,
        waves: lw.waves,
        wave_safety: lw.wave_safety,
        fused: lw.fused,
        fused_safety: lw.fused_safety,
        bulks: lw.bulks,
        kernels,
        fallback_ops: lw.fallback_ops,
        source: compiled.clone(),
    }
}

struct Lowerer<'e> {
    ops: Vec<Op>,
    loops: Vec<LoopDef>,
    waves: Vec<WaveRef>,
    wave_safety: Vec<parsafety::ParSafety>,
    fused: Vec<Rc<FusedWave>>,
    fused_safety: Vec<parsafety::ParSafety>,
    bulks: Vec<Rc<BulkPlan>>,
    wave_plans: &'e HashMap<usize, Rc<WavePlan>>,
    bulk_plans: &'e HashMap<(usize, usize), Rc<BulkPlan>>,
    fused_waves: &'e HashMap<(usize, usize), Rc<FusedWave>>,
    cur_kernel: usize,
    fallback_ops: usize,
}

impl<'e> Lowerer<'e> {
    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For {
                var,
                extent,
                dim,
                body,
                ..
            } => {
                let addr = s as *const Stmt as usize;
                let key = (self.cur_kernel, addr);
                // A bulk-servable feature loop gets its fast path op in
                // front of the per-element loop; the runtime falls
                // through when the plan's reductions are not memo-active
                // (scalar path, per-site fallback, min-width skip).
                let bulk_at: Option<Pc> = self.bulk_plans.get(&key).map(|plan| {
                    self.bulks.push(plan.clone());
                    let at = self.ops.len();
                    self.ops.push(Op::BulkPass {
                        id: self.bulks.len() - 1,
                        done: 0, // patched below
                    });
                    at
                });

                let is_wave = matches!(dim, Some(d) if d.0 == "d_all_batches");
                let is_node = matches!(dim, Some(d) if d.0 == "d_batch");
                let wave = self.wave_plans.get(&addr).map(|plan| {
                    self.waves.push(WaveRef {
                        plan: plan.clone(),
                        for_key: addr,
                    });
                    // The static parallel-safety certificate of this
                    // wave's body, re-derived by `verify`.
                    self.wave_safety
                        .push(parsafety::certify_wave_body(*var, body));
                    self.waves.len() - 1
                });
                let fused = self.fused_waves.get(&key).map(|fw| {
                    self.fused.push(fw.clone());
                    let node = fw
                        .node_let
                        .as_ref()
                        .map(|(slot, _)| cortex_core::Var::from_raw(*slot as u32));
                    self.fused_safety.push(parsafety::certify_fused(
                        &fw.loops,
                        cortex_core::Var::from_raw(fw.n_idx_slot as u32),
                        node,
                    ));
                    self.fused.len() - 1
                });

                let loop_id = self.loops.len();
                self.loops.push(LoopDef {
                    slot: var.id() as usize,
                    extent,
                    is_wave,
                    is_node,
                    wave,
                    fused,
                    body: 0,     // patched below
                    fused_pc: 0, // patched below
                    exit: 0,     // patched below
                });
                self.ops.push(Op::LoopEnter(loop_id));
                let body_pc = self.ops.len();
                for st in body {
                    self.lower_stmt(st);
                }
                self.ops.push(Op::LoopNext(loop_id));
                let fused_pc = self.ops.len();
                if fused.is_some() {
                    self.ops.push(Op::FusedEpilogue);
                }
                let exit = self.ops.len();
                let d = &mut self.loops[loop_id];
                d.body = body_pc;
                d.fused_pc = fused_pc;
                d.exit = exit;
                if let Some(at) = bulk_at {
                    let Op::BulkPass { done, .. } = &mut self.ops[at] else {
                        unreachable!("bulk op emitted above")
                    };
                    *done = exit;
                }
            }
            Stmt::Let { var, value, body } => {
                self.ops.push(Op::Let {
                    slot: var.id() as usize,
                    value,
                });
                for st in body {
                    self.lower_stmt(st);
                }
            }
            Stmt::Store { .. } => self.ops.push(Op::Store { stmt: s }),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch_at = self.ops.len();
                self.ops.push(Op::Branch {
                    cond,
                    on_false: 0, // patched below
                });
                for st in then_branch {
                    self.lower_stmt(st);
                }
                if else_branch.is_empty() {
                    let after = self.ops.len();
                    self.patch_branch(branch_at, after);
                } else {
                    let jump_at = self.ops.len();
                    self.ops.push(Op::Jump(0)); // patched below
                    let else_pc = self.ops.len();
                    self.patch_branch(branch_at, else_pc);
                    for st in else_branch {
                        self.lower_stmt(st);
                    }
                    let after = self.ops.len();
                    let Op::Jump(t) = &mut self.ops[jump_at] else {
                        unreachable!("jump emitted above")
                    };
                    *t = after;
                }
            }
            Stmt::Barrier => self.ops.push(Op::Barrier),
        }
    }

    fn patch_branch(&mut self, at: Pc, target: Pc) {
        let Op::Branch { on_false, .. } = &mut self.ops[at] else {
            unreachable!("branch emitted above")
        };
        *on_false = target;
    }
}

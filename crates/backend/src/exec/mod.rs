//! The ILIR executor: compiles kernels to a linear plan and runs it.
//!
//! Where TVM would emit CUDA/LLVM, this executor **lowers** the ILIR to
//! a flat instruction stream and interprets that — with two properties
//! the reproduction depends on:
//!
//! 1. **Exact semantics**: results are bit-identical to what generated
//!    code would produce (validated against pure-Rust reference model
//!    implementations in `cortex-models`).
//! 2. **Complete accounting**: every launch, barrier, load, store and flop
//!    is recorded into a [`Profile`], with global-memory traffic
//!    de-duplicated per wavefront (a hardware cache would do the same
//!    within a kernel) and parameter reads counted once per program under
//!    model persistence or once per wave otherwise — the exact accounting
//!    Appendix C's roofline analysis performs.
//!
//! # Compile pipeline
//!
//! ```text
//! ILIR kernels
//!   │  [`lowering::CompiledKernel::compile`]   dense variable slots
//!   ▼
//! compiled ASTs ──▶ wave analysis  (`wave::analyze`: GEMM sites, stacking groups)
//!   │           ──▶ bulk analysis  (`bulk`: feature-loop row passes, fused epilogues)
//!   │  [`lowering::lower`]        flatten + resolve plans into operands
//!   ▼
//! [`program::Program`]            flat `Vec<Op>` with jump targets
//!   │  [`verify`]                 static checks; refuse on any finding
//!   │  [`threaded::specialize`]   const-fold operands into step closures
//!   ▼
//! [`threaded::ThreadedProgram`]   direct-threaded closure table
//!   │  [`threaded`]               closure dispatch; park = step + loop records
//!   ▼
//! outputs + exact `Profile`
//! ```
//!
//! Three runtime tiers execute the result, all bit-identical on outputs
//! and `Profile` (property-tested three ways across every model):
//!
//! * **threaded** (default): the specialized closure table — no per-op
//!   match or operand decode on the hot path.
//! * **pc** (`threaded: false`): the match-on-op dispatch loop over the
//!   `Program` ops (`run`) — the fallback when specialization is off.
//! * **interp** (`interp: true`): the pre-lowering recursive AST walk
//!   (`scalar`), kept as the bit-exactness oracle — the same
//!   cross-check pattern as `bulk: false`.

mod analysis;
mod bulk;
mod gather;
mod interp;
mod lowering;
mod program;
mod run;
mod scalar;
#[cfg(test)]
mod tests;
mod threaded;
mod verify;

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

use cortex_core::expr::TensorId;
use cortex_core::ilir::IlirProgram;
use cortex_ds::linearizer::{LinearizeError, Linearized};
use cortex_tensor::approx::NonlinearityMode;
use cortex_tensor::{kernels, Tensor};

use crate::device::{DeviceSpec, LatencyEstimate};
use crate::params::Params;
use crate::persist::{check_persistence, PersistDecision};
use crate::profile::Profile;
use crate::wave::{SuperEntry, SuperWaveAcc, WavePlan};

use bulk::{BulkPlan, FusedWave};
use gather::evict_weight_cache_lru;
use interp::{Caches, Interp};
use lowering::CompiledKernel;
use run::PcCursor;
use scalar::RunCursor;

pub use analysis::{ParSafety, SeqReason};
pub use program::PlanStats;
pub use verify::VerifyError;

/// Whether this build records every runtime access into the dynamic
/// shadow checker and asserts it against the static effect summaries
/// (the `checked` cargo feature). Default builds pay nothing.
pub fn shadow_checking_enabled() -> bool {
    cfg!(feature = "checked")
}

/// Slot/pc/bounds assertions in the pc runtime's hot loops, compiled in
/// only under the `checked` cargo feature (CI runs the suite with it
/// on; default builds pay nothing). Results are bit-identical either
/// way — the asserts observe, never steer.
#[cfg(feature = "checked")]
macro_rules! checked_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}
#[cfg(not(feature = "checked"))]
macro_rules! checked_assert {
    ($($t:tt)*) => {};
}
pub(crate) use checked_assert;

/// Why an input was refused at engine intake (see
/// [`ExecError::InvalidInput`]): an untrusted structure or binding that
/// must not reach the runtimes.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidInput {
    /// The structure has nodes with more children than the plan was
    /// lowered for — executing it would silently drop edges.
    ArityExceedsPlan {
        /// The structure's max children per node.
        found: usize,
        /// The child slots the plan's kernels address.
        plan: usize,
    },
    /// The structure has internal nodes with fewer children than the
    /// plan reads *unguarded* — an exact (Select-free) plan would chase
    /// a "no child" indirection. Guarded plans (`required == 0`) accept
    /// any arity and substitute zero for absent children.
    ArityBelowPlan {
        /// The smallest internal-node child count in the structure.
        found: usize,
        /// The child slots the plan reads without an existence guard.
        required: usize,
    },
    /// More nodes than [`ExecOptions::max_input_nodes`] allows.
    NodesOverLimit {
        /// The structure's node count.
        nodes: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// More wavefront depths than [`ExecOptions::max_input_depth`]
    /// allows.
    DepthOverLimit {
        /// The structure's wavefront (batch) count.
        depth: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// A bound parameter tensor contains NaN or infinity.
    NonFiniteParam {
        /// The parameter's name.
        name: String,
    },
}

impl std::fmt::Display for InvalidInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidInput::ArityExceedsPlan { found, plan } => {
                write!(
                    f,
                    "structure has nodes with {found} children but the plan addresses {plan}"
                )
            }
            InvalidInput::ArityBelowPlan { found, required } => {
                write!(
                    f,
                    "structure has internal nodes with {found} children but the plan \
                     reads {required} unguarded"
                )
            }
            InvalidInput::NodesOverLimit { nodes, limit } => {
                write!(
                    f,
                    "structure has {nodes} nodes, over the {limit}-node limit"
                )
            }
            InvalidInput::DepthOverLimit { depth, limit } => {
                write!(
                    f,
                    "structure has {depth} wavefronts, over the {limit} limit"
                )
            }
            InvalidInput::NonFiniteParam { name } => {
                write!(f, "parameter '{name}' contains non-finite values")
            }
        }
    }
}

/// Errors from program execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A declared parameter was not bound.
    MissingParam(String),
    /// A bound parameter's shape does not match its declaration.
    ParamShape {
        /// Parameter name.
        name: String,
        /// Declared dims.
        expected: Vec<usize>,
        /// Bound dims.
        found: Vec<usize>,
    },
    /// Building the unrolled schedule failed (e.g. unrolling a DAG).
    Unroll(LinearizeError),
    /// An untrusted input was refused at intake (before any execution
    /// state was touched) — see [`InvalidInput`].
    InvalidInput(InvalidInput),
    /// The plan-time memory estimate for this input exceeds
    /// [`ExecOptions::memory_budget`].
    OverBudget {
        /// Estimated bytes the run would allocate.
        needed: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The op-count watchdog tripped: the run executed more loop
    /// iterations than the plan-derived limit allows (a runaway loop —
    /// converted into a typed fault instead of spinning forever).
    Watchdog {
        /// The plan-derived iteration limit that was exhausted.
        limit: u64,
    },
    /// The lowered plan failed static verification — the engine refuses
    /// to run it (see [`VerifyError`]).
    Verify(VerifyError),
    /// An internal invariant was violated.
    Internal(String),
    /// A deterministic test fault raised through the engine's
    /// fault-injection hook (see [`FaultHook`]). Never produced outside
    /// fault-injection harnesses.
    Injected(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingParam(n) => write!(f, "parameter '{n}' is not bound"),
            ExecError::ParamShape {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "parameter '{name}' has shape {found:?}, expected {expected:?}"
                )
            }
            ExecError::Unroll(e) => write!(f, "unrolled schedule: {e}"),
            ExecError::InvalidInput(e) => write!(f, "invalid input: {e}"),
            ExecError::OverBudget { needed, budget } => {
                write!(
                    f,
                    "estimated footprint {needed} bytes exceeds the {budget}-byte budget"
                )
            }
            ExecError::Watchdog { limit } => {
                write!(f, "watchdog: run exceeded {limit} loop iterations")
            }
            ExecError::Verify(e) => write!(f, "plan verification failed: {e}"),
            ExecError::Internal(msg) => write!(f, "internal executor error: {msg}"),
            ExecError::Injected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<LinearizeError> for ExecError {
    fn from(e: LinearizeError) -> Self {
        ExecError::Unroll(e)
    }
}

impl From<InvalidInput> for ExecError {
    fn from(e: InvalidInput) -> Self {
        ExecError::InvalidInput(e)
    }
}

impl From<VerifyError> for ExecError {
    fn from(e: VerifyError) -> Self {
        ExecError::Verify(e)
    }
}

// ---------------------------------------------------------------------
// Fault injection (testing substrate)
// ---------------------------------------------------------------------

/// An instrumented execution site a [`FaultHook`] is consulted at.
///
/// The two sites cover the two failure shapes a serving layer must
/// contain: [`FaultSite::Launch`] fires once per kernel launch of the
/// **pc (ExecPlan) runtime only** — so an always-faulting launch hook
/// emulates a broken lowered plan whose `interp` oracle twin still works
/// (the circuit-breaker scenario) — while [`FaultSite::Gemm`] fires once
/// per wave-GEMM flush, shared by both runtimes and (under
/// [`Engine::execute_many`]) by every request parked in the super-wave,
/// so one Gemm fault takes down a whole co-batched chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// One kernel launch of the pc runtime. `nodes` is the running
    /// request's node count — a request identity that survives
    /// re-batching, letting a hook poison one specific request
    /// deterministically across chunk bisection and solo re-runs.
    Launch {
        /// Node count of the request entering the launch.
        nodes: usize,
    },
    /// One wave-GEMM flush over `rows` gathered rows (possibly merged
    /// across every request of a batch).
    Gemm {
        /// Total row count of the (super-)wave GEMM.
        rows: usize,
    },
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::Launch { nodes } => write!(f, "launch(nodes={nodes})"),
            FaultSite::Gemm { rows } => write!(f, "gemm(rows={rows})"),
        }
    }
}

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The engine call returns `Err(`[`ExecError::Injected`]`)` — the
    /// typed-error failure shape.
    Err,
    /// The engine panics (payload [`InjectedPanic`]), as a genuine
    /// executor bug would — the panic-containment failure shape.
    Panic,
}

/// Panic payload carrying a [`FaultAction::Err`] injection out of the
/// run. Caught at the [`Engine::execute`]/[`Engine::execute_many`]
/// boundary (only when a hook is installed) and converted into the
/// typed `Err` return; it never escapes the engine.
pub struct InjectedFault(pub ExecError);

/// Panic payload of [`FaultAction::Panic`]. Deliberately **not** caught
/// by the engine: it unwinds out of the engine call exactly like a real
/// executor panic, for callers' panic containment to exercise.
pub struct InjectedPanic(pub FaultSite);

/// A deterministic fault-injection decision function, consulted at every
/// [`FaultSite`] occurrence. Installed with [`Engine::set_fault_hook`];
/// `None` (the default) costs one branch per site. Shared `Rc` so
/// harnesses can keep counters on the other handle.
pub type FaultHook = Rc<RefCell<dyn FnMut(FaultSite) -> Option<FaultAction>>>;

/// Consults the hook at `site` and raises the chosen fault, if any.
///
/// The hook borrow is released *before* the panic so a caught unwind
/// leaves the hook reusable.
pub(crate) fn maybe_inject(hook: &Option<FaultHook>, site: FaultSite) {
    let Some(h) = hook else { return };
    let action = (h.borrow_mut())(site);
    match action {
        None => {}
        Some(FaultAction::Err) => {
            std::panic::panic_any(InjectedFault(ExecError::Injected(site.to_string())))
        }
        Some(FaultAction::Panic) => std::panic::panic_any(InjectedPanic(site)),
    }
}

/// One request's raw execution result: output tensors by id plus the
/// exact counters ([`Engine::execute`]'s return shape, also produced
/// per request by [`Engine::execute_many`]).
pub type RunOutput = (HashMap<TensorId, Tensor>, Profile);

/// The result of running a lowered program on a device model.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Output tensors by id (recursion results and marked outputs).
    pub outputs: HashMap<TensorId, Tensor>,
    /// Execution counters.
    pub profile: Profile,
    /// Device-model latency estimate.
    pub latency: LatencyEstimate,
    /// Persistence decision that was in effect.
    pub persist: PersistDecision,
}

/// Runs `program` on the linearized input with the given parameters and
/// device model.
///
/// # Errors
///
/// Returns [`ExecError`] for unbound/ill-shaped parameters or invalid
/// unrolled schedules.
pub fn run(
    program: &IlirProgram,
    lin: &Linearized,
    params: &Params,
    device: &DeviceSpec,
) -> Result<RunResult, ExecError> {
    Engine::new(program).run(lin, params, device)
}

/// Executes without a device model, returning outputs and raw counters.
///
/// # Errors
///
/// See [`run`].
pub fn execute(
    program: &IlirProgram,
    lin: &Linearized,
    params: &Params,
    persist_active: bool,
) -> Result<(HashMap<TensorId, Tensor>, Profile), ExecError> {
    Engine::new(program).execute(lin, params, persist_active)
}

// ---------------------------------------------------------------------
// Options and stats
// ---------------------------------------------------------------------

/// Default for [`ExecOptions::min_wave_width`]: waves narrower than this
/// skip the gather/pack phase and run on the scalar fastdot path.
/// Results and `Profile` are identical either way; this is purely a
/// latency tuning knob.
///
/// Measured with the `tune_wave_width` sweep (single-core x86, h=256):
/// gate stacking makes even width-1 waves profitable — one stacked GEMM
/// replaces `h` per-element stream resolutions — so the default batches
/// everything (`seqlstm_h256_bs1` is 23 ms batched vs 36 ms skipped;
/// thresholds ≥2 only ever lose). Raise this on hardware where the
/// gather/pack phase is comparatively more expensive.
pub const MIN_WAVE_WIDTH: usize = 1;

/// Which executor paths are enabled.
///
/// All configurations compute identical results (a property test
/// asserts agreement on random programs); they differ in speed and serve
/// as each other's cross-checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Run recognized reductions as tight strided loops
    /// ([`crate::fastdot::DotPlan`]). With this off, every `Sum` goes
    /// through the generic interpreter.
    pub fastdot: bool,
    /// Execute recognized reduction *waves* as packed GEMMs (the batched
    /// wavefront engine).
    pub wave_gemm: bool,
    /// Stack compatible sites of a wave into one GEMM per group (shared
    /// gathered rows → vertically stacked weights; shared weight →
    /// row-stacked gathers). With this off every site runs its own GEMM
    /// (the pre-stacking path, kept as a cross-check).
    pub gate_stacking: bool,
    /// Waves narrower than this many rows stay on the scalar fastdot
    /// path ([`MIN_WAVE_WIDTH`]).
    pub min_wave_width: usize,
    /// Serve store loops in bulk (strided row passes, fused whole-wave
    /// epilogues) instead of interpreting them per element. Results are
    /// **bit-identical** either way (in `Exact` nonlinearity mode) and
    /// the `Profile` counters are exactly equal; this switch exists as
    /// the cross-check for that claim and as a diagnostic.
    pub bulk: bool,
    /// Run the legacy AST-walking interpreter instead of the lowered
    /// linear plan. Outputs and `Profile`s are **bit-identical** to the
    /// pc runtime (property-tested across every model, solo and
    /// batched); this switch is the lowering's correctness oracle and a
    /// diagnostic, exactly like `bulk: false` is for bulk serving.
    /// Takes precedence over [`ExecOptions::threaded`].
    pub interp: bool,
    /// Dispatch through the direct-threaded tier: the verified plan is
    /// specialized at engine build into a flat table of monomorphized
    /// step closures with loop bounds, slots and jump targets
    /// const-folded into each closure's captured state, and adjacent
    /// straight-line ops fused into single steps (see
    /// `exec::threaded`). On by default; turning it off falls back to
    /// the pc dispatch loop. Outputs and `Profile`s are
    /// **bit-identical** across the threaded, pc and interp tiers
    /// (property-tested three ways) — this knob trades specialization
    /// time (`ExecStats::specialize_ns`, once per build) for per-op
    /// dispatch on the hot path, and exists as the tier's cross-check
    /// and diagnostic.
    pub threaded: bool,
    /// Which `tanh`/`sigmoid` implementation the executor applies — the
    /// paper's App. A.5 schedule choice, exposed as a per-engine knob
    /// (TVM-style: exact vs approximate nonlinearities are a scheduling
    /// decision, not a model property).
    ///
    /// [`Exact`](NonlinearityMode::Exact) (the default) uses `libm` and
    /// keeps every executor configuration bit-identical.
    /// [`Rational`](NonlinearityMode::Rational) substitutes the
    /// branch-free rational approximations — SIMD-vectorized over bulk
    /// feature rows via `cortex_tensor::simd` — with end-to-end error
    /// ≤ 1e-4 against the exact results (property-tested). `Profile`
    /// counters are unaffected: the modes differ in arithmetic, never in
    /// accounting. A program whose schedule already requests `Rational`
    /// keeps it regardless of this option.
    pub nonlinearity: NonlinearityMode,
    /// Refuse runs whose plan-time memory estimate
    /// ([`Engine::footprint`]) exceeds this many bytes
    /// ([`ExecError::OverBudget`]). `None` (the default) admits
    /// everything. Enforced at admission only — accepted runs pay no
    /// per-op cost.
    pub memory_budget: Option<u64>,
    /// Refuse inputs with more nodes than this
    /// ([`InvalidInput::NodesOverLimit`]). `None` admits any size.
    pub max_input_nodes: Option<usize>,
    /// Refuse inputs with more wavefront depths (height batches) than
    /// this ([`InvalidInput::DepthOverLimit`]). `None` admits any depth.
    pub max_input_depth: Option<usize>,
    /// Override the pc runtime's op-count watchdog budget (back-edges
    /// per run before [`ExecError::Watchdog`]). `None` (the default)
    /// derives a generous budget from plan size and input extents —
    /// legitimate runs never approach it. The interp oracle carries no
    /// watchdog: it is a diagnostic, never an admission path.
    pub watchdog_fuel: Option<u64>,
    /// Run the compile-time dataflow optimizer (dead-`Let` elimination
    /// and register-slot coalescing, `analysis::liveness`) over the
    /// compiled kernels before analysis and lowering. Outputs and
    /// `Profile`s are **bit-identical** either way (property-tested);
    /// the switch exists as that claim's cross-check and a diagnostic.
    pub optimize: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            fastdot: true,
            wave_gemm: true,
            gate_stacking: true,
            min_wave_width: MIN_WAVE_WIDTH,
            bulk: true,
            interp: false,
            threaded: true,
            nonlinearity: NonlinearityMode::Exact,
            memory_budget: None,
            max_input_nodes: None,
            max_input_depth: None,
            watchdog_fuel: None,
            optimize: true,
        }
    }
}

impl ExecOptions {
    /// The generic interpreter: no reduction fast paths at all.
    pub fn generic() -> Self {
        ExecOptions {
            fastdot: false,
            wave_gemm: false,
            gate_stacking: false,
            min_wave_width: 0,
            bulk: false,
            ..ExecOptions::default()
        }
    }

    /// The scalar fast path: per-element strided dots, no wave batching.
    pub fn scalar() -> Self {
        ExecOptions {
            wave_gemm: false,
            gate_stacking: false,
            min_wave_width: 0,
            ..ExecOptions::default()
        }
    }

    /// The default batched engine with the rational-nonlinearity
    /// epilogue (App. A.5) enabled.
    pub fn rational() -> Self {
        ExecOptions {
            nonlinearity: NonlinearityMode::Rational,
            ..ExecOptions::default()
        }
    }

    /// The batched engine with gate stacking disabled: one GEMM per site
    /// per wave, exactly the pre-stacking executor.
    pub fn unstacked() -> Self {
        ExecOptions {
            gate_stacking: false,
            ..ExecOptions::default()
        }
    }

    /// The AST-walking oracle: identical semantics to the lowered plan
    /// runtime, re-dispatched per statement instead of per op.
    pub fn interpreted() -> Self {
        ExecOptions {
            interp: true,
            ..ExecOptions::default()
        }
    }
}

/// Diagnostic counters of the batched wavefront engine, reset on every
/// [`Engine::execute`]. Unlike [`Profile`] these describe the *executor
/// strategy* (how many GEMMs served the run, how much stacking engaged),
/// not the modeled device work — the scalar and batched paths
/// intentionally report different [`ExecStats`] while their `Profile`s
/// are identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Wave GEMM launches.
    pub wave_gemms: u64,
    /// Total rows across all wave GEMMs.
    pub gemm_rows: u64,
    /// Waves that ran the batched path.
    pub waves_batched: u64,
    /// Reduction sites served from wave GEMMs.
    pub sites_batched: u64,
    /// Multi-site groups executed as one stacked GEMM.
    pub stacked_groups: u64,
    /// Sites that shared a stacked GEMM (members of the above).
    pub stacked_sites: u64,
    /// Waves skipped by the min-width heuristic.
    pub narrow_waves_skipped: u64,
    /// Sites that failed a runtime check (weight window) and fell back
    /// to the scalar path.
    pub fallback_sites: u64,
    /// Stacked-weight matrices (re)packed: 0 in the steady state of a
    /// serving engine, whose packs persist per `(model, params
    /// generation)` across runs and across a batch's requests.
    pub weight_packs: u64,
    /// Merged super-wave GEMMs (one GEMM serving the same wave depth of
    /// several queued requests) executed by [`Engine::execute_many`].
    pub super_gemms: u64,
    /// Rows across merged super-wave GEMMs.
    pub super_gemm_rows: u64,
    /// Sum over merged GEMMs of the number of requests each served (so
    /// `super_gemm_requests / super_gemms` is the mean merge width).
    pub super_gemm_requests: u64,
    /// Waves whose whole body ran as the fused bulk epilogue (one
    /// loop-interchanged row pass per body statement instead of
    /// `wave_len` per-node body walks).
    pub fused_waves: u64,
    /// Wall-clock nanoseconds spent in **fused wave** epilogue passes —
    /// the post-GEMM serve/nonlinearity cost the `Rational` mode
    /// targets. Timed at wave granularity only: per-node bulk loops
    /// outside fused waves are not counted (a clock read per row pass
    /// would distort both the metric and the path).
    pub epilogue_ns: u64,
    /// Wall-clock nanoseconds in the wave gather phase (weight packing +
    /// operand-row resolution), timed per stacking group.
    pub gather_ns: u64,
    /// Wall-clock nanoseconds in wave GEMM kernels (own launches and
    /// super-wave flushes).
    pub gemm_ns: u64,
    /// Wall-clock nanoseconds serving a wave's per-element epilogue
    /// (memo hits, bulk row passes) when the body does **not** fuse.
    /// Timed at wave granularity by the pc runtime on solo runs only:
    /// under `execute_many` a parked wave would count other requests'
    /// wall time into its own phase, and the `interp: true` oracle
    /// lacks the loop bracket.
    pub serve_ns: u64,
    /// Statements executed through the AST-walk escape hatch of the pc
    /// runtime (`Op::ScalarStmt`). Always 0 today: the lowering is
    /// total, and CI gates it.
    pub interp_stmts: u64,
    /// Dead `Let` evaluations the dataflow optimizer removed at compile
    /// time (0 with `optimize: false`). Compile-time facts — these four
    /// and the reason histogram are seeded into every run's stats so
    /// one `stats()` read describes the engine end to end.
    pub dead_ops_eliminated: u64,
    /// Register slots saved by liveness-based coalescing.
    pub slots_coalesced: u64,
    /// Wave bodies (plain and fused) carrying a
    /// [`ParSafety::RowDisjoint`] certificate: their `d_batch`
    /// iterations are statically race-free.
    pub par_safe_waves: u64,
    /// Wave bodies certified [`ParSafety::Sequential`] — must not be
    /// dispatched concurrently.
    pub par_unsafe_waves: u64,
    /// `par_unsafe_waves` split by [`SeqReason`], indexed by
    /// [`SeqReason::index`].
    pub par_unsafe_by_reason: [u64; 6],
    /// Dynamic shadow-checker assertions executed (0 unless the
    /// `checked` feature is on — see [`shadow_checking_enabled`]).
    pub shadow_checks: u64,
    /// Steps in the specialized direct-threaded dispatch table (0 with
    /// `threaded: false` — the engine is dispatching per op). Like the
    /// optimizer counters, a compile-time fact seeded into every run.
    pub threaded_ops: u64,
    /// Runs of ≥ 2 adjacent straight-line ops the specializer fused
    /// into single closures (0 with `threaded: false`).
    pub fused_scalar_runs: u64,
    /// Wall-clock nanoseconds the specializer took at engine build (0
    /// with `threaded: false`).
    pub specialize_ns: u64,
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// The engine-lifetime compile artifacts shared by every interpreter:
/// compiled kernels, the analysis plans keyed by their statement
/// addresses, and the lowered linear program.
#[derive(Clone)]
pub(crate) struct SharedPlans {
    pub(crate) compiled: Rc<Vec<CompiledKernel>>,
    pub(crate) wave_plans: Rc<HashMap<usize, Rc<WavePlan>>>,
    /// Bulk feature-loop plans, compiled **once per engine** from its
    /// own kernels and keyed by `(kernel index, For statement address)`
    /// — the kernel index makes the key self-describing and collision
    /// -free by construction: there is no runtime insertion, so a key
    /// can never outlive or alias the statement it was built from.
    pub(crate) bulk_plans: Rc<HashMap<(usize, usize), Rc<BulkPlan>>>,
    /// Fused whole-wave epilogues: parallel `d_batch` loops whose whole
    /// body bulk-serves, keyed like `bulk_plans`.
    pub(crate) fused_waves: Rc<HashMap<(usize, usize), Rc<FusedWave>>>,
    /// Addresses of statements whose subtree contains a planned wave
    /// loop — the only paths the oracle's step machine must walk
    /// frame-by-frame; everything else executes atomically there.
    pub(crate) wave_ancestors: Rc<HashSet<usize>>,
    /// The lowered linear instruction stream (see [`program`]).
    pub(crate) plan: Rc<program::Program>,
    /// The plan specialized into direct-threaded closure code — `Some`
    /// iff [`ExecOptions::threaded`] is on and the plan (then the
    /// specialized table) passed verification. Attached *after*
    /// [`build_plans`] by [`Engine::attach_threaded`], so
    /// specialization always follows static verification.
    pub(crate) threaded: Option<Rc<threaded::ThreadedProgram>>,
}

/// Whether a resumable step suspended or finished the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Parked at a planned wave loop; pending super-wave GEMMs must
    /// flush (and install) before the next step.
    Paused,
    /// The launch schedule completed and post-run accounting ran.
    Done,
}

/// A reusable execution engine for one lowered program.
///
/// Compiling kernels (dense slot remapping), analyzing wave plans,
/// pattern-matching reduction bodies, and lowering everything to the
/// linear `program::Program` are all done **once** here and then
/// reused by every run. Within a run, packed weight matrices and
/// per-site scratch buffers are shared across all waves and kernel
/// launches; weights are re-packed at the start of each run (parameter
/// bindings may change between runs) while scratch buffers persist. Use
/// this instead of the free [`execute`] function when running the same
/// program many times (benchmarks, serving loops):
///
/// ```ignore
/// let mut engine = Engine::new(&program);
/// for lin in inputs {
///     let (outputs, profile) = engine.execute(&lin, &params, true)?;
/// }
/// ```
pub struct Engine<'p> {
    program: &'p IlirProgram,
    opts: ExecOptions,
    shared: SharedPlans,
    plan_stats: PlanStats,
    max_slots: usize,
    caches: Caches,
    /// Shared parameter arena: one read-only allocation per `Param`
    /// tensor, bound once per `(model, params generation)` and shared
    /// by every run and every request of a batch (each interpreter's
    /// `Param` buffers are `Rc` views of these).
    param_arena: HashMap<u32, Rc<Vec<f32>>>,
    /// Recycled owned-buffer allocations: [`Interp::finish`] returns the
    /// non-output buffers of a completed run here and the next run's
    /// [`Interp::new`] reuses any with sufficient capacity, so
    /// steady-state serving allocates (almost) nothing per run. Buffers
    /// are re-zeroed on reuse — pooling is invisible to execution.
    buf_pool: Vec<Vec<f32>>,
    /// The `Params::generation` the packed-weight cache and parameter
    /// arena were built against; a different generation invalidates
    /// both.
    params_gen: Option<u64>,
    /// Static verification verdict of the lowered plan, refreshed on
    /// every [`build_plans`] (fresh build and `set_options` rebuild).
    /// `Err` makes every execute call refuse with
    /// [`ExecError::Verify`].
    verified: Result<(), VerifyError>,
    /// Child-arity bounds the plan's kernels address (`max` over every
    /// `Ufn::Child(k)` read, `required` over the unguarded ones); wider
    /// input structures — and, for exact plans, narrower internal
    /// nodes — are refused at intake.
    plan_arity: verify::ArityBounds,
    /// The `Params::generation` most recently proven finite — parameter
    /// validation runs once per binding state, not once per run.
    params_validated: Option<u64>,
}

/// Packed-weight cache eviction bound: a long-lived serving engine
/// re-packs (cheap, amortized) rather than growing without limit when a
/// program produces more distinct stacked-weight windows than this.
const WEIGHT_CACHE_CAP: usize = 64;

/// Builds every per-engine compile artifact for `opts`: compiled-kernel
/// analyses (wave plans honor `gate_stacking`/`wave_gemm`) plus the
/// lowered program with those plans resolved into operands.
fn build_plans(compiled: Rc<Vec<CompiledKernel>>, opts: ExecOptions) -> (SharedPlans, PlanStats) {
    let wave_plans: Rc<HashMap<usize, Rc<WavePlan>>> = Rc::new(if opts.wave_gemm {
        let bodies: Vec<&[cortex_core::ilir::Stmt]> =
            compiled.iter().map(|k| k.body.as_slice()).collect();
        crate::wave::analyze(&bodies, opts.gate_stacking)
            .into_iter()
            .map(|(k, v)| (k, Rc::new(v)))
            .collect()
    } else {
        HashMap::new()
    });
    let mut wave_ancestors = HashSet::new();
    for kernel in compiled.iter() {
        for stmt in &kernel.body {
            interp::collect_wave_ancestors(stmt, &wave_plans, &mut wave_ancestors);
        }
    }
    // Bulk feature-loop plans and fused wave epilogues are purely
    // syntactic: compile them once here, per `(kernel, statement)`,
    // instead of caching per run.
    let mut bulk_plans = HashMap::new();
    for (ki, kernel) in compiled.iter().enumerate() {
        for stmt in &kernel.body {
            bulk::collect_bulk_plans(stmt, ki, &mut bulk_plans);
        }
    }
    let mut fused_waves = HashMap::new();
    for (ki, kernel) in compiled.iter().enumerate() {
        for stmt in &kernel.body {
            bulk::collect_fused_waves(stmt, ki, &bulk_plans, &mut fused_waves);
        }
    }
    let t0 = Instant::now();
    let plan = lowering::lower(&compiled, &wave_plans, &bulk_plans, &fused_waves);
    let lower_ns = t0.elapsed().as_nanos() as u64;
    // The lowering certified every wave body it attached a plan to;
    // count the verdicts here (the caller fills in the optimizer pair,
    // which is per-compile, not per-lowering).
    let par_safe_waves = plan
        .wave_safety
        .iter()
        .chain(&plan.fused_safety)
        .filter(|c| matches!(c, ParSafety::RowDisjoint))
        .count();
    let par_unsafe_waves = plan.wave_safety.len() + plan.fused_safety.len() - par_safe_waves;
    let stats = PlanStats {
        plan_ops: plan.ops.len(),
        interp_fallback_stmts: plan.fallback_ops,
        lower_ns,
        dead_ops_eliminated: 0,
        slots_coalesced: 0,
        par_safe_waves,
        par_unsafe_waves,
        threaded_ops: 0,
        fused_scalar_runs: 0,
        specialize_ns: 0,
    };
    (
        SharedPlans {
            compiled,
            wave_plans,
            bulk_plans: Rc::new(bulk_plans),
            fused_waves: Rc::new(fused_waves),
            wave_ancestors: Rc::new(wave_ancestors),
            plan: Rc::new(plan),
            threaded: None,
        },
        stats,
    )
}

/// Compiles the program's kernels and, under `opts.optimize`, runs the
/// dataflow optimizer over them — the shared front half of
/// [`Engine::with_options`] and of a `set_options` optimizer toggle.
fn compile_kernels(
    program: &IlirProgram,
    opts: ExecOptions,
) -> (Rc<Vec<CompiledKernel>>, analysis::liveness::OptStats) {
    let compiled: Vec<CompiledKernel> = program
        .kernels
        .iter()
        .map(CompiledKernel::compile)
        .collect();
    let (compiled, opt_stats) = if opts.optimize {
        analysis::liveness::optimize_kernels(compiled)
    } else {
        (compiled, analysis::liveness::OptStats::default())
    };
    (Rc::new(compiled), opt_stats)
}

impl<'p> Engine<'p> {
    /// Builds an engine with the default options (all fast paths on).
    pub fn new(program: &'p IlirProgram) -> Self {
        Engine::with_options(program, ExecOptions::default())
    }

    /// Builds an engine with explicit executor options.
    pub fn with_options(program: &'p IlirProgram, opts: ExecOptions) -> Self {
        let (compiled, opt_stats) = compile_kernels(program, opts);
        let max_slots = compiled.iter().map(|k| k.num_slots).max().unwrap_or(0);
        let plan_arity = verify::plan_arity_bounds(&compiled);
        let (shared, mut plan_stats) = build_plans(compiled, opts);
        plan_stats.dead_ops_eliminated = opt_stats.dead_lets;
        plan_stats.slots_coalesced = opt_stats.slots_coalesced;
        let verified = verify::verify(&shared.plan);
        debug_assert!(verified.is_ok(), "lowering emitted an invalid plan");
        let mut engine = Engine {
            program,
            opts,
            shared,
            plan_stats,
            max_slots,
            caches: Caches::default(),
            param_arena: HashMap::new(),
            buf_pool: Vec::new(),
            params_gen: None,
            verified,
            plan_arity,
            params_validated: None,
        };
        engine.attach_threaded();
        engine
    }

    /// (Re)builds the direct-threaded specialization of the current
    /// plan: the verify-before-specialize half of the contract (nothing
    /// specializes off an unverified plan), plus the post-build table
    /// consistency check (a specialized table that disagrees with its
    /// program demotes the engine to refusing runs, typed — it is never
    /// dispatched through). With `threaded: false` the specialization is
    /// dropped and the engine dispatches through the pc tier.
    fn attach_threaded(&mut self) {
        self.shared.threaded = None;
        self.plan_stats.threaded_ops = 0;
        self.plan_stats.fused_scalar_runs = 0;
        self.plan_stats.specialize_ns = 0;
        if !self.opts.threaded || self.verified.is_err() {
            return;
        }
        let tp = threaded::specialize(&self.shared.plan);
        match threaded::verify_threaded(&tp, &self.shared.plan) {
            Ok(()) => {
                self.plan_stats.threaded_ops = tp.steps.len();
                self.plan_stats.fused_scalar_runs = tp.fused_scalar_runs;
                self.plan_stats.specialize_ns = tp.specialize_ns;
                self.shared.threaded = Some(Rc::new(tp));
            }
            Err(e) => self.verified = Err(e),
        }
    }

    /// The options this engine was built with.
    pub fn options(&self) -> ExecOptions {
        self.opts
    }

    /// The program this engine serves — lets owners (a serving front)
    /// rebuild an equivalent engine after containing a panic, without
    /// holding the program reference separately.
    pub fn program(&self) -> &'p IlirProgram {
        self.program
    }

    /// Installs (or removes) the deterministic fault-injection hook.
    /// With a hook installed, [`Engine::execute`]/[`Engine::execute_many`]
    /// run guarded: a [`FaultAction::Err`] injection surfaces as a typed
    /// `Err(`[`ExecError::Injected`]`)` return with the engine's caches
    /// restored to a coherent (cold) state, while a
    /// [`FaultAction::Panic`] injection — and any genuine panic — still
    /// unwinds out for the caller's containment to handle.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.caches.fault_hook = hook;
    }

    /// The installed fault-injection hook, if any (cloned handle).
    pub fn fault_hook(&self) -> Option<FaultHook> {
        self.caches.fault_hook.clone()
    }

    /// Runs `f` under the fault-injection guard: with no hook installed
    /// this is a plain call (the production path — no `catch_unwind` in
    /// the way of real panics); with a hook, typed [`InjectedFault`]
    /// unwinds convert to `Err` and every caught unwind first resets the
    /// engine's caches, which a mid-step panic leaves swapped into a
    /// dropped interpreter (see `run_many_cooperative`).
    fn guarded<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ExecError>,
    ) -> Result<T, ExecError> {
        if self.caches.fault_hook.is_none() {
            return f(self);
        }
        let hook = self.caches.fault_hook.clone();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self))) {
            Ok(r) => r,
            Err(payload) => {
                self.caches = Caches {
                    fault_hook: hook,
                    ..Caches::default()
                };
                match payload.downcast::<InjectedFault>() {
                    Ok(injected) => Err(injected.0),
                    Err(other) => std::panic::resume_unwind(other),
                }
            }
        }
    }

    /// Reconfigures a live engine, invalidating exactly the compiled
    /// state the change can stale:
    ///
    /// * `optimize` changes the **compiled kernels** themselves, so the
    ///   kernels recompile from the source program and everything
    ///   downstream (analyses, lowering, caches) rebuilds with them.
    /// * `wave_gemm` / `gate_stacking` change the **lowering** (which
    ///   loops are waves, how sites group, what the plan ops reference),
    ///   so the analyses and the linear program are rebuilt and every
    ///   grouping-shaped cache (stacked weight packs, group scratch,
    ///   reduction plans) is dropped — a toggled engine behaves exactly
    ///   like one freshly built with the new options (regression-tested
    ///   per knob).
    /// * `threaded` changes the **dispatch table**: flipping it
    ///   re-specializes (or drops) the direct-threaded closure program
    ///   against the existing plan and drops the grouping-shaped caches,
    ///   so a toggled engine is indistinguishable from a fresh build
    ///   (regression-tested like the lowering knobs). A lowering rebuild
    ///   re-specializes implicitly — the table is compiled from the new
    ///   plan.
    /// * `bulk` / `fastdot` / `min_wave_width` / `interp` /
    ///   `nonlinearity` are pure runtime dispatch: no compiled state
    ///   depends on them, nothing invalidates.
    ///
    /// The parameter arena and packed-weight cache remain keyed on
    /// `(model, params generation)` independently of all knobs.
    pub fn set_options(&mut self, opts: ExecOptions) {
        if opts == self.opts {
            return;
        }
        let optimize_changed = opts.optimize != self.opts.optimize;
        let lowering_changed = optimize_changed
            || opts.wave_gemm != self.opts.wave_gemm
            || opts.gate_stacking != self.opts.gate_stacking;
        let threaded_changed = opts.threaded != self.opts.threaded;
        self.opts = opts;
        if lowering_changed {
            let (compiled, dead, coalesced) = if optimize_changed {
                let (compiled, opt_stats) = compile_kernels(self.program, opts);
                self.max_slots = compiled.iter().map(|k| k.num_slots).max().unwrap_or(0);
                self.plan_arity = verify::plan_arity_bounds(&compiled);
                (compiled, opt_stats.dead_lets, opt_stats.slots_coalesced)
            } else {
                (
                    self.shared.compiled.clone(),
                    self.plan_stats.dead_ops_eliminated,
                    self.plan_stats.slots_coalesced,
                )
            };
            let (shared, mut plan_stats) = build_plans(compiled, opts);
            plan_stats.dead_ops_eliminated = dead;
            plan_stats.slots_coalesced = coalesced;
            self.shared = shared;
            self.plan_stats = plan_stats;
            // Re-verify: a rebuilt plan passes the same static checks a
            // fresh build does before any run is admitted against it —
            // and only then re-specializes the threaded dispatch table
            // from the new plan.
            self.verified = verify::verify(&self.shared.plan);
            debug_assert!(self.verified.is_ok(), "rebuild emitted an invalid plan");
            self.attach_threaded();
            // Stacked-weight packs and group scratch are shaped by the
            // previous grouping; reduction plans are keyed by addresses
            // that remain valid but may now be wave-served — drop all
            // three so the engine is indistinguishable from a fresh
            // build with these options.
            self.caches.weight_cache.clear();
            self.caches.group_bufs.clear();
            self.caches.plan_cache.clear();
        } else if threaded_changed {
            // Same plan, different dispatch table: re-specialize (or
            // drop) the closure program and drop the run caches, so the
            // toggled engine matches a fresh build bit for bit.
            self.attach_threaded();
            self.caches.weight_cache.clear();
            self.caches.group_bufs.clear();
            self.caches.plan_cache.clear();
        }
    }

    /// Number of `d_batch` loops that will execute as batched GEMM waves.
    pub fn num_wave_plans(&self) -> usize {
        self.shared.wave_plans.len()
    }

    /// The static verification verdict of the engine's lowered plan
    /// (recomputed after every `set_options` rebuild). `Err` means every
    /// execute call refuses with [`ExecError::Verify`].
    pub fn verified(&self) -> Result<(), VerifyError> {
        self.verified.clone()
    }

    /// Child slots the plan's kernels address: inputs whose
    /// `max_children` exceeds this are refused at intake
    /// ([`InvalidInput::ArityExceedsPlan`]); narrower inputs resolve the
    /// unaddressed slots to "no child".
    pub fn plan_arity(&self) -> usize {
        self.plan_arity.max
    }

    /// Child slots the plan reads *without* an existence guard (a
    /// `Select` on `NumChildren`): internal nodes with fewer children
    /// are refused at intake ([`InvalidInput::ArityBelowPlan`]), because
    /// an exact plan would chase a "no child" indirection for them. 0
    /// means every child read is guarded and any arity is admissible.
    pub fn plan_required_arity(&self) -> usize {
        self.plan_arity.required
    }

    /// Plan-time estimate (bytes) of what executing `lin` will allocate:
    /// declared tensors at this input's extents, wave gather/pack
    /// scratch (gathered rows, packed weights, group outputs at the
    /// widest batch), and the linearized child arrays. An *estimate* —
    /// upper-bounds steady-state allocation shape, not a byte-exact
    /// accounting — enforced against [`ExecOptions::memory_budget`] at
    /// admission.
    pub fn footprint(&self, lin: &Linearized) -> u64 {
        let num_nodes = lin.num_nodes();
        let max_batch = lin
            .internal_batches()
            .iter()
            .map(|b| b.len())
            .chain([lin.leaf_batch().len()])
            .max()
            .unwrap_or(1)
            .max(1);
        let mut bytes: u64 = 0;
        for t in self.program.declared_tensors() {
            bytes += t.len(num_nodes, max_batch) as u64 * 4;
        }
        // Wave scratch per site: gathered rows (R×K), the packed weight
        // (H×K), and the group output (R×H), at the widest batch.
        for plan in self.shared.wave_plans.values() {
            for site in &plan.sites {
                let k = match &site.extent {
                    cortex_core::expr::IdxExpr::Const(k) => (*k).max(1) as u64,
                    _ => site.feat_extent.max(1) as u64,
                };
                let rows =
                    max_batch as u64 * site.inner.map(|i| i.extent.max(1) as u64).unwrap_or(1);
                let h = site.feat_extent.max(1) as u64;
                bytes += 4 * (rows * k + h * k + rows * h);
            }
        }
        // Linearized arrays: child slots plus ~6 u32 metadata arrays.
        bytes += (lin.max_children() as u64 + 6) * num_nodes as u64 * 4;
        bytes
    }

    /// Validates one untrusted input against the plan and the engine's
    /// admission limits. Called by every execute path before any
    /// execution state is touched; serving fronts call it at admission
    /// so one bad request never reaches a co-batched run.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidInput`] for arity/size/depth violations,
    /// [`ExecError::OverBudget`] when the footprint estimate exceeds
    /// [`ExecOptions::memory_budget`].
    pub fn validate_input(&self, lin: &Linearized) -> Result<(), ExecError> {
        if lin.max_children() > self.plan_arity.max {
            return Err(InvalidInput::ArityExceedsPlan {
                found: lin.max_children(),
                plan: self.plan_arity.max,
            }
            .into());
        }
        let required = self.plan_arity.required;
        if required > 0 {
            for node in 0..lin.num_nodes() as u32 {
                let found = lin.num_children_of(node);
                if found > 0 && found < required {
                    return Err(InvalidInput::ArityBelowPlan { found, required }.into());
                }
            }
        }
        if let Some(limit) = self.opts.max_input_nodes {
            if lin.num_nodes() > limit {
                return Err(InvalidInput::NodesOverLimit {
                    nodes: lin.num_nodes(),
                    limit,
                }
                .into());
            }
        }
        if let Some(limit) = self.opts.max_input_depth {
            let depth = lin.internal_batches().len() + 1;
            if depth > limit {
                return Err(InvalidInput::DepthOverLimit { depth, limit }.into());
            }
        }
        if let Some(budget) = self.opts.memory_budget {
            let needed = self.footprint(lin);
            if needed > budget {
                return Err(ExecError::OverBudget { needed, budget });
            }
        }
        Ok(())
    }

    /// Proves every bound parameter finite, once per
    /// [`Params::generation`] — re-binding invalidates the proof,
    /// repeated runs against the same binding pay nothing.
    fn validate_params(&mut self, params: &Params) -> Result<(), ExecError> {
        let gen = params.generation();
        if self.params_validated == Some(gen) {
            return Ok(());
        }
        for (name, t) in params.iter() {
            if !t.as_slice().iter().all(|v| v.is_finite()) {
                return Err(InvalidInput::NonFiniteParam {
                    name: name.to_string(),
                }
                .into());
            }
        }
        self.params_validated = Some(gen);
        Ok(())
    }

    /// The shared admission gate of both execute paths.
    fn admit(&mut self, lins: &[&Linearized], params: &Params) -> Result<(), ExecError> {
        if let Err(e) = &self.verified {
            return Err(ExecError::Verify(e.clone()));
        }
        self.validate_params(params)?;
        for lin in lins {
            self.validate_input(lin)?;
        }
        Ok(())
    }

    /// Diagnostic counters of the most recent [`Engine::execute`] call.
    /// The compile-time analysis fields (`dead_ops_eliminated`,
    /// `slots_coalesced`, `par_*`) are seeded into every run, so one
    /// read describes the engine end to end.
    pub fn stats(&self) -> ExecStats {
        self.caches.stats
    }

    /// The [`ExecStats`] every run starts from: zeros for the runtime
    /// counters, the engine's static-analysis results pre-filled.
    fn stats_seed(&self) -> ExecStats {
        let mut par_unsafe_by_reason = [0u64; 6];
        for cert in self
            .shared
            .plan
            .wave_safety
            .iter()
            .chain(&self.shared.plan.fused_safety)
        {
            if let ParSafety::Sequential { reason } = cert {
                par_unsafe_by_reason[reason.index()] += 1;
            }
        }
        ExecStats {
            dead_ops_eliminated: self.plan_stats.dead_ops_eliminated as u64,
            slots_coalesced: self.plan_stats.slots_coalesced as u64,
            par_safe_waves: self.plan_stats.par_safe_waves as u64,
            par_unsafe_waves: self.plan_stats.par_unsafe_waves as u64,
            par_unsafe_by_reason,
            threaded_ops: self.plan_stats.threaded_ops as u64,
            fused_scalar_runs: self.plan_stats.fused_scalar_runs as u64,
            specialize_ns: self.plan_stats.specialize_ns,
            ..ExecStats::default()
        }
    }

    /// Compile-time facts about the lowered plan: instruction count,
    /// lowering time, and how many statements failed to lower (0 —
    /// CI-gated).
    pub fn plan_stats(&self) -> PlanStats {
        self.plan_stats
    }

    /// Executes the program, returning outputs and raw counters.
    ///
    /// # Errors
    ///
    /// See [`execute`].
    pub fn execute(
        &mut self,
        lin: &Linearized,
        params: &Params,
        persist_active: bool,
    ) -> Result<(HashMap<TensorId, Tensor>, Profile), ExecError> {
        self.guarded(|e| e.execute_inner(lin, params, persist_active))
    }

    fn execute_inner(
        &mut self,
        lin: &Linearized,
        params: &Params,
        persist_active: bool,
    ) -> Result<(HashMap<TensorId, Tensor>, Profile), ExecError> {
        self.admit(&[lin], params)?;
        self.refresh_weight_cache(params);
        self.caches.stats = self.stats_seed();
        let mut interp = Interp::new(
            self.program,
            lin,
            params,
            persist_active,
            self.opts,
            self.shared.clone(),
            self.max_slots,
            &mut self.param_arena,
            &mut self.buf_pool,
        )?;
        std::mem::swap(&mut self.caches, &mut interp.caches);
        // Tier dispatch: the interp oracle overrides everything, then
        // the specialized table when one is attached, then the pc loop.
        let result = if self.opts.interp {
            interp.run_all()
        } else if self.opts.threaded && self.shared.threaded.is_some() {
            interp.run_threaded()
        } else {
            interp.run_program()
        };
        std::mem::swap(&mut self.caches, &mut interp.caches);
        result?;
        interp.finish(&mut self.buf_pool)
    }

    /// Executes the program over a *batch* of independent inputs, fusing
    /// their wavefronts: at each wave depth, the per-request wave GEMMs
    /// of the same stacking group merge into one **super-wave** GEMM
    /// over the concatenation of every request's gathered rows (width
    /// `Σ bs` instead of `bs`), so GEMM launches scale with the number
    /// of wave depths, not with the number of requests.
    ///
    /// Outputs and `Profile`s are returned per request, **exactly**
    /// equal to running each input through [`Engine::execute`] alone:
    /// the merged GEMM computes each output element from the same row
    /// and weight data in the same reduction order, and all accounting
    /// is per-request by construction (the GEMM itself is
    /// accounting-free; counters are charged during each request's own
    /// gather and memo-serve phases). [`Engine::stats`] afterwards
    /// describes the whole batch (one `wave_gemms` launch may serve many
    /// requests — that is the amortization being measured).
    ///
    /// # Errors
    ///
    /// See [`execute`]; the first failing request aborts the batch.
    pub fn execute_many(
        &mut self,
        lins: &[&Linearized],
        params: &Params,
        persist_active: bool,
    ) -> Result<Vec<RunOutput>, ExecError> {
        self.guarded(|e| e.execute_many_inner(lins, params, persist_active))
    }

    fn execute_many_inner(
        &mut self,
        lins: &[&Linearized],
        params: &Params,
        persist_active: bool,
    ) -> Result<Vec<RunOutput>, ExecError> {
        // Validation failures surface *before* any request runs: a
        // serving front validates per request at admission, so a batch
        // reaching this check with a bad member aborts whole — the
        // front's isolation machinery (bisection) then resolves the
        // good requests solo.
        self.admit(lins, params)?;
        self.refresh_weight_cache(params);
        self.caches.stats = self.stats_seed();
        if lins.is_empty() {
            return Ok(Vec::new());
        }
        let mut interps = Vec::with_capacity(lins.len());
        for lin in lins {
            interps.push(Interp::new(
                self.program,
                lin,
                params,
                persist_active,
                self.opts,
                self.shared.clone(),
                self.max_slots,
                &mut self.param_arena,
                &mut self.buf_pool,
            )?);
        }
        if self.opts.interp {
            self.run_many_interp(&mut interps)?;
        } else if self.opts.threaded && self.shared.threaded.is_some() {
            self.run_many_threaded(&mut interps)?;
        } else {
            self.run_many_pc(&mut interps)?;
        }
        interps
            .into_iter()
            .map(|it| it.finish(&mut self.buf_pool))
            .collect()
    }

    /// The threaded tier's batched scheduler: identical to
    /// [`Engine::run_many_pc`] — same [`PcCursor`], same park/flush/
    /// resume protocol — stepping through the specialized closure table
    /// instead of the op stream.
    fn run_many_threaded(&mut self, interps: &mut [Interp<'_>]) -> Result<(), ExecError> {
        let cursors: Vec<PcCursor> = interps
            .iter()
            .map(|it| PcCursor::new(it.launch_units(), it.watchdog_fuel()))
            .collect();
        self.run_many_cooperative(
            interps,
            cursors,
            |c| c.done,
            |it, cur, acc, r| it.step_threaded(cur, Some((acc, r))),
        )
    }

    /// The pc runtime's batched scheduler: one [`PcCursor`] per request
    /// through [`Engine::run_many_cooperative`].
    fn run_many_pc(&mut self, interps: &mut [Interp<'_>]) -> Result<(), ExecError> {
        let cursors: Vec<PcCursor> = interps
            .iter()
            .map(|it| PcCursor::new(it.launch_units(), it.watchdog_fuel()))
            .collect();
        self.run_many_cooperative(
            interps,
            cursors,
            |c| c.done,
            |it, cur, acc, r| it.step_program(cur, Some((acc, r))),
        )
    }

    /// [`Engine::run_many_pc`]'s oracle twin over the frame-based step
    /// machine (`interp: true`) — same scheduler, different cursor. The
    /// oracle walks statement frames, not plan ops, so it carries no
    /// watchdog; it is the diagnostic the pc runtime is checked against,
    /// never the admission path.
    fn run_many_interp(&mut self, interps: &mut [Interp<'_>]) -> Result<(), ExecError> {
        let compiled = self.shared.compiled.clone();
        let cursors: Vec<RunCursor<'_>> = interps
            .iter()
            .map(|it| RunCursor::new(it.launch_units()))
            .collect();
        self.run_many_cooperative(
            interps,
            cursors,
            |c| c.done,
            |it, cur, acc, r| Ok(it.step(cur, &compiled, acc, r)),
        )
    }

    /// The cooperative round-robin shared by both batched runtimes
    /// (parameterized over the cursor type so the park/flush/resume
    /// protocol cannot drift between the pc runtime and its oracle):
    /// each request runs until it parks at a planned wave loop (gathered
    /// rows registered, GEMM pending) or completes. Once every live
    /// request is parked, the accumulated GEMMs flush — merged across
    /// requests — results install, and everyone resumes. Merging is
    /// opportunistic: requests at different depths (or past their last
    /// wave) simply stop contributing rows, so mixed-depth batches stay
    /// correct.
    fn run_many_cooperative<C>(
        &mut self,
        interps: &mut [Interp<'_>],
        mut cursors: Vec<C>,
        done: impl Fn(&C) -> bool,
        mut step: impl FnMut(
            &mut Interp<'_>,
            &mut C,
            &mut SuperWaveAcc,
            usize,
        ) -> Result<StepOutcome, ExecError>,
    ) -> Result<(), ExecError> {
        let mut acc = SuperWaveAcc::default();
        let mut parked = vec![false; interps.len()];
        loop {
            let mut progressed = false;
            for r in 0..interps.len() {
                if done(&cursors[r]) || parked[r] {
                    continue;
                }
                progressed = true;
                // The shared caches (reduction plans, packed weights,
                // scratch pools, stats) shuttle into whichever request
                // is stepping — this is what makes weights pack once
                // per batch instead of once per request.
                std::mem::swap(&mut self.caches, &mut interps[r].caches);
                let outcome = step(&mut interps[r], &mut cursors[r], &mut acc, r);
                std::mem::swap(&mut self.caches, &mut interps[r].caches);
                // A typed step fault (the watchdog) aborts the batch
                // *after* the caches are back home; the serving front's
                // isolation machinery resolves the innocent requests.
                if matches!(outcome?, StepOutcome::Paused) {
                    parked[r] = true;
                }
            }
            if !acc.is_empty() {
                self.flush_super_waves(&mut acc, interps);
                parked.iter_mut().for_each(|p| *p = false);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        debug_assert!(cursors.iter().all(done), "all requests must finish");
        Ok(())
    }

    /// Runs every pending super-wave GEMM and hands each registered
    /// request its block of the shared result matrix.
    fn flush_super_waves(&mut self, acc: &mut SuperWaveAcc, interps: &mut [Interp<'_>]) {
        for entry in acc.take_entries() {
            let SuperEntry {
                key,
                weight,
                rows,
                total_rows,
                registrants,
            } = entry;
            maybe_inject(
                &self.caches.fault_hook,
                FaultSite::Gemm { rows: total_rows },
            );
            let mut out = vec![0.0f32; total_rows * key.cols];
            let gemm_t0 = Instant::now();
            kernels::gemm_nt_into(&mut out, &rows, &weight, total_rows, key.cols, key.k_len);
            let shared = Rc::new(out);
            let stats = &mut self.caches.stats;
            stats.gemm_ns += gemm_t0.elapsed().as_nanos() as u64;
            stats.wave_gemms += 1;
            stats.gemm_rows += total_rows as u64;
            if registrants.len() > 1 {
                stats.super_gemms += 1;
                stats.super_gemm_rows += total_rows as u64;
                stats.super_gemm_requests += registrants.len() as u64;
            }
            for reg in &registrants {
                interps[reg.request].install_wave_result(
                    reg.group_idx,
                    shared.clone(),
                    reg.base_row,
                );
            }
            acc.recycle(rows);
        }
    }

    /// Packed weights are cached per `(program, params generation)` —
    /// i.e. once per model per binding state, across runs and across the
    /// requests of a serving batch — instead of being rebuilt every run.
    /// Packs of non-`Param` weights (tensors a kernel may rewrite with
    /// input-dependent values) never survive a run boundary, and the
    /// whole cache is bounded by [`WEIGHT_CACHE_CAP`] with
    /// least-recently-used eviction: packs touched by the most recent
    /// run (the in-flight working set — during `run_many` that is every
    /// request of the batch, since eviction only runs between
    /// executions) carry the newest stamp and are evicted last, so a
    /// program whose working set fits the cap repacks **nothing** in
    /// the steady state even when its lifetime-distinct pack count
    /// exceeds the cap. (The old policy cleared the whole cache at the
    /// cap, forcing a mid-service full repack.)
    fn refresh_weight_cache(&mut self, params: &Params) {
        let gen = params.generation();
        self.caches.run_stamp += 1;
        if self.params_gen != Some(gen) {
            self.caches.weight_cache.clear();
            self.param_arena.clear();
            self.params_gen = Some(gen);
        } else {
            self.caches.weight_cache.retain(|_, w| w.params_only);
            evict_weight_cache_lru(&mut self.caches.weight_cache, WEIGHT_CACHE_CAP);
        }
    }

    /// Executes against a device model, like the free [`run`] function.
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn run(
        &mut self,
        lin: &Linearized,
        params: &Params,
        device: &DeviceSpec,
    ) -> Result<RunResult, ExecError> {
        let persist = check_persistence(self.program, device);
        let (outputs, profile) = self.execute(lin, params, persist.active())?;
        let latency = device.latency(&profile);
        Ok(RunResult {
            outputs,
            profile,
            latency,
            persist,
        })
    }

    /// Batched counterpart of [`Engine::run`]: executes a queue of
    /// independent inputs through one merged super-wave schedule (see
    /// [`Engine::execute_many`]) and returns one [`RunResult`] per
    /// request.
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn run_many(
        &mut self,
        lins: &[&Linearized],
        params: &Params,
        device: &DeviceSpec,
    ) -> Result<Vec<RunResult>, ExecError> {
        let persist = check_persistence(self.program, device);
        let results = self.execute_many(lins, params, persist.active())?;
        Ok(results
            .into_iter()
            .map(|(outputs, profile)| RunResult {
                latency: device.latency(&profile),
                outputs,
                profile,
                persist: persist.clone(),
            })
            .collect())
    }
}

//! Batched wavefront execution: the gather/GEMM phase.
//!
//! Runs each stacking group of a planned wave as one packed NT GEMM
//! (or registers its rows into a pending super-wave GEMM during
//! `execute_many`), and activates the group's member sites so `Sum`
//! evaluations — interpreted, bulk, or fused — serve from the result
//! matrices with the scalar path's exact accounting. Shared verbatim by
//! the pc-based plan runtime and the `interp: true` oracle.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use cortex_core::expr::BoolExpr;
use cortex_core::ilir::StorageClass;
use cortex_tensor::kernels;

use super::checked_assert;
use super::interp::Interp;
use crate::wave::{GroupKind, InnerDim, SiteGroup, SumSite, SuperKey, SuperWaveAcc, WavePlan};

/// One packed (possibly vertically stacked) weight matrix.
pub(crate) struct StackedWeight {
    /// Per-member `(site key, window base, store generation)`.
    pub(crate) sig: Vec<(usize, usize, u64)>,
    /// Whether every packed window reads a `Param`-class tensor: only
    /// such packs may cross an interpreter boundary (non-`Param`
    /// weights can be rewritten with input-dependent values between
    /// runs — or between the requests of a batch — without a
    /// store-generation change being observable across fresh interps,
    /// whose generations all start at zero).
    pub(crate) params_only: bool,
    /// The [`Interp::cache_epoch`] that packed this entry. Non-`Param`
    /// packs only validate within the same epoch: two equal-sized
    /// requests of one batch drive identical store counts to a
    /// kernel-written weight tensor, so the store-generation signature
    /// alone cannot tell their (possibly different) values apart.
    pub(crate) epoch: u64,
    /// [`super::interp::Caches::run_stamp`] of the last execution that
    /// used this pack; eviction removes the stalest entries first.
    pub(crate) last_used: u64,
    /// `[ΣH][K]` row-major.
    pub(crate) data: Rc<Vec<f32>>,
}

/// Evicts the least-recently-used entries of the packed-weight cache
/// down to `cap`. Entries stamped by the most recent execution (the
/// in-flight working set) are the newest and go last — they are only
/// evicted when a single run's working set itself exceeds the cap.
pub(crate) fn evict_weight_cache_lru(
    cache: &mut HashMap<(usize, usize), StackedWeight>,
    cap: usize,
) {
    if cache.len() <= cap {
        return;
    }
    let mut stamps: Vec<((usize, usize), u64)> =
        cache.iter().map(|(k, w)| (*k, w.last_used)).collect();
    stamps.sort_by_key(|&(_, used)| used);
    for (key, _) in stamps.iter().take(cache.len() - cap) {
        cache.remove(key);
    }
}

/// Reusable buffers for one stacking group. All three vectors are
/// engine-lifetime scratch: they round-trip through [`ActiveGroup`] and
/// back into the cache after each wave, so steady-state waves allocate
/// nothing (the `RowMeta` entries are recycled in place, `tensors`
/// capacity included).
#[derive(Default)]
pub(crate) struct GroupBufs {
    /// Packed operand rows, `[rows][k]`.
    pub(crate) rows: Vec<f32>,
    /// GEMM output, `[rows][cols]`.
    pub(crate) out: Vec<f32>,
    /// Per-row accounting metadata.
    pub(crate) meta: Vec<RowMeta>,
}

/// Accounting metadata for one packed row, mirroring exactly what the
/// scalar `eval_dot` would have recorded per element.
#[derive(Debug, Clone, Default)]
pub(crate) struct RowMeta {
    /// A guard failed (or `k == 0`): the scalar path returns `0.0`
    /// *before* any accounting, so the memo does the same.
    pub(crate) zero: bool,
    /// Reduction-invariant scalar factor, applied after the dot.
    pub(crate) scale: f32,
    /// Stream count **excluding** the weight stream (sites of a stacked
    /// group share row metadata but read different weight tensors, so
    /// the weight's load/flop share is charged at memo-hit time from
    /// [`ActiveSite::weight_tensor`]).
    pub(crate) streams: u64,
    /// Touched row-side tensor ids (with multiplicity); the weight
    /// tensor is *not* included.
    pub(crate) tensors: Vec<u32>,
}

/// A stacking-group member that passed its runtime weight-window check:
/// the resolved window base/strides and the source tensor's store
/// generation at resolution time.
pub(crate) struct SitePrep<'s> {
    pub(crate) site: &'s SumSite,
    pub(crate) wbase: usize,
    pub(crate) si: usize,
    pub(crate) sk: usize,
    pub(crate) wgen: u64,
}

/// Where a wave's GEMM result lives.
pub(crate) enum GroupOut {
    /// Deferred into a super-wave GEMM that has not flushed yet; reading
    /// it is a bug (the request is parked until results install).
    Pending,
    /// This request's own GEMM (the single-run path).
    Owned(Vec<f32>),
    /// A block of a merged super-wave result shared by several requests;
    /// this request's rows start at `base`.
    Shared { buf: Rc<Vec<f32>>, base: usize },
}

/// One stacked GEMM currently serving a wave: the packed rows, the
/// result matrix, and the per-row accounting shared by its sites.
pub(crate) struct ActiveGroup {
    /// Group leader's site key (the scratch-buffer cache key).
    pub(crate) leader_key: usize,
    /// GEMM output, `[rows][cols]` row-major (owned or a shared block).
    pub(crate) out: GroupOut,
    /// Packed operand rows (kept only to return the buffer to the pool;
    /// empty when the rows were gathered into a super-wave matrix).
    pub(crate) rows: Vec<f32>,
    /// Per-row metadata; sites index it via their `meta_off`.
    pub(crate) meta: Vec<RowMeta>,
    /// Output row length (ΣH of the stacked sites, or H when rows are
    /// stacked instead).
    pub(crate) cols: usize,
}

impl ActiveGroup {
    /// One element of the GEMM result.
    #[inline]
    pub(crate) fn value(&self, row: usize, col: usize) -> f32 {
        checked_assert!(
            col < self.cols,
            "col {col} outside {}-wide group",
            self.cols
        );
        match &self.out {
            GroupOut::Owned(v) => v[row * self.cols + col],
            GroupOut::Shared { buf, base } => buf[(base + row) * self.cols + col],
            GroupOut::Pending => unreachable!("wave GEMM result read before its flush"),
        }
    }
}

/// A site currently served from an [`ActiveGroup`]'s GEMM result.
pub(crate) struct ActiveSite {
    pub(crate) site_key: usize,
    /// Index into `Interp::active_groups`.
    pub(crate) group: usize,
    /// Row offset of this site's block in the group result
    /// (`member_index · wave_len` for row-stacked groups, else 0).
    pub(crate) row_off: usize,
    /// Column offset of this site's block (prefix sum of stacked `h`s
    /// for weight-stacked groups, else 0).
    pub(crate) col_off: usize,
    /// Offset into the group's `meta` (row-stacked groups carry one
    /// metadata entry per site per row; weight-stacked share one set).
    pub(crate) meta_off: usize,
    pub(crate) k: u64,
    /// Weight tensor id, charged per element at memo-hit time.
    pub(crate) weight_tensor: u32,
    pub(crate) feat_slot: usize,
    /// Row-side feature dimension of a rank-2 site: the served row is
    /// `n_idx · extent + j` instead of `n_idx`.
    pub(crate) inner: Option<InnerDim>,
    pub(crate) n_idx_slot: usize,
}

impl<'a> Interp<'a> {
    /// Runs the GEMM phase for every stacking group of a wave plan,
    /// making their `Sum`s servable from result matrices. Returns the
    /// number of `(sites, groups)` activated.
    ///
    /// With `defer` set (the `execute_many` path), the gathered rows are
    /// registered into the super-wave accumulator instead of running the
    /// GEMM immediately: the caller parks this request until the merged
    /// GEMMs flush and their results install.
    ///
    /// Accounting discipline: the scalar path evaluates guards, scalar
    /// factors and stream bases once per *element* (`wave_len × h` times
    /// per site); the packing phase evaluates them once per *gathered
    /// row* and multiplies the counter deltas by the served element
    /// count of every site the row serves, while the per-element loads
    /// and flops of the dot itself are charged at memo-hit time. The
    /// resulting `Profile` is identical to the scalar path's — and
    /// entirely per-request: the GEMM itself touches no counters, which
    /// is what makes cross-request merging invisible to the `Profile`.
    pub(crate) fn prepare_wave(
        &mut self,
        plan: &WavePlan,
        for_key: usize,
        wave_len: usize,
        mut defer: Option<(&mut SuperWaveAcc, usize)>,
    ) -> (usize, usize) {
        let mut sites = 0usize;
        let mut groups = 0usize;
        for (ordinal, group) in plan.groups.iter().enumerate() {
            let n = self.prepare_group(
                plan,
                group,
                for_key,
                ordinal,
                wave_len,
                defer.as_mut().map(|(acc, req)| (&mut **acc, *req)),
            );
            if n > 0 {
                sites += n;
                groups += 1;
            }
        }
        if groups > 0 {
            self.caches.stats.waves_batched += 1;
            #[cfg(feature = "checked")]
            self.shadow_enter_wave();
        }
        (sites, groups)
    }

    /// Resolves a site's weight window for this wave: `(base, i-stride,
    /// k-stride, store generation)`, or `None` when the window falls
    /// outside its buffer (scalar fallback, bit-identical results).
    ///
    /// The analysis guarantees the non-`(i,k)` index positions are
    /// wave-invariant and counter-free, so evaluating them here is
    /// invisible to the `Profile`.
    fn resolve_weight_window(
        &mut self,
        site: &SumSite,
        k_len: usize,
    ) -> Option<(usize, usize, usize, u64)> {
        let wt = site.weight.tensor.0 as usize;
        let mut coords = [0i64; 8];
        for (d, e) in site.weight.index.iter().enumerate() {
            if d == site.weight.i_pos || d == site.weight.k_pos {
                continue;
            }
            coords[d] = self.eval_idx(e);
            if coords[d] < 0 {
                return None;
            }
        }
        let buf = self.bufs[wt].as_ref().expect("weight allocated");
        let mut wbase = 0usize;
        for (d, _) in site.weight.index.iter().enumerate() {
            if d == site.weight.i_pos || d == site.weight.k_pos {
                continue;
            }
            wbase += coords[d] as usize * buf.strides[d];
        }
        let si = buf.strides[site.weight.i_pos];
        let sk = buf.strides[site.weight.k_pos];
        let h = site.feat_extent;
        if k_len > 0 && h > 0 && wbase + (h - 1) * si + (k_len - 1) * sk >= buf.data.len() {
            return None; // out-of-window weight: leave it to the scalar path
        }
        Some((wbase, si, sk, self.store_gens[wt]))
    }

    /// Packs one stacking group's weights and operand rows, runs its
    /// GEMM (or registers the rows into a pending super-wave GEMM), and
    /// activates its member sites. Returns the number of sites activated
    /// (members that fail a runtime check fall back to the scalar path
    /// individually).
    fn prepare_group(
        &mut self,
        plan: &WavePlan,
        group: &SiteGroup,
        for_key: usize,
        ordinal: usize,
        wave_len: usize,
        defer: Option<(&mut SuperWaveAcc, usize)>,
    ) -> usize {
        // The analyzer guarantees every member shares the reduction
        // extent (grouping requires structurally equal extents).
        let leader = &plan.sites[group.members[0]];
        let k_len = self.eval_idx(&leader.extent).max(0) as usize;

        let mut preps: Vec<SitePrep<'_>> = Vec::with_capacity(group.members.len());
        let mut attempted = 0usize;
        for &mi in &group.members {
            let site = &plan.sites[mi];
            if self.memo.iter().any(|(k, _)| *k == site.key) {
                continue; // defensive: a site is active at most once
            }
            attempted += 1;
            if let Some((wbase, si, sk, wgen)) = self.resolve_weight_window(site, k_len) {
                preps.push(SitePrep {
                    site,
                    wbase,
                    si,
                    sk,
                    wgen,
                });
            }
        }
        self.caches.stats.fallback_sites += (attempted - preps.len()) as u64;
        if preps.is_empty() {
            return 0;
        }
        let gather_t0 = Instant::now();

        // Pack (or reuse) the stacked weight matrix: the members'
        // `[h][K]` windows vertically concatenated for shared-rows
        // groups, the one shared `[H][K]` window for row-stacked groups.
        let leader_key = preps[0].site.key;
        let to_pack = match group.kind {
            GroupKind::SharedRows => preps.len(),
            GroupKind::SharedWeight => 1,
        };
        let cols: usize = preps[..to_pack].iter().map(|p| p.site.feat_extent).sum();
        // Validate the cached pack without materializing a signature —
        // this is the per-wave steady state and must not allocate.
        let cache_key = (leader_key, k_len);
        let run_stamp = self.caches.run_stamp;
        let cached = self
            .caches
            .weight_cache
            .get_mut(&cache_key)
            .is_some_and(|w| {
                let valid = (w.params_only || w.epoch == self.cache_epoch)
                    && w.sig.len() == preps.len()
                    && w.sig
                        .iter()
                        .zip(&preps)
                        .all(|(s, p)| *s == (p.site.key, p.wbase, p.wgen));
                if valid {
                    // Recency stamp for the LRU eviction: packs the
                    // current execution touches are the working set.
                    w.last_used = run_stamp;
                }
                valid
            });
        if !cached {
            self.caches.stats.weight_packs += 1;
            let sig: Vec<(usize, usize, u64)> = preps
                .iter()
                .map(|p| (p.site.key, p.wbase, p.wgen))
                .collect();
            let params_only = preps[..to_pack].iter().all(|p| {
                self.bufs[p.site.weight.tensor.0 as usize]
                    .as_ref()
                    .expect("weight allocated")
                    .class
                    == StorageClass::Param
            });
            let mut data = vec![0.0f32; cols * k_len];
            let mut row0 = 0usize;
            for p in &preps[..to_pack] {
                let buf = self.bufs[p.site.weight.tensor.0 as usize]
                    .as_ref()
                    .expect("weight allocated");
                for i in 0..p.site.feat_extent {
                    let src = p.wbase + i * p.si;
                    let dst = &mut data[(row0 + i) * k_len..(row0 + i + 1) * k_len];
                    if p.sk == 1 {
                        dst.copy_from_slice(&buf.data[src..src + k_len]);
                    } else {
                        for (kk, dv) in dst.iter_mut().enumerate() {
                            *dv = buf.data[src + kk * p.sk];
                        }
                    }
                }
                row0 += p.site.feat_extent;
            }
            self.caches.weight_cache.insert(
                cache_key,
                StackedWeight {
                    sig,
                    params_only,
                    epoch: self.cache_epoch,
                    last_used: run_stamp,
                    data: Rc::new(data),
                },
            );
        }
        let packed_w = self.caches.weight_cache[&cache_key].data.clone();

        // Gather phase: resolve guards/child-sums/scalars once per row
        // and pack the operand rows. Shared-rows groups gather one row
        // per node (serving every member); row-stacked groups gather one
        // block of rows per member.
        // Rank-2 sites gather one row per (node, j) pair; the analyzer
        // guarantees a shared-rows group agrees on the inner dimension
        // and keeps rank-2 sites out of row-stacked groups.
        let rows_per_node = match group.kind {
            GroupKind::SharedRows => preps[0].site.inner.map_or(1, |d| d.extent),
            GroupKind::SharedWeight => 1,
        };
        let gemm_rows = match group.kind {
            GroupKind::SharedRows => wave_len * rows_per_node,
            GroupKind::SharedWeight => preps.len() * wave_len,
        };
        let mut bufs = self
            .caches
            .group_bufs
            .get_mut(&leader_key)
            .and_then(Vec::pop)
            .unwrap_or_default();
        bufs.meta.resize_with(gemm_rows, RowMeta::default);

        let group_idx = self.active_groups.len();
        let deferred = if let Some((acc, request)) = defer {
            // Register this request's block of the merged super-wave
            // GEMM and gather straight into it; the GEMM runs at flush.
            let key = SuperKey {
                for_key,
                group_ordinal: ordinal,
                leader_key,
                cols,
                k_len,
            };
            let (entry, base) = acc.register(key, &packed_w, gemm_rows, request, group_idx);
            let rows = acc.rows_mut(entry, base, gemm_rows);
            self.gather_rows(
                plan,
                group.kind,
                &preps,
                k_len,
                rows_per_node,
                wave_len,
                rows,
                &mut bufs.meta,
            );
            self.caches.stats.gather_ns += gather_t0.elapsed().as_nanos() as u64;
            true
        } else {
            bufs.rows.clear();
            bufs.rows.resize(gemm_rows * k_len, 0.0);
            let GroupBufs { rows, meta, .. } = &mut bufs;
            self.gather_rows(
                plan,
                group.kind,
                &preps,
                k_len,
                rows_per_node,
                wave_len,
                rows,
                meta,
            );
            self.caches.stats.gather_ns += gather_t0.elapsed().as_nanos() as u64;
            // One cache-blocked NT GEMM for the whole group. Guard-zero
            // rows need no special handling here: the memo hit
            // short-circuits to exactly 0.0 (matching the scalar path,
            // which never touches the weight — inf/NaN containment
            // happens at that early return) so their slots in `out` are
            // never read.
            bufs.out.clear();
            bufs.out.resize(gemm_rows * cols, 0.0);
            let gemm_t0 = Instant::now();
            kernels::gemm_nt_into(&mut bufs.out, &bufs.rows, &packed_w, gemm_rows, cols, k_len);
            self.caches.stats.gemm_ns += gemm_t0.elapsed().as_nanos() as u64;
            false
        };

        let stats = &mut self.caches.stats;
        if !deferred {
            // Deferred GEMMs are counted at flush time, where several
            // requests' waves may share one launch.
            stats.wave_gemms += 1;
            stats.gemm_rows += gemm_rows as u64;
        }
        stats.sites_batched += preps.len() as u64;
        if preps.len() > 1 {
            stats.stacked_groups += 1;
            stats.stacked_sites += preps.len() as u64;
        }

        self.active_groups.push(ActiveGroup {
            leader_key,
            out: if deferred {
                GroupOut::Pending
            } else {
                GroupOut::Owned(std::mem::take(&mut bufs.out))
            },
            rows: std::mem::take(&mut bufs.rows),
            meta: std::mem::take(&mut bufs.meta),
            cols,
        });
        let mut col_off = 0usize;
        for (g, p) in preps.iter().enumerate() {
            let (row_off, c_off, meta_off) = match group.kind {
                GroupKind::SharedRows => (0, col_off, 0),
                GroupKind::SharedWeight => (g * wave_len, 0, g * wave_len),
            };
            col_off += p.site.feat_extent;
            self.memo.push((p.site.key, self.active.len()));
            self.active.push(ActiveSite {
                site_key: p.site.key,
                group: group_idx,
                row_off,
                col_off: c_off,
                meta_off,
                k: k_len as u64,
                weight_tensor: p.site.weight.tensor.0,
                feat_slot: p.site.feat_slot,
                inner: p.site.inner,
                n_idx_slot: plan.n_idx_slot,
            });
        }
        preps.len()
    }

    /// Gathers a group's operand rows (resolving guards, child-sums and
    /// scalars once per row, with the scalar path's per-element counter
    /// deltas replayed per served element) into `rows`/`meta`.
    #[allow(clippy::too_many_arguments)]
    fn gather_rows(
        &mut self,
        plan: &WavePlan,
        kind: GroupKind,
        preps: &[SitePrep<'_>],
        k_len: usize,
        rows_per_node: usize,
        wave_len: usize,
        rows: &mut [f32],
        meta: &mut [RowMeta],
    ) {
        checked_assert!(
            plan.n_idx_slot < self.slots.len(),
            "wave index slot {} out of range",
            plan.n_idx_slot
        );
        match kind {
            GroupKind::SharedRows => {
                // The members' row operands are structurally equal, so
                // the leader's resolution stands in for all of them; the
                // scalar path would have resolved once per served
                // element of every member, hence the Σ replay factor.
                // (Grouping requires equal `select_guards` too, so the
                // leader's guards stand in for all members.)
                let replay: u64 = preps.iter().map(|p| p.site.served_per_row as u64).sum();
                let rest = &preps[0].site.rest;
                let guards = &preps[0].site.select_guards;
                let inner = preps[0].site.inner;
                for r in 0..wave_len {
                    self.slots[plan.n_idx_slot] = r as i64;
                    if let Some((slot, value)) = &plan.node_let {
                        self.slots[*slot] = self.eval_idx(value);
                    }
                    for jv in 0..rows_per_node {
                        if let Some(d) = inner {
                            self.slots[d.slot] = jv as i64;
                        }
                        let at = r * rows_per_node + jv;
                        let row = &mut rows[at * k_len..(at + 1) * k_len];
                        self.pack_row(rest, guards, k_len, replay, row, &mut meta[at]);
                    }
                }
            }
            GroupKind::SharedWeight => {
                for (g, p) in preps.iter().enumerate() {
                    for r in 0..wave_len {
                        self.slots[plan.n_idx_slot] = r as i64;
                        if let Some((slot, value)) = &plan.node_let {
                            self.slots[*slot] = self.eval_idx(value);
                        }
                        let at = g * wave_len + r;
                        let row = &mut rows[at * k_len..(at + 1) * k_len];
                        self.pack_row(
                            &p.site.rest,
                            &p.site.select_guards,
                            k_len,
                            p.site.served_per_row as u64,
                            row,
                            &mut meta[at],
                        );
                    }
                }
            }
        }
    }

    /// Resolves one node's row operands and packs its reduction row,
    /// replicating the scalar path's per-element accounting ×`replay`
    /// (the summed feature extents of every site this row serves). The
    /// metadata entry is rewritten in place so its `tensors` allocation
    /// is recycled across waves.
    fn pack_row(
        &mut self,
        rest: &[crate::fastdot::Operand],
        guards: &[(BoolExpr, bool)],
        k_len: usize,
        replay: u64,
        out_row: &mut [f32],
        meta: &mut RowMeta,
    ) {
        use super::scalar::Res;
        // Value-level `Select` guards: when one fails, the scalar path
        // never reaches this reduction for this node — no resolution,
        // no accounting, and the (pre-zeroed) row is never read, so its
        // child indirections (possibly NO_CHILD) are never resolved.
        // The evaluation is silent: the interpreter still walks each
        // `Select` per served element and pays its counters there.
        if !guards.is_empty() && !self.eval_guards_silently(guards) {
            meta.tensors.clear();
            meta.scale = 0.0;
            meta.zero = true;
            meta.streams = 0;
            return;
        }
        let before = (
            self.profile.flops,
            self.profile.leaf_check_loads,
            self.profile.branch_checks,
        );
        let (resolved, scale) = self.resolve_product(rest);
        // The scalar path would repeat this resolution for every served
        // output element; replay the counter deltas replay-1 more times.
        let extra = replay.saturating_sub(1);
        self.profile.flops += (self.profile.flops - before.0) * extra;
        self.profile.leaf_check_loads += (self.profile.leaf_check_loads - before.1) * extra;
        self.profile.branch_checks += (self.profile.branch_checks - before.2) * extra;

        meta.tensors.clear();
        meta.scale = scale;
        if resolved.iter().any(|r| matches!(r, Res::Zero)) || k_len == 0 {
            meta.zero = true;
            meta.streams = 0;
            return;
        }
        meta.zero = false;
        let mut streams = 0u64;
        for r in &resolved {
            match r {
                Res::Stream(t, _, _) => {
                    streams += 1;
                    meta.tensors.push(*t as u32);
                }
                Res::AddStreams(v) => {
                    streams += v.len() as u64;
                    meta.tensors.extend(v.iter().map(|(t, _, _)| *t as u32));
                }
                Res::Zero => unreachable!("filtered above"),
            }
        }
        meta.streams = streams;
        #[cfg(feature = "checked")]
        self.shadow_record_row(&resolved, k_len);
        let bufs = &self.bufs;
        let data = |t: usize| -> &[f32] { &bufs[t].as_ref().expect("allocated").data };
        // Fast case: a single plain stream (the matvec row) is a strided
        // copy; anything else folds the product elementwise.
        match resolved.as_slice() {
            [Res::Stream(t, b, s)] => {
                let d = data(*t);
                if *s == 1 {
                    out_row.copy_from_slice(&d[*b..*b + k_len]);
                } else {
                    for (kk, ov) in out_row.iter_mut().enumerate() {
                        *ov = d[b + kk * s];
                    }
                }
            }
            [Res::AddStreams(v)] => {
                for (t, b, s) in v {
                    let d = data(*t);
                    if *s == 1 {
                        kernels::axpy(out_row, &d[*b..*b + k_len]);
                    } else {
                        for (kk, ov) in out_row.iter_mut().enumerate() {
                            *ov += d[b + kk * s];
                        }
                    }
                }
            }
            _ => {
                for (kk, ov) in out_row.iter_mut().enumerate() {
                    let mut prod = 1.0f32;
                    for r in &resolved {
                        match r {
                            Res::Stream(t, b, s) => prod *= data(*t)[b + kk * s],
                            Res::AddStreams(v) => {
                                let mut sum = 0.0f32;
                                for (t, b, s) in v {
                                    sum += data(*t)[b + kk * s];
                                }
                                prod *= sum;
                            }
                            Res::Zero => unreachable!("filtered above"),
                        }
                    }
                    *ov = prod;
                }
            }
        }
    }

    /// Deactivates the last `(sites, groups)` of a wave, returning the
    /// group buffers to the per-group pools.
    pub(crate) fn finish_wave(&mut self, (sites, groups): (usize, usize)) {
        #[cfg(feature = "checked")]
        if groups > 0 {
            self.shadow_exit_wave();
        }
        for _ in 0..sites {
            let site = self.active.pop().expect("active site");
            let pos = self
                .memo
                .iter()
                .position(|(k, _)| *k == site.site_key)
                .expect("memoized site");
            self.memo.swap_remove(pos);
        }
        for _ in 0..groups {
            let group = self.active_groups.pop().expect("active group");
            // Shared (super-wave) results are dropped with their `Rc`;
            // only owned output buffers return to the pool.
            let out = match group.out {
                GroupOut::Owned(v) => v,
                GroupOut::Shared { .. } | GroupOut::Pending => Vec::new(),
            };
            self.caches
                .group_bufs
                .entry(group.leader_key)
                .or_default()
                .push(GroupBufs {
                    rows: group.rows,
                    out,
                    meta: group.meta,
                });
        }
    }

    /// Hands this request its block of a flushed super-wave GEMM result.
    pub(crate) fn install_wave_result(&mut self, group_idx: usize, buf: Rc<Vec<f32>>, base: usize) {
        debug_assert!(matches!(
            self.active_groups[group_idx].out,
            GroupOut::Pending
        ));
        self.active_groups[group_idx].out = GroupOut::Shared { buf, base };
    }
}

//! The linear ExecPlan IR: a flat instruction stream per engine.
//!
//! At engine build time every compiled kernel is lowered (see
//! [`super::lowering`]) into one shared [`Program`] — a flat `Vec<Op>`
//! with explicit jump targets — so the runtime ([`super::run`]) executes
//! a **program counter**, never walking the statement AST. Every
//! decision the wave/bulk/fused analyses make (which loops are GEMM
//! waves, which feature loops bulk-serve, which node loops fuse, which
//! sites stack) is resolved into op operands here: the pc runtime's only
//! remaining dynamic checks are the ones that genuinely depend on run
//! state (memo-servability after a per-site fallback, the min-wave-width
//! latency knob).
//!
//! This is the same move Relay/TVM make when going from graph IR to an
//! executable form, and it is what makes suspension trivial: a parked
//! request in `execute_many` is a program counter plus its loop records
//! (slot values live in the interpreter's register file and are never
//! unwound).
//!
//! # Pointer invariant
//!
//! Ops reference the expressions they evaluate (`IdxExpr`, `BoolExpr`,
//! full `Store` statements) by raw pointer into the compiled kernels.
//! This keeps every `Sum` body address — the identity the wave memo,
//! reduction-plan cache and bulk plans key on — canonical between the
//! two runtimes, with no cloning or key translation. The pointers are
//! valid for the [`Program`]'s whole lifetime because:
//!
//! * [`Program::source`] holds the owning `Rc<Vec<CompiledKernel>>`, so
//!   the statement trees outlive the ops pointing into them;
//! * compiled kernels are immutable after construction (nothing ever
//!   takes `&mut` to them — the same address-stability discipline the
//!   wave-plan and bulk-plan maps already rely on).

use std::rc::Rc;

use cortex_core::expr::{BoolExpr, IdxExpr};
use cortex_core::ilir::{LaunchPattern, Stmt};

use super::analysis::ParSafety;
use super::bulk::{BulkPlan, FusedWave};
use super::lowering::CompiledKernel;
use crate::wave::WavePlan;

/// A program counter: an index into [`Program::ops`].
pub(crate) type Pc = usize;

/// One instruction of the lowered plan.
pub(crate) enum Op {
    /// Enter the loop `LoopDef`: evaluate its extent, record node-loop
    /// width, run the wave prepare phase (gather + GEMM, or gather +
    /// defer + park under `execute_many`), then either jump to the fused
    /// epilogue or fall into the per-element body.
    LoopEnter(usize),
    /// Close one body iteration: advance the counter and jump back to
    /// the body, or retire the loop (deactivating its wave sites) and
    /// jump to the exit.
    LoopNext(usize),
    /// Run the fused whole-wave epilogue for the loop record on top of
    /// the stack (placed at [`LoopDef::fused_pc`]; reached directly in a
    /// solo run, or as the resume point of a parked fusable wave).
    FusedEpilogue,
    /// `slot = value`.
    Let {
        slot: usize,
        value: *const IdxExpr,
    },
    /// Execute a `Stmt::Store` (index + value evaluation, accounting).
    Store {
        stmt: *const Stmt,
    },
    /// Evaluate the condition (one branch check); fall through on true,
    /// jump to `on_false` otherwise.
    Branch {
        cond: *const BoolExpr,
        on_false: Pc,
    },
    Jump(Pc),
    Barrier,
    /// Bulk feature-loop pass: when servable (all referenced reductions
    /// memo-active and the bulk path enabled) run the strided row passes
    /// and jump `done`; otherwise fall through into the per-element
    /// loop ops.
    BulkPass {
        id: usize,
        done: Pc,
    },
    /// Escape hatch: interpret one statement subtree through the AST
    /// walker. The lowering is total over the statement grammar and
    /// never emits this today; it exists so a future construct degrades
    /// gracefully, and [`Program::fallback_ops`] (CI-gated to 0) proves
    /// it stays unused.
    #[allow(dead_code)]
    ScalarStmt {
        stmt: *const Stmt,
    },
    /// End of a kernel body: pop the launch scope and start the next
    /// launch unit.
    KernelEnd,
}

/// Static description of one lowered loop.
pub(crate) struct LoopDef {
    /// Register (slot) of the loop variable.
    pub(crate) slot: usize,
    /// Trip-count expression, evaluated once at entry.
    pub(crate) extent: *const IdxExpr,
    /// One accounting wave scope per iteration (`d_all_batches`).
    pub(crate) is_wave: bool,
    /// A node (`d_batch`) loop: its width feeds the scope's wave stat.
    pub(crate) is_node: bool,
    /// Wave GEMM plan of this loop, resolved at lowering.
    pub(crate) wave: Option<usize>,
    /// Fused whole-wave epilogue of this loop, resolved at lowering.
    pub(crate) fused: Option<usize>,
    /// First op of the per-element body.
    pub(crate) body: Pc,
    /// The [`Op::FusedEpilogue`] op (valid when `fused` is set).
    pub(crate) fused_pc: Pc,
    /// First op after the loop.
    pub(crate) exit: Pc,
}

/// A wave plan attached to a lowered loop.
pub(crate) struct WaveRef {
    pub(crate) plan: Rc<WavePlan>,
    /// The planned `For`'s statement address — the super-wave merge key
    /// half shared with the `interp: true` oracle, so both runtimes
    /// merge identically across a batch's requests.
    pub(crate) for_key: usize,
}

/// One kernel's entry point in the flat op stream.
pub(crate) struct KernelDef {
    pub(crate) entry: Pc,
    pub(crate) launch: LaunchPattern,
    pub(crate) batch_slot: Option<usize>,
}

/// The lowered execution plan of one engine (see module docs).
pub(crate) struct Program {
    pub(crate) ops: Vec<Op>,
    pub(crate) loops: Vec<LoopDef>,
    pub(crate) waves: Vec<WaveRef>,
    /// Parallel-safety certificate of each wave's `d_batch` body,
    /// aligned with `waves`. Computed by the static certifier at
    /// lowering ([`super::analysis::parsafety`]), re-derived and
    /// compared by [`super::verify`] so a forged entry is rejected.
    pub(crate) wave_safety: Vec<ParSafety>,
    pub(crate) fused: Vec<Rc<FusedWave>>,
    /// Certificate of each fused wave's row passes, aligned with
    /// `fused`. Row-disjoint by construction (`plan_fused_wave` only
    /// builds certified waves) — `verify` enforces exactly that.
    pub(crate) fused_safety: Vec<ParSafety>,
    pub(crate) bulks: Vec<Rc<BulkPlan>>,
    pub(crate) kernels: Vec<KernelDef>,
    /// `ScalarStmt` ops emitted (statements the lowering could not
    /// flatten). Zero for every current model — CI-gated.
    pub(crate) fallback_ops: usize,
    /// Owner of every statement tree the ops point into — see the
    /// module-level pointer invariant, checked by [`super::verify`].
    pub(crate) source: Rc<Vec<CompiledKernel>>,
}

/// Compile-time facts about an engine's lowered plan (the bench schema's
/// `plan_ops` / `lower_ms` / `interp_fallback_stmts` fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Instructions in the lowered program.
    pub plan_ops: usize,
    /// Statements that fell back to AST interpretation ops (0 ⇔
    /// everything lowered; CI-gated for all bench models).
    pub interp_fallback_stmts: usize,
    /// Wall-clock nanoseconds the lowering pass took at engine build.
    pub lower_ns: u64,
    /// Dead `Let` bindings the liveness pass eliminated at engine build
    /// (0 when `ExecOptions::optimize` is off).
    pub dead_ops_eliminated: usize,
    /// Register slots saved by liveness-based slot coalescing.
    pub slots_coalesced: usize,
    /// Wave bodies certified row-disjoint by the static parallel-safety
    /// certifier (wave GEMM bodies plus fused row passes).
    pub par_safe_waves: usize,
    /// Wave bodies the certifier refused (see
    /// `ExecStats::par_unsafe_by_reason` for the breakdown).
    pub par_unsafe_waves: usize,
    /// Steps in the specialized direct-threaded dispatch table (0 with
    /// `ExecOptions::threaded` off).
    pub threaded_ops: usize,
    /// Runs of ≥ 2 adjacent straight-line ops the specializer fused
    /// into single step closures.
    pub fused_scalar_runs: usize,
    /// Wall-clock nanoseconds the specializer took at engine build.
    pub specialize_ns: u64,
}

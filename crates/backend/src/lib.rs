//! Execution backends and device models for the Cortex compiler.
//!
//! TVM would JIT lowered programs to CUDA or LLVM; this reproduction
//! executes the ILIR directly ([`exec`]) while *measuring* everything a
//! hardware run would be characterized by — kernel launches, synchronization
//! barriers, global-memory traffic, floating-point work, on-chip usage —
//! into a [`profile::Profile`]. A [`device::DeviceSpec`] then converts the
//! profile into a latency estimate with a roofline-style model (Appendix C
//! of the paper), for the V100-, CascadeLake- and Graviton2-like targets of
//! Table 3.
//!
//! This split (exact execution + measured counters + analytic device
//! model) is the substitution documented in DESIGN.md: absolute numbers
//! differ from the paper's testbed, but the *mechanisms* that produce every
//! comparison — launch overheads, fusion, persistence, batching width,
//! barrier counts — are reproduced and measured rather than assumed.
//!
//! # Example
//!
//! ```
//! use cortex_backend::{device::DeviceSpec, exec, params::Params};
//! use cortex_core::lower::{lower, StructureInfo};
//! use cortex_core::ra::{RaGraph, RaSchedule};
//! use cortex_ds::{datasets, linearizer::Linearizer};
//!
//! // Fig. 1 model: rnn(n) = tanh(rnn(left) + rnn(right)), Emb at leaves.
//! let vocab = datasets::VOCAB_SIZE as usize;
//! let mut g = RaGraph::new();
//! let emb = g.input("Emb", &[vocab, 4]);
//! let ph = g.placeholder("rnn_ph", &[4]);
//! let leaf = g.compute("leaf", &[4], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
//! let lh = g.compute("lh", &[4], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
//! let rh = g.compute("rh", &[4], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
//! let rec = g.compute("rec", &[4], |c| {
//!     c.read(lh, &[c.node(), c.axis(0)]).add(c.read(rh, &[c.node(), c.axis(0)])).tanh()
//! });
//! let body = g.if_then_else("body", leaf, rec).unwrap();
//! let rnn = g.recursion(ph, body).unwrap();
//! g.mark_output(rnn);
//!
//! let program = lower(&g, &RaSchedule::default(), StructureInfo { max_children: 2 }).unwrap();
//! let tree = datasets::perfect_binary_tree(3, 0);
//! let lin = Linearizer::new().linearize(&tree).unwrap();
//! let mut params = Params::new();
//! params.set("Emb", cortex_tensor::Tensor::random(&[vocab, 4], 0.5, 1));
//!
//! let result = exec::run(&program, &lin, &params, &DeviceSpec::v100()).unwrap();
//! assert_eq!(result.outputs[&rnn.id()].shape().dims(), &[15, 4]);
//! assert!(result.latency.total_s > 0.0);
//! ```

pub mod device;
pub mod exec;
pub mod fastdot;
pub mod params;
pub mod persist;
pub mod profile;
mod wave;

pub use device::DeviceSpec;
pub use exec::{run, Engine, ExecError, ExecOptions, ExecStats, RunResult};
pub use params::Params;
pub use profile::Profile;

//! Batched wavefront execution: compile-time analysis.
//!
//! The scalar executor evaluates each recognized reduction ([`DotPlan`])
//! once **per output element**: a wave of `R` nodes × `H` hidden units
//! costs `R·H` independent stream resolutions and dot loops. This module
//! extends the `fastdot` pattern match from "one reduction row" to "one
//! reduction wave": for a parallel `d_batch` node loop it finds every
//! reduction of the shape
//!
//! ```text
//! for n_idx in 0..wave_len:          # d_batch, parallel
//!   node = base + n_idx
//!   for i in 0..H:                   # d_hidden, vectorized
//!     t[…, i] = f( Σ_k W[i,k] · X(node, k), … )
//! ```
//!
//! and emits a [`SumSite`]: the node-invariant *weight* operand `W`
//! (packed once per run into a contiguous `[H][K]` matrix) and the
//! node-dependent *row* operands `X` (guards and child-sums resolved once
//! per node, gathered into a packed `[R][K]` matrix). The executor then
//! computes the whole wave with one cache-blocked NT GEMM from
//! `cortex-tensor` instead of `R·H` interpreted dots, and serves each
//! `Sum` evaluation from the result matrix.
//!
//! The analysis is purely syntactic and conservative: any shape outside
//! the recognized form (rank-2 features, feature-dependent guards, loads
//! in reduction-invariant factors, …) is skipped, and the executor falls
//! back to the scalar interpreter for that site. Crucially, every
//! accepted site preserves the *exact* `Profile` accounting of the scalar
//! path — see the executor's wave-memo bookkeeping.

use std::collections::HashMap;
use std::rc::Rc;

use cortex_core::expr::{BoolExpr, IdxExpr, TensorId, Ufn, ValExpr, Var};
use cortex_core::ilir::{LoopKind, Stmt};

use crate::fastdot::{self, bool_uses_var, idx_uses_var, val_uses_var, Operand};

/// A batched execution plan for one `d_batch` parallel node loop.
#[derive(Debug)]
pub(crate) struct WavePlan {
    /// Slot of the loop variable (`n_idx`).
    pub n_idx_slot: usize,
    /// The `let node = value` binding directly under the loop, if any.
    pub node_let: Option<(usize, IdxExpr)>,
    /// Reductions executable as one GEMM per wave.
    pub sites: Vec<SumSite>,
    /// Stacking groups over `sites`: each group runs as **one** GEMM.
    pub groups: Vec<SiteGroup>,
}

/// How the members of a [`SiteGroup`] share one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GroupKind {
    /// Members gather identical operand rows (TreeLSTM's i/o/u gates all
    /// consume the child-sum row): the rows are packed **once** and the
    /// per-site weights are stacked vertically into one `[ΣH]×[K]`
    /// matrix. A singleton group is the ordinary one-site GEMM.
    SharedRows,
    /// Members read the **same** weight window over different rows (the
    /// per-child forget gates both multiply `U_f`): their gathered rows
    /// are stacked into one `[G·R]×[K]` matrix against the one packed
    /// weight.
    SharedWeight,
}

/// A set of sites executed as one stacked GEMM.
#[derive(Debug)]
pub(crate) struct SiteGroup {
    /// Sharing shape of the group.
    pub kind: GroupKind,
    /// Indices into [`WavePlan::sites`].
    pub members: Vec<usize>,
}

/// The second (row-side) feature dimension of a rank-2 site: in
/// `Σ_k W[i,k]·M(n,k,j)` the `j` loop rides the *gathered rows*, not the
/// packed weight, so the site gathers `wave_len·H_j` rows and runs one
/// GEMM per wave where the scalar path would run a per-node matrix
/// product (MV-RNN's `A(n) = W_M·A_child` recursions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InnerDim {
    /// Slot of the row-side feature variable (`j`).
    pub slot: usize,
    /// Its extent `H_j`.
    pub extent: usize,
}

/// One batched reduction site.
#[derive(Debug)]
pub(crate) struct SumSite {
    /// Identity of the `Sum` body (`&*body` address), shared with the
    /// executor's plan cache and wave memo.
    pub key: usize,
    /// Reduction extent `K` (node- and feature-invariant).
    pub extent: IdxExpr,
    /// Feature loop variable slot (`i`).
    pub feat_slot: usize,
    /// Feature extent `H`.
    pub feat_extent: usize,
    /// Row-side feature dimension of a rank-2 site, if any.
    pub inner: Option<InnerDim>,
    /// How many stored elements the scalar path serves from one gathered
    /// row: `H_i` for rank-1 and rank-2 sites, `H_i·H_j` for a
    /// `j`-invariant reduction nested under a two-level feature loop
    /// (one row per node serves the whole `i×j` tile). This is the
    /// accounting replay factor for the packing phase.
    pub served_per_row: usize,
    /// The feature-dependent operand, packed once per run.
    pub weight: WeightRef,
    /// The remaining (node-dependent or invariant) operands, gathered
    /// per node into the packed row matrix.
    pub rest: Vec<Operand>,
    /// Conjunction of the value-level `Select` guards wrapping this
    /// `Sum` (the DAG formulation `select(slot < nc(n), Σ_k …, 0)`),
    /// as `(cond, branch)` pairs: the site is reached when every `cond`
    /// evaluates to its `branch` (false = the `otherwise` arm). The
    /// scalar path reaches the reduction only when every guard holds,
    /// so the gather phase evaluates them **silently** (no profile
    /// counters — the interpreter still walks each `Select` per served
    /// element and pays its counters there) and packs a zero row for
    /// guarded-off nodes, whose result slots are never read (a
    /// guarded-off node's `Select` takes the other arm before its `Sum`
    /// — and thus the wave memo — is ever consulted).
    pub select_guards: Vec<(BoolExpr, bool)>,
}

/// The node-invariant, feature-dependent operand of a site: a plain load
/// `W[…, i, …, k, …]` whose other indices are wave-invariant.
#[derive(Debug)]
pub(crate) struct WeightRef {
    /// The parameter (or global) tensor read.
    pub tensor: TensorId,
    /// Full index expressions; positions `i_pos` / `k_pos` are the
    /// feature and reduction variables.
    pub index: Vec<IdxExpr>,
    /// Index position carrying the feature variable.
    pub i_pos: usize,
    /// Index position carrying the reduction variable.
    pub k_pos: usize,
}

/// Analyzes compiled kernel bodies, returning wave plans keyed by the
/// address of their `For` statement. With `stack` set, sites with
/// compatible signatures are grouped into stacked GEMMs; without it each
/// site forms its own singleton group (the pre-stacking behavior, kept
/// as an executor option so the two paths can cross-check each other).
///
/// Statement addresses are stable for the lifetime of the compiled
/// kernels (the bodies are never mutated), which is the same keying
/// discipline the executor's reduction plan cache uses.
pub(crate) fn analyze(bodies: &[&[Stmt]], stack: bool) -> HashMap<usize, WavePlan> {
    let mut plans = HashMap::new();
    for body in bodies {
        for stmt in *body {
            visit(stmt, stack, &mut plans);
        }
    }
    plans
}

fn visit(stmt: &Stmt, stack: bool, plans: &mut HashMap<usize, WavePlan>) {
    if let Stmt::For {
        var,
        kind: LoopKind::Parallel,
        dim: Some(d),
        body,
        ..
    } = stmt
    {
        if d.0 == "d_batch" {
            if let Some(plan) = plan_wave(*var, body, stack) {
                plans.insert(stmt as *const Stmt as usize, plan);
                return; // sites under this loop are covered by the plan
            }
        }
    }
    match stmt {
        Stmt::For { body, .. } | Stmt::Let { body, .. } => {
            body.iter().for_each(|s| visit(s, stack, plans));
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            then_branch.iter().for_each(|s| visit(s, stack, plans));
            else_branch.iter().for_each(|s| visit(s, stack, plans));
        }
        Stmt::Store { .. } | Stmt::Barrier => {}
    }
}

/// Builds a plan for one `d_batch` loop body, or `None` if nothing under
/// it batches.
fn plan_wave(n_idx: Var, body: &[Stmt], stack: bool) -> Option<WavePlan> {
    let (node_let, stmts): (Option<(usize, IdxExpr)>, &[Stmt]) = match body {
        [Stmt::Let { var, value, body }] => {
            (Some((var.id() as usize, value.clone())), body.as_slice())
        }
        other => (None, other),
    };
    let node = node_let
        .as_ref()
        .map(|(slot, _)| Var::from_raw(*slot as u32));
    // The packing phase evaluates the node binding once per row on top of
    // the loop's own per-iteration evaluation; like the reduction extent,
    // it must therefore be free of counter-bumping uninterpreted
    // functions or the bit-for-bit Profile contract breaks.
    if let Some((_, value)) = &node_let {
        if idx_has_counting_ufn(value) {
            return None;
        }
    }
    // Intra-wave dependence check: the packing phase reads operand rows
    // for the *whole* wave before any iteration's stores run, so a site
    // may not read a tensor this loop writes (same-iteration producers
    // like the refactored GRU's hsum, or cross-iteration node/child
    // aliasing). Collect every store target under the loop.
    let mut stored = std::collections::HashSet::new();
    for stmt in stmts {
        collect_stored(stmt, &mut stored);
    }
    let mut sites = Vec::new();
    for stmt in stmts {
        // Feature loops directly under the node binding are candidates:
        // a single `for i { store }` (vector sites) or a two-level
        // `for i { for j { store } }` nest (matrix sites — MV-RNN's
        // per-node products). Everything else simply runs through the
        // scalar interpreter.
        let Stmt::For {
            var: outer,
            extent: IdxExpr::Const(ho),
            body: inner,
            ..
        } = stmt
        else {
            continue;
        };
        if *ho <= 0 {
            continue;
        }
        let mut guards = Vec::new();
        match inner.as_slice() {
            [Stmt::Store { value, .. }] => {
                collect_sites(
                    value,
                    n_idx,
                    node,
                    (*outer, *ho as usize),
                    None,
                    &stored,
                    &mut guards,
                    &mut sites,
                );
            }
            [Stmt::For {
                var: inner_var,
                extent: IdxExpr::Const(hi),
                body: innermost,
                ..
            }] if *hi > 0 => {
                let [Stmt::Store { value, .. }] = innermost.as_slice() else {
                    continue;
                };
                collect_sites(
                    value,
                    n_idx,
                    node,
                    (*outer, *ho as usize),
                    Some((*inner_var, *hi as usize)),
                    &stored,
                    &mut guards,
                    &mut sites,
                );
            }
            _ => {}
        }
    }
    if sites.is_empty() {
        None
    } else {
        let groups = group_sites(&sites, stack);
        Some(WavePlan {
            n_idx_slot: n_idx.id() as usize,
            node_let,
            sites,
            groups,
        })
    }
}

// ---------------------------------------------------------------------
// Gate stacking: site grouping by structural signature
// ---------------------------------------------------------------------

/// Partitions the sites of one wave into stacking groups.
///
/// Pass 1 groups sites whose reduction extent and row operands are
/// structurally equal modulo each site's own reduction variable
/// ([`GroupKind::SharedRows`] — one gather, vertically stacked weights).
/// Pass 2 groups leftover singletons that read the same weight window
/// ([`GroupKind::SharedWeight`] — one packed weight, row-stacked
/// gathers). Whatever remains is a singleton `SharedRows` group, which
/// the executor runs exactly like the pre-stacking per-site GEMM.
fn group_sites(sites: &[SumSite], stack: bool) -> Vec<SiteGroup> {
    if !stack {
        return (0..sites.len())
            .map(|i| SiteGroup {
                kind: GroupKind::SharedRows,
                members: vec![i],
            })
            .collect();
    }
    let mut groups = Vec::new();
    let mut grouped = vec![false; sites.len()];
    let mut singles = Vec::new();
    for i in 0..sites.len() {
        if grouped[i] {
            continue;
        }
        let mut members = vec![i];
        for j in i + 1..sites.len() {
            if !grouped[j] && rows_sig_equal(&sites[i], &sites[j]) {
                grouped[j] = true;
                members.push(j);
            }
        }
        grouped[i] = true;
        if members.len() > 1 {
            groups.push(SiteGroup {
                kind: GroupKind::SharedRows,
                members,
            });
        } else {
            singles.push(i);
        }
    }
    let mut single_grouped = vec![false; singles.len()];
    for a in 0..singles.len() {
        if single_grouped[a] {
            continue;
        }
        let i = singles[a];
        let mut members = vec![i];
        // Rank-2 sites gather `wave_len·H_j` rows per member; stacking
        // them row-wise would break the fixed `member·wave_len` block
        // layout, so they stay singleton (their GEMM is already large).
        if sites[i].inner.is_none() {
            for (b, &j) in singles.iter().enumerate().skip(a + 1) {
                if !single_grouped[b]
                    && sites[j].inner.is_none()
                    && weight_sig_equal(&sites[i], &sites[j])
                {
                    single_grouped[b] = true;
                    members.push(j);
                }
            }
        }
        single_grouped[a] = true;
        groups.push(SiteGroup {
            kind: if members.len() > 1 {
                GroupKind::SharedWeight
            } else {
                GroupKind::SharedRows
            },
            members,
        });
    }
    groups
}

/// Whether two sites gather identical operand rows: equal reduction
/// extents, the same row-side feature dimension (rank-2 sites gather one
/// row per `(node, j)` pair — they may only share rows with sites using
/// the *same* `j` loop), and pairwise structurally-equal `rest` operands
/// (modulo each site's own reduction variable). Such sites share one
/// packed row matrix; their weights stack vertically.
fn rows_sig_equal(a: &SumSite, b: &SumSite) -> bool {
    a.extent == b.extent
        && a.inner == b.inner
        // Shared-rows members share one per-row metadata entry, so their
        // zero patterns — and therefore their `Select` guards — must
        // coincide.
        && a.select_guards == b.select_guards
        && a.rest.len() == b.rest.len()
        && a.rest
            .iter()
            .zip(&b.rest)
            .all(|(x, y)| operand_sig_equal(x, y))
}

/// Whether two sites read the same weight window: same tensor, same
/// feature/reduction index positions and extents, and equal
/// wave-invariant indices everywhere else. Such sites share one packed
/// weight; their gathered rows stack.
fn weight_sig_equal(a: &SumSite, b: &SumSite) -> bool {
    let (wa, wb) = (&a.weight, &b.weight);
    a.extent == b.extent
        && a.feat_extent == b.feat_extent
        && wa.tensor == wb.tensor
        && wa.i_pos == wb.i_pos
        && wa.k_pos == wb.k_pos
        && wa.index.len() == wb.index.len()
        && wa
            .index
            .iter()
            .zip(&wb.index)
            .enumerate()
            .all(|(d, (x, y))| d == wa.i_pos || d == wa.k_pos || x == y)
}

/// Structural operand equality ignoring each side's own reduction
/// variable (which sits at `k_pos` of every load, and nowhere else —
/// `fastdot::compile` guarantees guards, scalars, and the remaining
/// index positions are reduction-invariant).
pub(crate) fn operand_sig_equal(a: &Operand, b: &Operand) -> bool {
    match (a, b) {
        (
            Operand::Load {
                tensor: ta,
                index: ia,
                k_pos: ka,
            },
            Operand::Load {
                tensor: tb,
                index: ib,
                k_pos: kb,
            },
        ) => {
            ta == tb
                && ka == kb
                && ia.len() == ib.len()
                && ia
                    .iter()
                    .zip(ib)
                    .enumerate()
                    .all(|(d, (x, y))| d == *ka || x == y)
        }
        (Operand::Add(pa), Operand::Add(pb)) => {
            pa.len() == pb.len() && pa.iter().zip(pb).all(|(x, y)| operand_sig_equal(x, y))
        }
        (
            Operand::Guarded {
                cond: ca,
                inner: xa,
            },
            Operand::Guarded {
                cond: cb,
                inner: xb,
            },
        ) => ca == cb && operand_sig_equal(xa, xb),
        (Operand::Scalar(ea), Operand::Scalar(eb)) => ea == eb,
        _ => false,
    }
}

/// Records every tensor stored under a statement.
fn collect_stored(stmt: &Stmt, out: &mut std::collections::HashSet<TensorId>) {
    stmt.visit(&mut |s| {
        if let Stmt::Store { tensor, .. } = s {
            out.insert(*tensor);
        }
    });
}

/// Whether an operand's loads are safe to gather before the wave loop
/// runs, given the set of tensors the loop stores to.
fn operand_reads_safe(
    op: &Operand,
    stored: &std::collections::HashSet<TensorId>,
    n_idx: Var,
    node: Option<Var>,
) -> bool {
    let uses_wave_var =
        |e: &IdxExpr| idx_uses_var(e, n_idx) || node.is_some_and(|nv| idx_uses_var(e, nv));
    match op {
        Operand::Load {
            tensor,
            index,
            k_pos,
        } => {
            if !stored.contains(tensor) {
                return true; // read-only within this loop
            }
            // Stored tensor: every wave-dependent index must be a child
            // indirection rooted at the wave's node (a strictly earlier
            // wave's row — the invariant the linearizer guarantees), and
            // the row must actually vary with the node (a fixed row of a
            // stored tensor could alias any iteration's store).
            let mut via_child = false;
            for (d, e) in index.iter().enumerate() {
                if d == *k_pos {
                    continue;
                }
                if uses_wave_var(e) {
                    if is_wave_child_indirection(e, n_idx, node) {
                        via_child = true;
                    } else {
                        return false;
                    }
                }
            }
            via_child
        }
        Operand::Add(parts) => parts
            .iter()
            .all(|p| operand_reads_safe(p, stored, n_idx, node)),
        // Guard conditions read no tensors.
        Operand::Guarded { inner, .. } => operand_reads_safe(inner, stored, n_idx, node),
        // Scalars are pure (checked separately): no loads.
        Operand::Scalar(_) => true,
    }
}

/// Whether an index is a `Child` indirection chain that bottoms out at
/// the wave's own node variable — `child(node)`, `child(child(node))`, …
/// Anything else (`child(node) + 1`, `child(word(node))`) could alias a
/// row this wave writes, so it is not accepted.
pub(crate) fn is_wave_child_indirection(e: &IdxExpr, n_idx: Var, node: Option<Var>) -> bool {
    match e {
        IdxExpr::Ufn(Ufn::Child(_), args) => match args.first() {
            Some(IdxExpr::Var(v)) => *v == n_idx || node == Some(*v),
            Some(inner) => is_wave_child_indirection(inner, n_idx, node),
            None => false,
        },
        _ => false,
    }
}

/// Collects batchable top-level `Sum`s from a stored value expression.
///
/// `outer`/`inner` are the feature loop variables of the store's loop
/// nest (with extents). Which of them is the weight-side feature `i` is
/// decided per site: the variable the weight operand rides; the other
/// (if used) becomes the row-side `j` of a rank-2 site.
///
/// `guards` is the stack of value-level `Select` conditions (with the
/// branch taken) on the path from the store's root to the current
/// subexpression: a `Sum` found here is only evaluated by the scalar
/// path when every guard holds, so the site records them and the gather
/// phase skips (zero-fills) rows whose guards fail — including their
/// child indirections, which may be `NO_CHILD` on guarded-off nodes.
#[allow(clippy::too_many_arguments)]
fn collect_sites(
    e: &ValExpr,
    n_idx: Var,
    node: Option<Var>,
    outer: (Var, usize),
    inner: Option<(Var, usize)>,
    stored: &std::collections::HashSet<TensorId>,
    guards: &mut Vec<(BoolExpr, bool)>,
    out: &mut Vec<SumSite>,
) {
    match e {
        ValExpr::Sum { var, extent, body } => {
            let site = plan_site(
                *var, extent, body, n_idx, node, outer, inner, stored, guards,
            )
            .or_else(|| {
                // The weight may ride the inner loop instead (the
                // outer var then becomes the row-side dimension).
                inner.and_then(|inner_dim| {
                    plan_site(
                        *var,
                        extent,
                        body,
                        n_idx,
                        node,
                        inner_dim,
                        Some(outer),
                        stored,
                        guards,
                    )
                })
            });
            if let Some(site) = site {
                out.push(site);
            }
            // Nested sums inside `body` are part of this reduction (and
            // reject the fastdot match anyway): do not descend.
        }
        ValExpr::Unary(_, a) => collect_sites(a, n_idx, node, outer, inner, stored, guards, out),
        ValExpr::Bin(_, a, b) => {
            collect_sites(a, n_idx, node, outer, inner, stored, guards, out);
            collect_sites(b, n_idx, node, outer, inner, stored, guards, out);
        }
        // A `Sum` under a value-level `Select` is evaluated only when its
        // branch is taken (the DAG formulation `select(guard, Σ_k …, 0)`).
        // Descend with the condition pushed onto the guard stack: the
        // site's gather phase then resolves operand rows only for nodes
        // whose guards hold — guarded-off nodes get a zero row that the
        // interpreter never reads (their `Select` takes the other arm),
        // and no accounting is replayed for them. The condition must be
        // feature-invariant so one evaluation decides the whole row.
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            let feat_ok = !bool_uses_var(cond, outer.0)
                && !inner.is_some_and(|(jv, _)| bool_uses_var(cond, jv));
            if feat_ok {
                guards.push((cond.clone(), true));
                collect_sites(then, n_idx, node, outer, inner, stored, guards, out);
                guards.pop();
                guards.push((cond.clone(), false));
                collect_sites(otherwise, n_idx, node, outer, inner, stored, guards, out);
                guards.pop();
            }
        }
        ValExpr::Const(_) | ValExpr::Load { .. } => {}
    }
}

/// Tries to turn one `Sum` into a [`SumSite`] with `feat` as the
/// weight-side feature variable. `other` is the remaining loop variable
/// of a two-level feature nest, if any: the weight must not ride it, and
/// if the row operands do, the site is rank-2 (`inner` set) and gathers
/// one row per `(node, j)` pair.
#[allow(clippy::too_many_arguments)]
fn plan_site(
    k: Var,
    extent: &IdxExpr,
    body: &ValExpr,
    n_idx: Var,
    node: Option<Var>,
    (feat, h): (Var, usize),
    other: Option<(Var, usize)>,
    stored: &std::collections::HashSet<TensorId>,
    guards: &[(BoolExpr, bool)],
) -> Option<SumSite> {
    // The extent must be loop-invariant (evaluable once per wave) and
    // free of counting uninterpreted functions, so evaluating it in the
    // packing phase adds no profile counters the scalar path would not.
    if idx_uses_var(extent, feat)
        || idx_uses_var(extent, n_idx)
        || node.is_some_and(|nv| idx_uses_var(extent, nv))
        || other.is_some_and(|(jv, _)| idx_uses_var(extent, jv))
        || idx_has_counting_ufn(extent)
    {
        return None;
    }
    let plan = fastdot::compile(k, body)?;
    // Reject reductions that may read something this wave loop writes:
    // the packing phase gathers every node's rows *before* any iteration
    // stores. Reads of a stored tensor are only safe through a child
    // indirection — the wavefront schedule places children in strictly
    // earlier waves, so those rows are final (this is exactly the fused
    // TreeLSTM shape). A bare same-node read (the refactored GRU's hsum)
    // is a genuine intra-wave dependence and falls back to the scalar
    // path.
    if !plan
        .operands
        .iter()
        .all(|op| operand_reads_safe(op, stored, n_idx, node))
    {
        return None;
    }
    // Exactly one operand may depend on the feature variable, and it must
    // be a plain strided load — the weight matrix.
    let mut weight: Option<WeightRef> = None;
    let mut rest = Vec::new();
    for op in plan.operands {
        if !operand_uses_var(&op, feat) {
            // Row operands are re-resolved once per node; loads hiding in
            // reduction-invariant factors would need per-element load
            // accounting, so only pure scalars pass.
            if let Operand::Scalar(e) = &op {
                if !val_is_pure(e) {
                    return None;
                }
            }
            rest.push(op);
            continue;
        }
        if weight.is_some() {
            return None; // two feature-dependent operands (e.g. MV-RNN)
        }
        let Operand::Load {
            tensor,
            index,
            k_pos,
        } = op
        else {
            return None;
        };
        let mut i_pos = None;
        for (d, ix) in index.iter().enumerate() {
            if d == k_pos {
                continue;
            }
            match ix {
                IdxExpr::Var(v) if *v == feat => {
                    if i_pos.is_some() {
                        return None;
                    }
                    i_pos = Some(d);
                }
                ix_other => {
                    // Remaining positions must be wave- and row-feature-
                    // invariant so the packed weight is shared by every
                    // node (and every `j` row) of every wave, and
                    // counter-free because the packing phase evaluates
                    // them outside the scalar path's cadence.
                    if idx_uses_var(ix_other, feat)
                        || idx_uses_var(ix_other, n_idx)
                        || node.is_some_and(|nv| idx_uses_var(ix_other, nv))
                        || other.is_some_and(|(jv, _)| idx_uses_var(ix_other, jv))
                        || idx_has_counting_ufn(ix_other)
                    {
                        return None;
                    }
                }
            }
        }
        weight = Some(WeightRef {
            tensor,
            index,
            i_pos: i_pos?,
            k_pos,
        });
    }
    // Row operands riding the other feature loop make this a rank-2
    // site: one gathered row per `(node, j)`. A `j`-invariant reduction
    // under a two-level nest gathers one row per node but serves the
    // whole `i×j` tile from it (the scalar path re-resolves per
    // element, hence the larger replay factor).
    let uses_other = other.is_some_and(|(jv, _)| rest.iter().any(|op| operand_uses_var(op, jv)));
    let (inner, served_per_row) = match (other, uses_other) {
        (Some((jv, hj)), true) => (
            Some(InnerDim {
                slot: jv.id() as usize,
                extent: hj,
            }),
            h,
        ),
        (Some((_, hj)), false) => (None, h * hj),
        (None, _) => (None, h),
    };
    Some(SumSite {
        key: body as *const ValExpr as usize,
        extent: extent.clone(),
        feat_slot: feat.id() as usize,
        feat_extent: h,
        inner,
        served_per_row,
        weight: weight?,
        rest,
        select_guards: guards.to_vec(),
    })
}

fn operand_uses_var(op: &Operand, v: Var) -> bool {
    match op {
        Operand::Load { index, .. } => index.iter().any(|i| idx_uses_var(i, v)),
        Operand::Add(parts) => parts.iter().any(|p| operand_uses_var(p, v)),
        Operand::Guarded { cond, inner } => bool_uses_var(cond, v) || operand_uses_var(inner, v),
        Operand::Scalar(e) => val_uses_var(e, v),
    }
}

/// Whether evaluating this value can touch memory or profile counters
/// beyond plain flops (loads, selects, nested reductions).
fn val_is_pure(e: &ValExpr) -> bool {
    match e {
        ValExpr::Const(_) => true,
        ValExpr::Load { .. } | ValExpr::Sum { .. } | ValExpr::Select { .. } => false,
        ValExpr::Unary(_, a) => val_is_pure(a),
        ValExpr::Bin(_, a, b) => val_is_pure(a) && val_is_pure(b),
    }
}

// ---------------------------------------------------------------------
// Cross-request super-waves: merging per-request wave GEMMs
// ---------------------------------------------------------------------

/// Identity of a mergeable wave GEMM: two requests' wave instances fuse
/// into one super-wave GEMM exactly when they are the *same* stacking
/// group of the *same* planned loop with the same packed-weight shape —
/// the result matrices then differ only in which rows belong to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SuperKey {
    /// Address of the planned `For` statement.
    pub for_key: usize,
    /// Ordinal of the stacking group within its [`WavePlan`].
    pub group_ordinal: usize,
    /// Group leader's site key.
    pub leader_key: usize,
    /// GEMM output columns (ΣH of the stacked sites).
    pub cols: usize,
    /// Reduction extent.
    pub k_len: usize,
}

/// One request's share of a super-wave GEMM.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Registrant {
    /// Index of the request in the `run_many` batch.
    pub request: usize,
    /// Index into that request's active-group list.
    pub group_idx: usize,
    /// First row of the request's block in the merged matrices.
    pub base_row: usize,
}

/// One pending super-wave GEMM: merged gathered rows from every
/// registered request against one shared packed weight.
pub(crate) struct SuperEntry {
    pub key: SuperKey,
    /// The shared packed weight (from the engine's weight cache).
    pub weight: Rc<Vec<f32>>,
    /// Merged row matrix, `[total_rows][k_len]` row-major.
    pub rows: Vec<f32>,
    pub total_rows: usize,
    pub registrants: Vec<Registrant>,
}

/// Accumulates per-request wave GEMMs between executor rendezvous
/// points and merges compatible ones ([`merge_plans`]) so one GEMM
/// serves every queued request at that wave depth.
#[derive(Default)]
pub(crate) struct SuperWaveAcc {
    entries: Vec<SuperEntry>,
    pool: Vec<Vec<f32>>,
}

/// Finds the entry a wave instance merges into, or opens a new one.
/// Merging requires the same [`SuperKey`] *and* the same packed-weight
/// allocation (`Rc` identity): requests whose weights diverged (a
/// precompute-written weight with different store generations) keep
/// separate GEMMs, which is always correct — merging is opportunistic.
pub(crate) fn merge_plans(
    entries: &mut Vec<SuperEntry>,
    pool: &mut Vec<Vec<f32>>,
    key: SuperKey,
    weight: &Rc<Vec<f32>>,
) -> usize {
    if let Some(i) = entries
        .iter()
        .position(|e| e.key == key && Rc::ptr_eq(&e.weight, weight))
    {
        return i;
    }
    entries.push(SuperEntry {
        key,
        weight: weight.clone(),
        rows: pool.pop().unwrap_or_default(),
        total_rows: 0,
        registrants: Vec::new(),
    });
    entries.len() - 1
}

impl SuperWaveAcc {
    /// Registers `n_rows` gathered rows for `request`, returning the
    /// entry index and the block's base row. The row storage is zeroed
    /// and ready to be packed via [`SuperWaveAcc::rows_mut`].
    pub fn register(
        &mut self,
        key: SuperKey,
        weight: &Rc<Vec<f32>>,
        n_rows: usize,
        request: usize,
        group_idx: usize,
    ) -> (usize, usize) {
        let e = merge_plans(&mut self.entries, &mut self.pool, key, weight);
        let entry = &mut self.entries[e];
        let base = entry.total_rows;
        entry.total_rows += n_rows;
        entry.rows.resize(entry.total_rows * key.k_len, 0.0);
        entry.registrants.push(Registrant {
            request,
            group_idx,
            base_row: base,
        });
        (e, base)
    }

    /// The mutable row block `[base..base+n_rows]` of an entry.
    pub fn rows_mut(&mut self, entry: usize, base: usize, n_rows: usize) -> &mut [f32] {
        let k = self.entries[entry].key.k_len;
        &mut self.entries[entry].rows[base * k..(base + n_rows) * k]
    }

    /// Whether any GEMMs are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the pending entries for the flush phase.
    pub fn take_entries(&mut self) -> Vec<SuperEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Returns a flushed entry's row buffer to the pool.
    pub fn recycle(&mut self, mut rows: Vec<f32>) {
        rows.clear();
        self.pool.push(rows);
    }
}

/// Whether an index expression contains an uninterpreted function that
/// bumps profile counters when evaluated (`NumChildren`).
pub(crate) fn idx_has_counting_ufn(e: &IdxExpr) -> bool {
    match e {
        IdxExpr::Const(_) | IdxExpr::Var(_) | IdxExpr::Rt(_) => false,
        IdxExpr::Ufn(f, args) => {
            matches!(f, Ufn::NumChildren) || args.iter().any(idx_has_counting_ufn)
        }
        IdxExpr::Bin(_, a, b) => idx_has_counting_ufn(a) || idx_has_counting_ufn(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_core::expr::TensorId;
    use cortex_core::ilir::DimName;

    fn v(id: u32) -> Var {
        Var::from_raw(id)
    }

    /// Builds the canonical wave loop: for n_idx { let node = n_idx {
    /// for i in 0..h { t[node,i] = tanh(sum_k W[i,k] * s[node,k] + b[i]) } } }
    fn wave_loop(h: i64, k_extent: i64) -> Stmt {
        let (n_idx, node, i, k) = (v(0), v(1), v(2), v(3));
        let sum = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(k_extent),
            body: Box::new(
                ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)]).mul(
                    ValExpr::load(TensorId(1), vec![IdxExpr::Var(node), IdxExpr::Var(k)]),
                ),
            ),
        };
        let value = sum
            .add(ValExpr::load(TensorId(2), vec![IdxExpr::Var(i)]))
            .tanh();
        Stmt::For {
            var: n_idx,
            extent: IdxExpr::Const(4),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Var(n_idx),
                body: vec![Stmt::For {
                    var: i,
                    extent: IdxExpr::Const(h),
                    kind: LoopKind::Vectorized,
                    dim: Some(DimName::feature(0)),
                    body: vec![Stmt::Store {
                        tensor: TensorId(3),
                        index: vec![IdxExpr::Var(node), IdxExpr::Var(i)],
                        value,
                    }],
                }],
            }],
        }
    }

    #[test]
    fn sum_under_value_level_select_is_planned_with_guard() {
        // select(guard, sum_k …, 0): the scalar interpreter evaluates the
        // reduction only when the branch is taken. The site is planned
        // with the condition recorded as a select guard, so the gather
        // phase zero-fills (and never resolves) rows whose guard fails —
        // child indirections that are NO_CHILD there are never touched.
        let (n_idx, node, i, k) = (v(0), v(1), v(2), v(3));
        let child = IdxExpr::Ufn(Ufn::Child(1), vec![IdxExpr::Var(node)]);
        let sum = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(4),
            body: Box::new(
                ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)])
                    .mul(ValExpr::load(TensorId(1), vec![child, IdxExpr::Var(k)])),
            ),
        };
        let value = ValExpr::Select {
            cond: cortex_core::expr::BoolExpr::Cmp(
                cortex_core::expr::CmpOp::Lt,
                IdxExpr::Const(1),
                IdxExpr::Ufn(Ufn::NumChildren, vec![IdxExpr::Var(node)]),
            ),
            then: Box::new(sum),
            otherwise: Box::new(ValExpr::Const(0.0)),
        };
        let stmt = Stmt::For {
            var: n_idx,
            extent: IdxExpr::Const(4),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Var(n_idx),
                body: vec![Stmt::For {
                    var: i,
                    extent: IdxExpr::Const(4),
                    kind: LoopKind::Vectorized,
                    dim: Some(DimName::feature(0)),
                    body: vec![Stmt::Store {
                        tensor: TensorId(2),
                        index: vec![IdxExpr::Var(node), IdxExpr::Var(i)],
                        value,
                    }],
                }],
            }],
        };
        let body = [stmt];
        let plans = analyze(&[&body], true);
        assert_eq!(plans.len(), 1, "the guarded sum must be planned");
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.sites.len(), 1);
        let site = &plan.sites[0];
        assert_eq!(site.select_guards.len(), 1);
        assert!(site.select_guards[0].1, "then-branch guard expects true");
    }

    #[test]
    fn feature_dependent_select_guard_is_not_planned() {
        // select(i < 2, sum_k …, 0): the guard rides the feature
        // variable, so one evaluation cannot decide the whole row — the
        // site stays on the scalar path.
        let (n_idx, node, i, k) = (v(0), v(1), v(2), v(3));
        let sum = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(4),
            body: Box::new(
                ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)]).mul(
                    ValExpr::load(TensorId(1), vec![IdxExpr::Var(node), IdxExpr::Var(k)]),
                ),
            ),
        };
        let value = ValExpr::Select {
            cond: cortex_core::expr::BoolExpr::Cmp(
                cortex_core::expr::CmpOp::Lt,
                IdxExpr::Var(i),
                IdxExpr::Const(2),
            ),
            then: Box::new(sum),
            otherwise: Box::new(ValExpr::Const(0.0)),
        };
        let stmt = Stmt::For {
            var: n_idx,
            extent: IdxExpr::Const(4),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Var(n_idx),
                body: vec![Stmt::For {
                    var: i,
                    extent: IdxExpr::Const(4),
                    kind: LoopKind::Vectorized,
                    dim: Some(DimName::feature(0)),
                    body: vec![Stmt::Store {
                        tensor: TensorId(2),
                        index: vec![IdxExpr::Var(node), IdxExpr::Var(i)],
                        value,
                    }],
                }],
            }],
        };
        let body = [stmt];
        assert!(analyze(&[&body], true).is_empty());
    }

    #[test]
    fn child_indirection_must_be_rooted_at_the_wave_node() {
        // `stored[child0(word(node)), k]`: the outer constructor is a
        // Child ufn, but the chain does not bottom out at the node
        // variable, so the earlier-wave invariant does not apply.
        let (n_idx, node) = (v(0), v(1));
        let rooted = IdxExpr::Ufn(Ufn::Child(0), vec![IdxExpr::Var(node)]);
        let nested = IdxExpr::Ufn(Ufn::Child(1), vec![rooted.clone()]);
        let unrooted = IdxExpr::Ufn(
            Ufn::Child(0),
            vec![IdxExpr::Ufn(Ufn::Word, vec![IdxExpr::Var(node)])],
        );
        assert!(is_wave_child_indirection(&rooted, n_idx, Some(node)));
        assert!(is_wave_child_indirection(&nested, n_idx, Some(node)));
        assert!(!is_wave_child_indirection(&unrooted, n_idx, Some(node)));
        assert!(!is_wave_child_indirection(
            &IdxExpr::Var(node),
            n_idx,
            Some(node)
        ));
    }

    #[test]
    fn canonical_gate_loop_is_planned() {
        let stmt = wave_loop(8, 8);
        let body = [stmt];
        let plans = analyze(&[&body], true);
        assert_eq!(plans.len(), 1);
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.sites.len(), 1);
        let site = &plan.sites[0];
        assert_eq!(site.feat_extent, 8);
        assert_eq!(site.weight.tensor, TensorId(0));
        assert_eq!(site.weight.i_pos, 0);
        assert_eq!(site.weight.k_pos, 1);
        assert_eq!(site.rest.len(), 1);
    }

    #[test]
    fn serial_or_unnamed_loops_are_not_planned() {
        let Stmt::For {
            var, extent, body, ..
        } = wave_loop(8, 8)
        else {
            unreachable!()
        };
        let serial = Stmt::For {
            var,
            extent,
            kind: LoopKind::Serial,
            dim: Some(DimName::node()),
            body,
        };
        let body = [serial];
        // The inner feature loop is reachable but the loop itself is not a
        // d_batch parallel loop, so nothing batches.
        assert!(analyze(&[&body], true).is_empty());
    }

    /// Builds a TreeLSTM-shaped wave loop: `gates` sites reading the
    /// shared row `s[node,k]` with distinct weights `W_g`, plus
    /// `forgets` sites reading `Uf[i,k] * h[child_s(node),k]` — the same
    /// weight tensor over different child rows. Each site has its own
    /// feature/reduction variables, as slot remapping produces.
    fn multi_gate_loop(gates: usize, forgets: usize, k_extent: i64) -> Stmt {
        let (n_idx, node) = (v(0), v(1));
        let mut body = Vec::new();
        let mut next_var = 2u32;
        for g in 0..gates + forgets {
            let i = v(next_var);
            let k = v(next_var + 1);
            next_var += 2;
            let weight = if g < gates {
                ValExpr::load(
                    TensorId(10 + g as u32),
                    vec![IdxExpr::Var(i), IdxExpr::Var(k)],
                )
            } else {
                ValExpr::load(TensorId(20), vec![IdxExpr::Var(i), IdxExpr::Var(k)])
            };
            let row = if g < gates {
                ValExpr::load(TensorId(1), vec![IdxExpr::Var(node), IdxExpr::Var(k)])
            } else {
                let child = IdxExpr::Ufn(Ufn::Child((g - gates) as u8), vec![IdxExpr::Var(node)]);
                ValExpr::load(TensorId(2), vec![child, IdxExpr::Var(k)])
            };
            let sum = ValExpr::Sum {
                var: k,
                extent: IdxExpr::Const(k_extent),
                body: Box::new(weight.mul(row)),
            };
            body.push(Stmt::For {
                var: i,
                extent: IdxExpr::Const(4),
                kind: LoopKind::Vectorized,
                dim: Some(DimName::feature(0)),
                body: vec![Stmt::Store {
                    tensor: TensorId(30 + g as u32),
                    index: vec![IdxExpr::Var(node), IdxExpr::Var(i)],
                    value: sum.tanh(),
                }],
            });
        }
        Stmt::For {
            var: n_idx,
            extent: IdxExpr::Const(4),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Var(n_idx),
                body,
            }],
        }
    }

    #[test]
    fn gates_sharing_rows_stack_and_forget_gates_share_weight() {
        let body = [multi_gate_loop(3, 2, 8)];
        let plans = analyze(&[&body], true);
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.sites.len(), 5);
        let shared_rows: Vec<_> = plan
            .groups
            .iter()
            .filter(|g| g.kind == GroupKind::SharedRows && g.members.len() > 1)
            .collect();
        let shared_weight: Vec<_> = plan
            .groups
            .iter()
            .filter(|g| g.kind == GroupKind::SharedWeight)
            .collect();
        assert_eq!(shared_rows.len(), 1, "i/o/u gates form one stacked group");
        assert_eq!(shared_rows[0].members.len(), 3);
        assert_eq!(shared_weight.len(), 1, "forget gates share one weight");
        assert_eq!(shared_weight[0].members.len(), 2);
        // 5 sites → 2 GEMMs per wave.
        assert_eq!(plan.groups.len(), 2);
        // Every site appears in exactly one group.
        let mut seen: Vec<usize> = plan.groups.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stacking_disabled_yields_singleton_groups() {
        let body = [multi_gate_loop(3, 2, 8)];
        let plans = analyze(&[&body], false);
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.groups.len(), 5);
        assert!(plan
            .groups
            .iter()
            .all(|g| g.kind == GroupKind::SharedRows && g.members.len() == 1));
    }

    #[test]
    fn canonical_single_gate_is_a_singleton_group() {
        let body = [wave_loop(8, 8)];
        let plans = analyze(&[&body], true);
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].members, vec![0]);
    }

    /// Builds an MV-RNN-shaped rank-2 wave loop:
    /// `for i { for j { A[node,i,j] = sum_k WM[i,k] * M[child0(node),k,j] } }`.
    fn rank2_loop(hi: i64, hj: i64, k_extent: i64) -> Stmt {
        let (n_idx, node, i, j, k) = (v(0), v(1), v(2), v(3), v(4));
        let child = IdxExpr::Ufn(Ufn::Child(0), vec![IdxExpr::Var(node)]);
        let sum = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(k_extent),
            body: Box::new(
                ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)]).mul(
                    ValExpr::load(TensorId(1), vec![child, IdxExpr::Var(k), IdxExpr::Var(j)]),
                ),
            ),
        };
        Stmt::For {
            var: n_idx,
            extent: IdxExpr::Const(4),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Var(n_idx),
                body: vec![Stmt::For {
                    var: i,
                    extent: IdxExpr::Const(hi),
                    kind: LoopKind::Serial,
                    dim: Some(DimName::feature(0)),
                    body: vec![Stmt::For {
                        var: j,
                        extent: IdxExpr::Const(hj),
                        kind: LoopKind::Vectorized,
                        dim: Some(DimName::feature(1)),
                        body: vec![Stmt::Store {
                            tensor: TensorId(1),
                            index: vec![IdxExpr::Var(node), IdxExpr::Var(i), IdxExpr::Var(j)],
                            value: sum,
                        }],
                    }],
                }],
            }],
        }
    }

    #[test]
    fn rank2_matrix_site_is_planned() {
        let body = [rank2_loop(5, 7, 5)];
        let plans = analyze(&[&body], true);
        assert_eq!(plans.len(), 1);
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.sites.len(), 1);
        let site = &plan.sites[0];
        assert_eq!(site.feat_extent, 5);
        assert_eq!(site.weight.tensor, TensorId(0));
        let inner = site.inner.expect("row-side feature dimension");
        assert_eq!(inner.extent, 7);
        assert_eq!(inner.slot, 3);
        assert_eq!(site.served_per_row, 5, "one (n,j) row serves H_i elements");
        // Rank-2 sites stay singleton groups.
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].members, vec![0]);
    }

    #[test]
    fn j_invariant_sum_under_two_level_nest_serves_full_tile() {
        // for i { for j { t[n,i,j] = sum_k W[i,k]·s[node,k] } }: the sum
        // ignores j, so one row per node serves the whole H_i×H_j tile.
        let (n_idx, node, i, j, k) = (v(0), v(1), v(2), v(3), v(4));
        let sum = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(6),
            body: Box::new(
                ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)]).mul(
                    ValExpr::load(TensorId(1), vec![IdxExpr::Var(node), IdxExpr::Var(k)]),
                ),
            ),
        };
        let stmt = Stmt::For {
            var: n_idx,
            extent: IdxExpr::Const(4),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Var(n_idx),
                body: vec![Stmt::For {
                    var: i,
                    extent: IdxExpr::Const(3),
                    kind: LoopKind::Serial,
                    dim: Some(DimName::feature(0)),
                    body: vec![Stmt::For {
                        var: j,
                        extent: IdxExpr::Const(5),
                        kind: LoopKind::Vectorized,
                        dim: Some(DimName::feature(1)),
                        body: vec![Stmt::Store {
                            tensor: TensorId(2),
                            index: vec![IdxExpr::Var(node), IdxExpr::Var(i), IdxExpr::Var(j)],
                            value: sum,
                        }],
                    }],
                }],
            }],
        };
        let body = [stmt];
        let plans = analyze(&[&body], true);
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.sites.len(), 1);
        assert!(plan.sites[0].inner.is_none());
        assert_eq!(plan.sites[0].served_per_row, 15);
    }

    #[test]
    fn merge_plans_fuses_same_key_and_weight_only() {
        let w1 = Rc::new(vec![1.0f32; 8]);
        let w2 = Rc::new(vec![1.0f32; 8]);
        let key = SuperKey {
            for_key: 1,
            group_ordinal: 0,
            leader_key: 7,
            cols: 2,
            k_len: 4,
        };
        let other_key = SuperKey {
            group_ordinal: 1,
            ..key
        };
        let mut acc = SuperWaveAcc::default();
        let (e0, b0) = acc.register(key, &w1, 3, 0, 0);
        let (e1, b1) = acc.register(key, &w1, 2, 1, 0);
        assert_eq!((e0, b0), (0, 0));
        assert_eq!((e1, b1), (0, 3), "same key+weight fuses, rows appended");
        let (e2, _) = acc.register(other_key, &w1, 1, 2, 0);
        assert_eq!(e2, 1, "different group ordinal stays separate");
        let (e3, _) = acc.register(key, &w2, 1, 3, 0);
        assert_eq!(
            e3, 2,
            "equal-valued but distinct weight packs stay separate"
        );
        let entries = acc.take_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].total_rows, 5);
        assert_eq!(entries[0].rows.len(), 5 * 4);
        assert_eq!(entries[0].registrants.len(), 2);
        assert_eq!(entries[0].registrants[1].base_row, 3);
    }

    #[test]
    fn two_feature_dependent_operands_reject() {
        // sum_k A[i,k] * B[i,k]: both operands ride the feature variable.
        let (n_idx, i, k) = (v(0), v(2), v(3));
        let sum = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(4),
            body: Box::new(
                ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)]).mul(
                    ValExpr::load(TensorId(1), vec![IdxExpr::Var(i), IdxExpr::Var(k)]),
                ),
            ),
        };
        let stmt = Stmt::For {
            var: n_idx,
            extent: IdxExpr::Const(4),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::For {
                var: i,
                extent: IdxExpr::Const(4),
                kind: LoopKind::Vectorized,
                dim: Some(DimName::feature(0)),
                body: vec![Stmt::Store {
                    tensor: TensorId(3),
                    index: vec![IdxExpr::Var(n_idx), IdxExpr::Var(i)],
                    value: sum,
                }],
            }],
        };
        let body = [stmt];
        assert!(analyze(&[&body], true).is_empty());
    }
}

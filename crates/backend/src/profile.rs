//! Execution profiles: every hardware-relevant quantity a run produces.
//!
//! The executor fills a [`Profile`] while running a lowered program; the
//! baseline frameworks fill the same structure (plus their host-side
//! overhead timers), so Table 6's activity breakdown and Appendix C's
//! roofline analysis come straight out of these counters.

use std::time::Duration;

/// Per-wavefront statistics: the parallel width available to the device
/// and the floating-point work done — the inputs to the utilization term
/// of the device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaveStat {
    /// Floating-point operations executed in this wave.
    pub flops: u64,
    /// Nodes processed in parallel in this wave.
    pub width: u64,
    /// Global-memory bytes moved by this wave (reads + writes +
    /// parameter traffic) — the per-wave roofline's memory term. Late,
    /// narrow tree waves are memory-bound on re-read weights, which is
    /// what model persistence removes.
    pub bytes: u64,
}

/// Counters collected while executing a program.
///
/// Equality is exact, field-for-field — the bit-for-bit `Profile`
/// contract the executor cross-checks (pc runtime vs `interp: true`,
/// bulk vs per-element, batched vs solo) is asserted with `==`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Device kernel launches.
    pub launches: u64,
    /// Device-wide synchronization barriers executed.
    pub barriers_global: u64,
    /// Block-local synchronizations (per-node thread-block schedules).
    pub barriers_block: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read from global memory (excluding parameters).
    pub global_bytes_read: u64,
    /// Bytes written to global memory.
    pub global_bytes_written: u64,
    /// Parameter bytes read from global memory (once per program under
    /// model persistence; per wave otherwise — Appendix C's distinction).
    pub param_bytes_read: u64,
    /// Bytes moved through on-chip scratchpad (not charged to bandwidth).
    pub scratch_bytes_accessed: u64,
    /// Global-memory bytes saved by cache reuse (unrolling, Fig. 3).
    pub cache_reuse_bytes: u64,
    /// Conditional (branch) checks executed.
    pub branch_checks: u64,
    /// Leaf checks implemented as memory loads (`num_children[n]`);
    /// the Appendix-B numbering makes this zero.
    pub leaf_check_loads: u64,
    /// Total bytes of allocated device storage (peak, Fig. 12).
    pub allocated_bytes: u64,
    /// Bytes of on-chip scratchpad allocated.
    pub scratch_allocated_bytes: u64,
    /// Host-side API calls (kernel launches + memory copies), the "CPU
    /// CUDA API time" driver of Table 6.
    pub host_api_calls: u64,
    /// Bytes copied host-side to make vendor-library inputs contiguous
    /// (zero for Cortex; significant for DyNet/Cavs — §7.2).
    pub memcpy_bytes: u64,
    /// Per-wave statistics for the utilization model.
    pub waves: Vec<WaveStat>,
    /// Host time spent linearizing the data structure (§7.5).
    pub linearize_time: Duration,
    /// Host time spent constructing a runtime dataflow graph (DyNet-style
    /// frameworks; zero for Cortex).
    pub graph_construction_time: Duration,
    /// Host time spent on runtime dynamic batching (DyNet/Cavs; for
    /// Cortex this is part of linearization).
    pub dynamic_batching_time: Duration,
    /// Host time spent on memory management (gather/scatter for
    /// contiguity; zero for Cortex).
    pub mem_mgmt_time: Duration,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Total global-memory traffic in bytes (reads + writes + parameters),
    /// net of modeled cache reuse.
    pub fn total_global_bytes(&self) -> u64 {
        (self.global_bytes_read + self.global_bytes_written + self.param_bytes_read)
            .saturating_sub(self.cache_reuse_bytes)
    }

    /// Operational intensity in flops per global byte (Appendix C).
    ///
    /// Returns `f64::INFINITY` when no global traffic occurred.
    pub fn operational_intensity(&self) -> f64 {
        let bytes = self.total_global_bytes();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / bytes as f64
        }
    }

    /// Host-side overhead (graph construction + batching + memory
    /// management + linearization).
    pub fn host_overhead(&self) -> Duration {
        self.linearize_time
            + self.graph_construction_time
            + self.dynamic_batching_time
            + self.mem_mgmt_time
    }

    /// Merges another profile's counters into this one (used by baselines
    /// that execute many vendor-kernel calls).
    pub fn merge(&mut self, other: &Profile) {
        self.launches += other.launches;
        self.barriers_global += other.barriers_global;
        self.barriers_block += other.barriers_block;
        self.flops += other.flops;
        self.global_bytes_read += other.global_bytes_read;
        self.global_bytes_written += other.global_bytes_written;
        self.param_bytes_read += other.param_bytes_read;
        self.scratch_bytes_accessed += other.scratch_bytes_accessed;
        self.cache_reuse_bytes += other.cache_reuse_bytes;
        self.branch_checks += other.branch_checks;
        self.leaf_check_loads += other.leaf_check_loads;
        self.allocated_bytes = self.allocated_bytes.max(other.allocated_bytes);
        self.scratch_allocated_bytes = self
            .scratch_allocated_bytes
            .max(other.scratch_allocated_bytes);
        self.host_api_calls += other.host_api_calls;
        self.memcpy_bytes += other.memcpy_bytes;
        self.waves.extend_from_slice(&other.waves);
        self.linearize_time += other.linearize_time;
        self.graph_construction_time += other.graph_construction_time;
        self.dynamic_batching_time += other.dynamic_batching_time;
        self.mem_mgmt_time += other.mem_mgmt_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_intensity_matches_definition() {
        let p = Profile {
            flops: 1000,
            global_bytes_read: 100,
            global_bytes_written: 100,
            param_bytes_read: 50,
            ..Profile::default()
        };
        assert!((p.operational_intensity() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cache_reuse_reduces_traffic() {
        let p = Profile {
            global_bytes_read: 100,
            cache_reuse_bytes: 40,
            ..Profile::default()
        };
        assert_eq!(p.total_global_bytes(), 60);
        let over = Profile {
            global_bytes_read: 10,
            cache_reuse_bytes: 40,
            ..Profile::default()
        };
        assert_eq!(over.total_global_bytes(), 0, "saturating, never underflows");
    }

    #[test]
    fn empty_profile_has_infinite_intensity() {
        assert!(Profile::new().operational_intensity().is_infinite());
    }

    #[test]
    fn merge_accumulates_and_maxes() {
        let mut a = Profile {
            launches: 2,
            allocated_bytes: 100,
            ..Profile::default()
        };
        let b = Profile {
            launches: 3,
            allocated_bytes: 50,
            ..Profile::default()
        };
        a.merge(&b);
        assert_eq!(a.launches, 5);
        assert_eq!(a.allocated_bytes, 100, "allocation is a peak, not a sum");
    }
}

//! Fast-path compilation for reduction expressions.
//!
//! Generated Cortex kernels bottom out in matvec-like reductions
//! (`sum_k W[i,k] * hsum[n,k]`). Interpreting those one AST node at a time
//! would be orders of magnitude slower than the native inner loops TVM
//! would emit, distorting every wall-clock measurement. This module
//! pattern-matches reduction bodies into a [`DotPlan`] — a product of
//! strided tensor streams, optionally guarded or summed (child-sum) — that
//! the executor runs as a tight multiply-accumulate loop, exactly what
//! generated code would do.
//!
//! The match is best-effort: anything outside the recognized shapes falls
//! back to the generic interpreter, and a property test asserts the two
//! paths agree bit-for-bit on random programs.

use cortex_core::expr::{BinOp, BoolExpr, IdxExpr, TensorId, ValExpr, Var};

/// One multiplicative operand of a reduction.
///
/// `PartialEq` is structural (used by the wave analyzer's gate-stacking
/// signature match); note it compares reduction variables literally, so
/// cross-site comparison must ignore each site's own `k` position — see
/// `wave::operand_sig_equal`.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A tensor load with the reduction variable at one index position
    /// (that position must be *exactly* the reduction variable).
    Load {
        /// Tensor read.
        tensor: TensorId,
        /// All index expressions; position `k_pos` is the reduction var.
        index: Vec<IdxExpr>,
        /// Which index position carries the reduction variable.
        k_pos: usize,
    },
    /// A sum of operands (child-sum aggregation inlined into a matvec).
    Add(Vec<Operand>),
    /// An operand that is zero when the guard fails (variable-arity
    /// children in DAG models).
    Guarded {
        /// The (reduction-invariant) guard.
        cond: BoolExpr,
        /// Value when the guard holds.
        inner: Box<Operand>,
    },
    /// A reduction-invariant scalar factor.
    Scalar(ValExpr),
}

/// A compiled reduction: the product of `operands` summed over the
/// reduction variable.
#[derive(Debug, Clone)]
pub struct DotPlan {
    /// Reduction variable (slot-mapped).
    pub var: Var,
    /// Multiplicative operands.
    pub operands: Vec<Operand>,
}

/// Tries to compile a reduction body into a [`DotPlan`].
///
/// Returns `None` when the body falls outside the recognized patterns; the
/// caller then uses the generic interpreter.
pub fn compile(var: Var, body: &ValExpr) -> Option<DotPlan> {
    let mut operands = Vec::new();
    collect_product(var, body, &mut operands)?;
    // At least one operand must actually involve the reduction variable;
    // otherwise the generic path is just as good.
    if operands.iter().any(involves_k) {
        Some(DotPlan { var, operands })
    } else {
        None
    }
}

fn involves_k(op: &Operand) -> bool {
    match op {
        Operand::Load { .. } => true,
        Operand::Add(parts) => parts.iter().any(involves_k),
        Operand::Guarded { inner, .. } => involves_k(inner),
        Operand::Scalar(_) => false,
    }
}

fn collect_product(var: Var, e: &ValExpr, out: &mut Vec<Operand>) -> Option<()> {
    match e {
        ValExpr::Bin(BinOp::Mul, a, b) => {
            collect_product(var, a, out)?;
            collect_product(var, b, out)
        }
        other => {
            out.push(compile_operand(var, other)?);
            Some(())
        }
    }
}

fn compile_operand(var: Var, e: &ValExpr) -> Option<Operand> {
    if !val_uses_var(e, var) {
        // Reduction-invariant: hoisted out and evaluated once.
        return Some(Operand::Scalar(e.clone()));
    }
    match e {
        ValExpr::Load { tensor, index } => {
            let mut k_pos = None;
            for (d, ix) in index.iter().enumerate() {
                match ix {
                    IdxExpr::Var(v) if *v == var => {
                        if k_pos.is_some() {
                            return None; // k twice: not a plain stream
                        }
                        k_pos = Some(d);
                    }
                    other if idx_uses_var(other, var) => return None,
                    _ => {}
                }
            }
            Some(Operand::Load {
                tensor: *tensor,
                index: index.clone(),
                k_pos: k_pos?,
            })
        }
        ValExpr::Bin(BinOp::Add, a, b) => {
            let a = compile_operand(var, a)?;
            let b = compile_operand(var, b)?;
            let mut parts = Vec::new();
            flatten_add(a, &mut parts);
            flatten_add(b, &mut parts);
            // Stream resolution needs every addend to be a stream; mixed
            // scalar+stream sums fall back to the generic interpreter.
            if parts.iter().any(|p| matches!(p, Operand::Scalar(_))) {
                return None;
            }
            Some(Operand::Add(parts))
        }
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            if bool_uses_var(cond, var) {
                return None;
            }
            match (&**then, &**otherwise) {
                (_, ValExpr::Const(c)) if *c == 0.0 => Some(Operand::Guarded {
                    cond: cond.clone(),
                    inner: Box::new(compile_operand(var, then)?),
                }),
                (ValExpr::Const(c), _) if *c == 0.0 => Some(Operand::Guarded {
                    cond: BoolExpr::Not(Box::new(cond.clone())),
                    inner: Box::new(compile_operand(var, otherwise)?),
                }),
                _ => None,
            }
        }
        _ => None,
    }
}

fn flatten_add(op: Operand, out: &mut Vec<Operand>) {
    match op {
        Operand::Add(parts) => out.extend(parts),
        other => out.push(other),
    }
}

pub(crate) fn idx_uses_var(e: &IdxExpr, var: Var) -> bool {
    match e {
        IdxExpr::Var(v) => *v == var,
        IdxExpr::Const(_) | IdxExpr::Rt(_) => false,
        IdxExpr::Ufn(_, args) => args.iter().any(|a| idx_uses_var(a, var)),
        IdxExpr::Bin(_, a, b) => idx_uses_var(a, var) || idx_uses_var(b, var),
    }
}

pub(crate) fn bool_uses_var(e: &BoolExpr, var: Var) -> bool {
    match e {
        BoolExpr::Cmp(_, a, b) => idx_uses_var(a, var) || idx_uses_var(b, var),
        BoolExpr::IsLeaf(a) => idx_uses_var(a, var),
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => bool_uses_var(a, var) || bool_uses_var(b, var),
        BoolExpr::Not(a) => bool_uses_var(a, var),
    }
}

pub(crate) fn val_uses_var(e: &ValExpr, var: Var) -> bool {
    match e {
        ValExpr::Const(_) => false,
        ValExpr::Load { index, .. } => index.iter().any(|i| idx_uses_var(i, var)),
        ValExpr::Unary(_, a) => val_uses_var(a, var),
        ValExpr::Bin(_, a, b) => val_uses_var(a, var) || val_uses_var(b, var),
        ValExpr::Sum { extent, body, .. } => idx_uses_var(extent, var) || val_uses_var(body, var),
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => bool_uses_var(cond, var) || val_uses_var(then, var) || val_uses_var(otherwise, var),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_core::expr::{CmpOp, Ufn};

    fn v(id: u32) -> Var {
        Var::from_raw(id)
    }

    #[test]
    fn plain_matvec_compiles() {
        let k = v(0);
        let i = v(1);
        let n = v(2);
        // W[i,k] * h[n,k]
        let body = ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)]).mul(
            ValExpr::load(TensorId(1), vec![IdxExpr::Var(n), IdxExpr::Var(k)]),
        );
        let plan = compile(k, &body).expect("matvec should compile");
        assert_eq!(plan.operands.len(), 2);
        assert!(matches!(plan.operands[0], Operand::Load { k_pos: 1, .. }));
    }

    #[test]
    fn child_sum_inlined_compiles() {
        let k = v(0);
        let i = v(1);
        let n = v(2);
        // W[i,k] * (h[left[n],k] + h[right[n],k])
        let left = IdxExpr::Ufn(Ufn::Child(0), vec![IdxExpr::Var(n)]);
        let right = IdxExpr::Ufn(Ufn::Child(1), vec![IdxExpr::Var(n)]);
        let body = ValExpr::load(TensorId(0), vec![IdxExpr::Var(i), IdxExpr::Var(k)]).mul(
            ValExpr::load(TensorId(1), vec![left, IdxExpr::Var(k)])
                .add(ValExpr::load(TensorId(1), vec![right, IdxExpr::Var(k)])),
        );
        let plan = compile(k, &body).expect("child-sum matvec should compile");
        assert!(matches!(&plan.operands[1], Operand::Add(parts) if parts.len() == 2));
    }

    #[test]
    fn guarded_child_compiles() {
        let k = v(0);
        let n = v(2);
        // W[0,k] * select(0 < num_children[n], h[child0[n],k], 0)
        let guard = BoolExpr::Cmp(
            CmpOp::Lt,
            IdxExpr::Const(0),
            IdxExpr::Ufn(Ufn::NumChildren, vec![IdxExpr::Var(n)]),
        );
        let child = IdxExpr::Ufn(Ufn::Child(0), vec![IdxExpr::Var(n)]);
        let body = ValExpr::load(TensorId(0), vec![IdxExpr::Const(0), IdxExpr::Var(k)]).mul(
            ValExpr::Select {
                cond: guard,
                then: Box::new(ValExpr::load(TensorId(1), vec![child, IdxExpr::Var(k)])),
                otherwise: Box::new(ValExpr::Const(0.0)),
            },
        );
        assert!(compile(k, &body).is_some());
    }

    #[test]
    fn nonaffine_k_use_is_rejected() {
        let k = v(0);
        // h[k*2] — strided through an expression, not a plain stream.
        let body = ValExpr::load(TensorId(0), vec![IdxExpr::Var(k).mul(IdxExpr::Const(2))]);
        assert!(compile(k, &body).is_none());
    }

    #[test]
    fn k_free_body_is_rejected() {
        let k = v(0);
        let body = ValExpr::Const(2.0).mul(ValExpr::Const(3.0));
        assert!(compile(k, &body).is_none(), "no stream to accelerate");
    }

    #[test]
    fn tanh_inside_reduction_is_rejected() {
        let k = v(0);
        let body = ValExpr::load(TensorId(0), vec![IdxExpr::Var(k)]).tanh();
        assert!(compile(k, &body).is_none());
    }
}

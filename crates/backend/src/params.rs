//! Model parameter binding.

use std::collections::HashMap;

use cortex_tensor::Tensor;

/// Named parameter tensors bound to a lowered program's `Param`
/// declarations (weights, biases, embedding tables).
///
/// # Example
///
/// ```
/// use cortex_backend::params::Params;
/// use cortex_tensor::Tensor;
///
/// let mut p = Params::new();
/// p.set("W", Tensor::random(&[4, 4], 0.5, 0));
/// assert!(p.get("W").is_some());
/// assert!(p.get("missing").is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Params {
    by_name: HashMap<String, Tensor>,
    generation: u64,
}

/// Process-wide generation counter: every mutation of any `Params` gets
/// a fresh value, so a generation uniquely identifies one binding state
/// (clones share it until either side mutates — which is exactly the
/// sharing the packed-weight cache wants to recognize).
static NEXT_GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Params {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Params::default()
    }

    /// Binds (or replaces) a parameter by name.
    pub fn set(&mut self, name: &str, value: Tensor) -> &mut Self {
        self.by_name.insert(name.to_string(), value);
        self.generation = NEXT_GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self
    }

    /// An identity for the current binding state. Two calls return the
    /// same value iff no [`set`](Self::set) happened in between, which
    /// lets the executor keep packed-weight caches across runs (and
    /// across requests of a serving batch) instead of repacking every
    /// run — and invalidate them the moment a binding changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up a parameter.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.by_name.get(name)
    }

    /// Iterates over all bound parameters.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.by_name.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Total bytes across all parameters.
    pub fn total_bytes(&self) -> u64 {
        self.by_name.values().map(|t| t.len() as u64 * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_and_bytes() {
        let mut p = Params::new();
        assert!(p.is_empty());
        p.set("W", Tensor::zeros(&[2, 3]));
        p.set("b", Tensor::zeros(&[3]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_bytes(), (6 + 3) * 4);
        assert_eq!(p.get("W").unwrap().shape().dims(), &[2, 3]);
    }

    #[test]
    fn generation_changes_on_set_and_sticks_otherwise() {
        let mut p = Params::new();
        let g0 = p.generation();
        p.set("W", Tensor::zeros(&[2]));
        let g1 = p.generation();
        assert_ne!(g0, g1);
        assert_eq!(p.generation(), g1, "reads do not advance the generation");
        let clone = p.clone();
        assert_eq!(clone.generation(), g1, "clones share the binding state");
        p.set("W", Tensor::zeros(&[2]));
        assert_ne!(
            p.generation(),
            g1,
            "rebinding advances even with equal shape"
        );
        assert_eq!(clone.generation(), g1);
    }

    #[test]
    fn set_replaces() {
        let mut p = Params::new();
        p.set("W", Tensor::zeros(&[2]));
        p.set("W", Tensor::zeros(&[5]));
        assert_eq!(p.get("W").unwrap().len(), 5);
    }
}

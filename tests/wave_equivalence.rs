//! Equivalence of the executor configurations.
//!
//! The batched wavefront engine (`wave_gemm`, with and without gate
//! stacking), the scalar reduction fast path (`fastdot`), and the fully
//! generic interpreter must agree on every model, schedule, and input
//! structure:
//!
//! * outputs within 1e-5 (different summation orders, same math), and
//! * **identical** `Profile` counters between the scalar and batched
//!   paths — the wave engine replays the exact per-element accounting it
//!   optimizes away, whether a site runs its own GEMM or shares a
//!   stacked one.

use cortex::backend::exec::{Engine, ExecOptions};
use cortex::backend::profile::Profile;
use cortex::core::ra::RaSchedule;
use cortex::ds::linearizer::Linearizer;
use cortex::ds::{datasets, RecStructure};
use cortex::models::{dagrnn, mvrnn, seq, treefc, treegru, treelstm, treernn, LeafInit, Model};
use cortex_rng::Rng;

fn models(h: usize) -> Vec<Model> {
    vec![
        treernn::tree_rnn(h, LeafInit::Embedding),
        treefc::tree_fc(h, LeafInit::Embedding),
        treegru::tree_gru(h, LeafInit::Embedding),
        treelstm::tree_lstm(h, LeafInit::Zero),
        mvrnn::mv_rnn(h),
        dagrnn::dag_rnn(h),
        seq::seq_lstm(h),
    ]
}

fn structure_for(model: &Model, rng: &mut Rng) -> RecStructure {
    let seed = rng.next_u64();
    match model.name.as_str() {
        "DAG-RNN" => datasets::grid_dag(rng.range_usize(2, 6), rng.range_usize(2, 6), seed),
        "LSTM" | "GRU" => datasets::sequence(rng.range_usize(3, 30), seed),
        _ => {
            let parts: Vec<RecStructure> = (0..rng.range_usize(1, 4))
                .map(|i| {
                    datasets::random_binary_tree(
                        rng.range_usize(2, 14),
                        seed.wrapping_add(i as u64),
                    )
                })
                .collect();
            let refs: Vec<&RecStructure> = parts.iter().collect();
            RecStructure::merge(&refs)
        }
    }
}

/// Counter fields that must match exactly between scalar and batched
/// execution (wave stats included).
fn assert_profiles_identical(a: &Profile, b: &Profile, ctx: &str) {
    assert_eq!(a.launches, b.launches, "launches: {ctx}");
    assert_eq!(a.flops, b.flops, "flops: {ctx}");
    assert_eq!(
        a.global_bytes_read, b.global_bytes_read,
        "global reads: {ctx}"
    );
    assert_eq!(
        a.global_bytes_written, b.global_bytes_written,
        "global writes: {ctx}"
    );
    assert_eq!(a.param_bytes_read, b.param_bytes_read, "param reads: {ctx}");
    assert_eq!(
        a.scratch_bytes_accessed, b.scratch_bytes_accessed,
        "scratch: {ctx}"
    );
    assert_eq!(a.branch_checks, b.branch_checks, "branch checks: {ctx}");
    assert_eq!(
        a.leaf_check_loads, b.leaf_check_loads,
        "leaf-check loads: {ctx}"
    );
    assert_eq!(
        a.barriers_global, b.barriers_global,
        "global barriers: {ctx}"
    );
    assert_eq!(a.barriers_block, b.barriers_block, "block barriers: {ctx}");
    assert_eq!(a.waves, b.waves, "wave stats: {ctx}");
}

#[test]
fn three_executors_agree_on_random_models_and_trees() {
    let mut rng = Rng::new(0x51);
    for case in 0..24 {
        let h = rng.range_usize(3, 11);
        for model in models(h) {
            let structure = structure_for(&model, &mut rng);
            let program = model.lower(&RaSchedule::default()).unwrap();
            let lin = Linearizer::new().linearize(&structure).unwrap();

            let (out_g, _) = Engine::with_options(&program, ExecOptions::generic())
                .execute(&lin, &model.params, true)
                .unwrap();
            let (out_s, prof_s) = Engine::with_options(&program, ExecOptions::scalar())
                .execute(&lin, &model.params, true)
                .unwrap();
            let (out_w, prof_w) = Engine::new(&program)
                .execute(&lin, &model.params, true)
                .unwrap();

            let ctx = format!("{} h={h} case={case}", model.name);
            for (id, t_g) in &out_g {
                let t_s = &out_s[id];
                let t_w = &out_w[id];
                assert!(
                    t_s.all_close(t_g, 1e-5),
                    "scalar vs generic diverge ({ctx}): {:?}",
                    t_s.max_abs_diff(t_g)
                );
                assert!(
                    t_w.all_close(t_g, 1e-5),
                    "batched vs generic diverge ({ctx}): {:?}",
                    t_w.max_abs_diff(t_g)
                );
            }
            assert_profiles_identical(&prof_s, &prof_w, &ctx);
        }
    }
}

/// Property test for the gate-stacking tentpole: on randomized
/// TreeLSTM/TreeGRU forests the stacked path must match the per-site
/// path element-for-element within 1e-4 (they reassociate the stacked
/// GEMM's tail columns differently) and counter-for-counter exactly,
/// while actually issuing fewer GEMMs.
#[test]
fn stacked_path_matches_per_site_path_on_random_forests() {
    let mut rng = Rng::new(0x54);
    for case in 0..10 {
        let h = rng.range_usize(3, 24);
        for model in [
            treelstm::tree_lstm(h, LeafInit::Embedding),
            treelstm::tree_lstm(h, LeafInit::Zero),
            treegru::tree_gru(h, LeafInit::Embedding),
        ] {
            let structure = structure_for(&model, &mut rng);
            let program = model.lower(&RaSchedule::default()).unwrap();
            let lin = Linearizer::new().linearize(&structure).unwrap();

            let mut stacked = Engine::new(&program);
            let mut per_site = Engine::with_options(&program, ExecOptions::unstacked());
            let (out_g, prof_g) = stacked.execute(&lin, &model.params, true).unwrap();
            let (out_u, prof_u) = per_site.execute(&lin, &model.params, true).unwrap();

            let ctx = format!("{} h={h} case={case}", model.name);
            for (id, t_g) in &out_g {
                assert!(
                    out_u[id].all_close(t_g, 1e-4),
                    "stacked vs per-site diverge ({ctx}): {:?}",
                    out_u[id].max_abs_diff(t_g)
                );
            }
            assert_profiles_identical(&prof_u, &prof_g, &ctx);
            // Stacking must actually reduce GEMM launches: TreeLSTM's
            // i/o/u gates share one GEMM and its forget gates another;
            // TreeGRU's r/z gates stack likewise.
            let (sg, su) = (stacked.stats(), per_site.stats());
            assert_eq!(su.stacked_groups, 0, "{ctx}: unstacked ran stacked GEMMs");
            if su.wave_gemms > 0 {
                assert!(
                    sg.stacked_groups > 0 && sg.wave_gemms < su.wave_gemms,
                    "{ctx}: stacking did not engage ({sg:?} vs {su:?})"
                );
                assert_eq!(
                    sg.sites_batched, su.sites_batched,
                    "{ctx}: stacking changed which sites batch"
                );
            }
        }
    }
}

/// Mixed waves — some sites stackable, some not — must split correctly.
/// TreeLSTM is exactly that shape: i/o/u stack by shared rows, the two
/// forget gates stack by shared weight, and at `h` where guards differ
/// none of them may leak into each other's groups.
#[test]
fn treelstm_gemm_count_drops_three_fold_with_stacking() {
    let h = 16;
    let model = treelstm::tree_lstm(h, LeafInit::Embedding);
    let corpus = datasets::sentiment_treebank(4, 21);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    let forest = RecStructure::merge(&refs);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let lin = Linearizer::new().linearize(&forest).unwrap();

    let mut stacked = Engine::new(&program);
    let mut per_site = Engine::with_options(&program, ExecOptions::unstacked());
    let (out_s, _) = stacked.execute(&lin, &model.params, true).unwrap();
    let (out_u, _) = per_site.execute(&lin, &model.params, true).unwrap();
    for (id, t) in &out_s {
        assert!(out_u[id].all_close(t, 1e-4));
    }
    let (sg, su) = (stacked.stats(), per_site.stats());
    // 5 sites per wave (i, o, u, f0, f1) → 2 GEMMs (i/o/u weight-stacked,
    // f0/f1 row-stacked): a 2.5× launch reduction, every site served.
    assert_eq!(
        su.wave_gemms,
        5 * su.waves_batched,
        "per-site: 5 GEMMs/wave"
    );
    assert_eq!(sg.wave_gemms, 2 * sg.waves_batched, "stacked: 2 GEMMs/wave");
    assert_eq!(sg.sites_batched, su.sites_batched);
    assert_eq!(
        sg.stacked_sites, sg.sites_batched,
        "all 5 sites share GEMMs"
    );
}

/// The min-wave-width heuristic: an engine that skips every wave must
/// behave exactly like the scalar fastdot path (outputs and `Profile`
/// both), and report that it batched nothing.
#[test]
fn min_wave_width_skip_is_equivalent_to_scalar_path() {
    let mut rng = Rng::new(0x55);
    for _ in 0..6 {
        let h = rng.range_usize(3, 16);
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let structure = structure_for(&model, &mut rng);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let lin = Linearizer::new().linearize(&structure).unwrap();

        let mut skipping = Engine::with_options(
            &program,
            ExecOptions {
                min_wave_width: usize::MAX,
                ..ExecOptions::default()
            },
        );
        let (out_k, prof_k) = skipping.execute(&lin, &model.params, true).unwrap();
        let (out_s, prof_s) = Engine::with_options(&program, ExecOptions::scalar())
            .execute(&lin, &model.params, true)
            .unwrap();
        let ctx = format!("TreeLSTM h={h} all waves skipped");
        for (id, t_s) in &out_s {
            assert!(out_k[id].all_close(t_s, 1e-5), "{ctx}");
        }
        assert_profiles_identical(&prof_s, &prof_k, &ctx);
        let st = skipping.stats();
        assert_eq!(st.wave_gemms, 0, "{ctx}: no GEMM may launch");
        assert_eq!(st.sites_batched, 0);
        assert!(st.narrow_waves_skipped > 0, "{ctx}: skips must be counted");
    }
}

#[test]
fn executors_agree_across_random_schedules() {
    use cortex::core::ra::{BarrierMode, LeafCheckMode};
    let mut rng = Rng::new(0x52);
    for _ in 0..12 {
        let schedule = RaSchedule {
            specialize: rng.bool(),
            persist: rng.bool(),
            dense_intermediates: rng.bool(),
            leaf_check: if rng.bool() {
                LeafCheckMode::Numbering
            } else {
                LeafCheckMode::Load
            },
            barrier: if rng.bool() {
                BarrierMode::Conservative
            } else {
                BarrierMode::DependenceAware
            },
            peel: if rng.bool() {
                Some(rng.range_usize(2, 4))
            } else {
                None
            },
            ..RaSchedule::default()
        };
        let h = rng.range_usize(3, 9);
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let structure = structure_for(&model, &mut rng);
        let program = model.lower(&schedule).unwrap();
        let lin = Linearizer::new().linearize(&structure).unwrap();
        let (out_s, prof_s) = Engine::with_options(&program, ExecOptions::scalar())
            .execute(&lin, &model.params, true)
            .unwrap();
        let (out_w, prof_w) = Engine::new(&program)
            .execute(&lin, &model.params, true)
            .unwrap();
        let ctx = format!("TreeLSTM h={h} schedule={schedule:?}");
        for (id, t_s) in &out_s {
            assert!(out_w[id].all_close(t_s, 1e-5), "{ctx}");
        }
        assert_profiles_identical(&prof_s, &prof_w, &ctx);
    }
}

#[test]
fn batched_engine_matches_reference_models_at_paper_width() {
    // The acceptance-bar check at realistic width: TreeLSTM h=64 on a
    // ≥256-node forest, batched engine vs the pure-Rust reference.
    use cortex::models::reference;
    let h = 64;
    let model = treelstm::tree_lstm(h, LeafInit::Embedding);
    let corpus = datasets::sentiment_treebank(16, 9);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    let forest = RecStructure::merge(&refs);
    assert!(forest.num_nodes() >= 256);
    let want = reference::tree_lstm(&forest, &model.params, h, LeafInit::Embedding);

    let program = model.lower(&RaSchedule::default()).unwrap();
    let lin = Linearizer::new().linearize(&forest).unwrap();
    let mut engine = Engine::new(&program);
    assert!(
        engine.num_wave_plans() > 0,
        "TreeLSTM must take the batched path"
    );
    let (out, _) = engine.execute(&lin, &model.params, true).unwrap();
    let got = &out[&model.output];
    for n in forest.iter() {
        let id = lin.from_structure_id(n) as usize;
        for i in 0..h {
            let g = got[[id, i]];
            let w = want.h[n.index()][i];
            assert!((g - w).abs() < 1e-4, "node {n} elem {i}: {g} vs {w}");
        }
    }
}

/// With the `parallel` feature, wave GEMMs run on a scoped thread pool.
/// Threading must not perturb a single counter (`Profile` accounting all
/// happens outside the threaded kernels) and must stay deterministic.
#[cfg(feature = "parallel")]
#[test]
fn parallel_execution_keeps_profile_identical_to_sequential_accounting() {
    let mut rng = Rng::new(0x53);
    for _ in 0..6 {
        let h = rng.range_usize(16, 40);
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let structure = structure_for(&model, &mut rng);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let lin = Linearizer::new().linearize(&structure).unwrap();
        let (out_s, prof_s) = Engine::with_options(&program, ExecOptions::scalar())
            .execute(&lin, &model.params, true)
            .unwrap();
        let (out_w1, prof_w) = Engine::new(&program)
            .execute(&lin, &model.params, true)
            .unwrap();
        let (out_w2, _) = Engine::new(&program)
            .execute(&lin, &model.params, true)
            .unwrap();
        assert_profiles_identical(&prof_s, &prof_w, "threaded TreeLSTM");
        for (id, t1) in &out_w1 {
            assert_eq!(t1, &out_w2[id], "threaded runs must be deterministic");
            assert!(out_s[id].all_close(t1, 1e-5));
        }
    }
}

/// Builds a DAG-RNN-like model whose child guards sit *outside* the
/// reductions — `select(slot < nc(n), Σ_k U[i,k]·h[child(n),k], 0)` —
/// the natural user formulation the wave analyzer now batches with a
/// recorded select guard (the gather phase zero-fills guarded-off rows
/// without resolving their NO_CHILD indirections).
fn guard_outside_model(
    h: usize,
) -> (
    cortex::core::ilir::IlirProgram,
    cortex::backend::params::Params,
) {
    use cortex::backend::params::Params;
    use cortex::core::expr::{BoolExpr, CmpOp, IdxExpr, Ufn, ValExpr};
    use cortex::core::lower::{lower, StructureInfo};
    use cortex::core::ra::RaGraph;
    use cortex::tensor::Tensor;

    let vocab = datasets::VOCAB_SIZE as usize;
    let mut g = RaGraph::new();
    let u = g.input("U", &[h, h]);
    let emb = g.input("Emb", &[vocab, h]);
    let ph = g.placeholder("ph", &[h]);
    let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
    let rec = g.compute("rec", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let mut acc: Option<ValExpr> = None;
        for slot in 0..2u8 {
            let child = IdxExpr::Ufn(Ufn::Child(slot), vec![node.clone()]);
            let mv = c.sum(h, |c, k| {
                c.read(u, &[i.clone(), k.clone()])
                    .mul(c.read(ph, &[child.clone(), k]))
            });
            let guarded = ValExpr::Select {
                cond: BoolExpr::Cmp(
                    CmpOp::Lt,
                    IdxExpr::Const(i64::from(slot)),
                    IdxExpr::Ufn(Ufn::NumChildren, vec![node.clone()]),
                ),
                then: Box::new(mv),
                otherwise: Box::new(ValExpr::Const(0.0)),
            };
            acc = Some(match acc {
                None => guarded,
                Some(prev) => prev.add(guarded),
            });
        }
        acc.expect("two slots").tanh()
    });
    let body = g.if_then_else("body", leaf, rec).unwrap();
    let rnn = g.recursion(ph, body).unwrap();
    g.mark_output(rnn);

    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )
    .unwrap();
    let mut params = Params::new();
    params.set("U", Tensor::random(&[h, h], 0.4, 1));
    params.set("Emb", Tensor::random(&[vocab, h], 0.4, 2));
    (program, params)
}

/// The Select-guarded tentpole: a guard formulated *outside* the
/// reduction must now run on the batched + bulk path — with outputs and
/// `Profile` counters **exactly** matching the scalar path. Grid DAGs
/// exercise the guard both ways: border internal nodes have a single
/// child, so slot 1's select takes the zero arm there (its `child` is
/// NO_CHILD and must never be resolved).
#[test]
fn guard_outside_reduction_batches_and_agrees_exactly() {
    let mut rng = Rng::new(0x58);
    for case in 0..8 {
        let h = rng.range_usize(3, 12);
        let (program, params) = guard_outside_model(h);
        let d = datasets::grid_dag(rng.range_usize(2, 7), rng.range_usize(2, 7), 3 + case);
        let lin = Linearizer::new().linearize(&d).unwrap();

        let (out_s, prof_s) = Engine::with_options(&program, ExecOptions::scalar())
            .execute(&lin, &params, true)
            .unwrap();
        let mut batched = Engine::new(&program);
        let (out_w, prof_w) = batched.execute(&lin, &params, true).unwrap();
        let ctx = format!("guard outside reduction h={h} case={case}");
        for (id, t_s) in &out_s {
            assert_eq!(&out_w[id], t_s, "bulk serving is bit-exact ({ctx})");
        }
        assert_profiles_identical(&prof_s, &prof_w, &ctx);
        let stats = batched.stats();
        assert!(
            stats.sites_batched > 0,
            "{ctx}: guarded sums must batch as wave GEMMs, got {stats:?}"
        );
        assert!(
            stats.fused_waves > 0,
            "{ctx}: the select epilogue must run as fused bulk passes"
        );
    }
}

/// The cross-request super-wave tentpole: `run_many` over K random
/// inputs must produce outputs **bit-for-bit** equal and `Profile`
/// counters **exactly** equal to K independent `run` calls — the merged
/// GEMM computes every output element from the same rows, weights and
/// reduction order, and all accounting stays per-request. Covers mixed
/// depths (a batch mixes deep and shallow inputs), rank-2 sites
/// (MV-RNN), sequences (the width-1 → width-K case), and DAG inputs
/// whose guarded sites individually fall back to the scalar path.
#[test]
fn execute_many_equals_independent_runs_exactly() {
    let mut rng = Rng::new(0x56);
    for case in 0..4 {
        let h = rng.range_usize(3, 10);
        for model in [
            treelstm::tree_lstm(h, LeafInit::Embedding),
            treegru::tree_gru(h, LeafInit::Embedding),
            mvrnn::mv_rnn(h),
            seq::seq_lstm(h),
            dagrnn::dag_rnn(h),
        ] {
            let k = rng.range_usize(2, 6);
            let structures: Vec<RecStructure> = (0..k)
                .map(|i| {
                    let seed = rng.next_u64();
                    match model.name.as_str() {
                        "DAG-RNN" => {
                            datasets::grid_dag(rng.range_usize(2, 5), rng.range_usize(2, 5), seed)
                        }
                        "LSTM" => datasets::sequence(rng.range_usize(1, 20), seed),
                        // Mixed depths on purpose: request 0 is tiny
                        // (often a single wave or leaf-only), later
                        // requests grow.
                        _ => datasets::random_binary_tree(1 + 5 * i, seed),
                    }
                })
                .collect();
            let program = model.lower(&RaSchedule::default()).unwrap();
            let lins: Vec<_> = structures
                .iter()
                .map(|s| Linearizer::new().linearize(s).unwrap())
                .collect();
            let refs: Vec<&_> = lins.iter().collect();

            let mut engine = Engine::new(&program);
            let many = engine.execute_many(&refs, &model.params, true).unwrap();
            assert_eq!(many.len(), k);

            let mut solo_engine = Engine::new(&program);
            for (r, (out_m, prof_m)) in many.iter().enumerate() {
                let (out_s, prof_s) = solo_engine.execute(&lins[r], &model.params, true).unwrap();
                let ctx = format!("{} h={h} case={case} request={r}/{k}", model.name);
                assert_eq!(out_m.len(), out_s.len(), "{ctx}");
                for (id, t_s) in &out_s {
                    assert_eq!(
                        &out_m[id], t_s,
                        "batched output must be bit-identical ({ctx})"
                    );
                }
                assert_profiles_identical(&prof_s, prof_m, &ctx);
            }
        }
    }
}

/// Merging must actually amortize: K equal-length queued sequences run
/// ~K× fewer wave GEMMs than K solo runs, with every merged GEMM
/// serving all K requests.
#[test]
fn execute_many_amortizes_gemm_launches_across_requests() {
    let k = 8usize;
    let model = seq::seq_lstm(12);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let lins: Vec<_> = (0..k as u64)
        .map(|s| {
            Linearizer::new()
                .linearize(&datasets::sequence(40, s))
                .unwrap()
        })
        .collect();
    let refs: Vec<&_> = lins.iter().collect();

    let mut engine = Engine::new(&program);
    engine.execute_many(&refs, &model.params, true).unwrap();
    let many_stats = engine.stats();

    let mut solo = Engine::new(&program);
    solo.execute(&lins[0], &model.params, true).unwrap();
    let solo_stats = solo.stats();

    assert!(many_stats.super_gemms > 0, "merging must engage");
    assert_eq!(
        many_stats.wave_gemms, solo_stats.wave_gemms,
        "K equal-depth requests collapse to one GEMM per wave: the \
         batch launches exactly what one request launches alone"
    );
    let mean_requests = many_stats.super_gemm_requests as f64 / many_stats.super_gemms as f64;
    assert!(
        (mean_requests - k as f64).abs() < 1e-9,
        "every merged GEMM serves all {k} requests, got {mean_requests}"
    );
    assert_eq!(
        many_stats.gemm_rows,
        k as u64 * solo_stats.gemm_rows,
        "super-waves carry Σ rows"
    );
}

/// Rank-2 feature sites (MV-RNN's `A(n) = W_M1·A_l + W_M2·A_r` matrix
/// recursions) must run as wave GEMMs now instead of falling back to
/// the scalar path: 4 batched sites per wave (2 vector gates + 2
/// matrix products), with the matrix sites contributing `wave_len·H`
/// GEMM rows each.
#[test]
fn mvrnn_rank2_sites_batch_as_wave_gemms() {
    let h = 8;
    let model = mvrnn::mv_rnn(h);
    let tree = datasets::random_binary_tree(20, 11);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let lin = Linearizer::new().linearize(&tree).unwrap();
    let mut engine = Engine::new(&program);
    let (_, _) = engine.execute(&lin, &model.params, true).unwrap();
    let stats = engine.stats();
    // Each wave depth runs two batched loops (the mva/mvb + A_rec loop,
    // then the a_rec loop), together serving 4 sites: a_rec's two
    // vector gates and A_rec's two rank-2 matrix products.
    let depths = lin.internal_batches().len() as u64;
    assert!(depths > 0);
    assert_eq!(
        stats.waves_batched,
        2 * depths,
        "both loops batch per depth"
    );
    assert_eq!(
        stats.sites_batched,
        4 * depths,
        "a_rec's two gates + A_rec's two rank-2 products all batch"
    );
    assert_eq!(
        stats.weight_packs, 4,
        "W_1, W_2 and the rank-2 W_M1, W_M2 all pack"
    );
    // Rank-2 sites gather wave_len·H rows each, so total GEMM rows far
    // exceed the 4·Σwave_len a rank-1-only engine would gather.
    let internal_nodes: u64 = lin.internal_batches().iter().map(|b| b.len() as u64).sum();
    assert!(
        stats.gemm_rows >= 2 * (h as u64) * internal_nodes,
        "matrix sites contribute H rows per node: {} rows for {} nodes",
        stats.gemm_rows,
        internal_nodes
    );
}

/// The packed-weight cache persists per `(model, params generation)`:
/// repeated runs — and every request of a batch — reuse the packs; a
/// parameter rebind invalidates them.
#[test]
fn weight_packs_amortize_across_runs_and_requests() {
    let mut model = treelstm::tree_lstm(10, LeafInit::Embedding);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let lins: Vec<_> = (0..4u64)
        .map(|s| {
            Linearizer::new()
                .linearize(&datasets::random_binary_tree(12, s))
                .unwrap()
        })
        .collect();
    let refs: Vec<&_> = lins.iter().collect();

    let mut engine = Engine::new(&program);
    engine.execute(&lins[0], &model.params, true).unwrap();
    let first = engine.stats().weight_packs;
    assert!(first > 0, "first run packs");
    engine.execute(&lins[1], &model.params, true).unwrap();
    assert_eq!(engine.stats().weight_packs, 0, "second run reuses packs");

    engine.execute_many(&refs, &model.params, true).unwrap();
    assert_eq!(
        engine.stats().weight_packs,
        0,
        "a whole batch reuses the packs too — weights amortize across requests"
    );

    // Rebinding a parameter invalidates the cache (fresh generation).
    let w = model.params.get("U_i").unwrap().clone();
    model.params.set("U_i", w);
    engine.execute(&lins[0], &model.params, true).unwrap();
    assert!(
        engine.stats().weight_packs > 0,
        "parameter rebind must repack"
    );
}

/// Bulk serving (strided row passes + fused whole-wave epilogues) must
/// be **bit-identical** to per-element serving from the same wave GEMMs
/// — outputs and `Profile` both — across every model, including the
/// rank-2 store loops (MV-RNN) and Select-guarded DAGs this PR moved
/// onto the bulk path.
#[test]
fn bulk_serving_is_bit_identical_to_per_element_serving() {
    let mut rng = Rng::new(0x59);
    let no_bulk = ExecOptions {
        bulk: false,
        ..ExecOptions::default()
    };
    for case in 0..6 {
        let h = rng.range_usize(3, 14);
        for model in models(h) {
            let structure = structure_for(&model, &mut rng);
            let program = model.lower(&RaSchedule::default()).unwrap();
            let lin = Linearizer::new().linearize(&structure).unwrap();

            let mut bulk = Engine::new(&program);
            let (out_b, prof_b) = bulk.execute(&lin, &model.params, true).unwrap();
            let mut per_elem = Engine::with_options(&program, no_bulk);
            let (out_p, prof_p) = per_elem.execute(&lin, &model.params, true).unwrap();

            let ctx = format!("{} h={h} case={case}", model.name);
            for (id, t_p) in &out_p {
                assert_eq!(&out_b[id], t_p, "bulk must be bit-identical ({ctx})");
            }
            assert_profiles_identical(&prof_p, &prof_b, &ctx);
            assert_eq!(per_elem.stats().fused_waves, 0, "{ctx}: bulk off");
            assert_eq!(per_elem.stats().epilogue_ns, 0, "{ctx}: bulk off");
        }
    }
}

/// Rank-2 store loops (MV-RNN's matrix recursions) now bulk-serve as
/// strided row passes per trailing index instead of per-element
/// interpretation, and the tanh epilogue wave fuses.
#[test]
fn mvrnn_rank2_store_loops_bulk_serve() {
    let h = 10;
    let model = mvrnn::mv_rnn(h);
    let tree = datasets::random_binary_tree(24, 13);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let lin = Linearizer::new().linearize(&tree).unwrap();

    let mut engine = Engine::new(&program);
    let (out_b, prof_b) = engine.execute(&lin, &model.params, true).unwrap();
    let stats = engine.stats();
    assert!(stats.fused_waves > 0, "tanh epilogue waves must fuse");
    assert!(stats.epilogue_ns > 0, "epilogue time must be accounted");

    let (out_s, prof_s) = Engine::with_options(&program, ExecOptions::scalar())
        .execute(&lin, &model.params, true)
        .unwrap();
    for (id, t_s) in &out_s {
        assert!(out_b[id].all_close(t_s, 1e-4), "rank-2 bulk diverges");
    }
    assert_profiles_identical(&prof_s, &prof_b, "MV-RNN rank-2 bulk");
}

/// The `Rational` nonlinearity mode (App. A.5, `ExecOptions::rational`)
/// must stay within 1e-4 of the exact-mode results end-to-end on every
/// model — including 100-step sequences and 10×10 grid DAGs, where
/// per-application error could compound — while leaving every `Profile`
/// counter untouched (the modes differ in arithmetic, never in
/// accounting).
#[test]
fn rational_nonlinearity_bounds_error_and_keeps_profile_exact() {
    let mut rng = Rng::new(0x5a);
    for case in 0..4 {
        let h = rng.range_usize(4, 20);
        for model in models(h) {
            let structure = structure_for(&model, &mut rng);
            let program = model.lower(&RaSchedule::default()).unwrap();
            let lin = Linearizer::new().linearize(&structure).unwrap();

            let (out_e, prof_e) = Engine::new(&program)
                .execute(&lin, &model.params, true)
                .unwrap();
            let (out_r, prof_r) = Engine::with_options(&program, ExecOptions::rational())
                .execute(&lin, &model.params, true)
                .unwrap();
            let ctx = format!("{} h={h} case={case}", model.name);
            for (id, t_e) in &out_e {
                assert!(
                    out_r[id].all_close(t_e, 1e-4),
                    "rational mode exceeds 1e-4 ({ctx}): {:?}",
                    out_r[id].max_abs_diff(t_e)
                );
            }
            assert_profiles_identical(&prof_e, &prof_r, &ctx);
        }
    }
}

/// Regression for the bulk-plan keying fix: plans are compiled once per
/// engine and keyed by `(kernel, statement)`, so two engines serving
/// different models — including engines created after another was
/// dropped, when the allocator may reuse statement addresses — can
/// never serve one model's store loop from another's plan. Interleaved
/// execution must match fresh solo runs exactly.
#[test]
fn bulk_plans_never_collide_across_models_or_engines() {
    let h = 6;
    let model_a = treelstm::tree_lstm(h, LeafInit::Embedding);
    let model_b = dagrnn::dag_rnn(h);
    let prog_a = model_a.lower(&RaSchedule::default()).unwrap();
    let prog_b = model_b.lower(&RaSchedule::default()).unwrap();
    let lin_a = Linearizer::new()
        .linearize(&datasets::random_binary_tree(14, 3))
        .unwrap();
    let lin_b = Linearizer::new()
        .linearize(&datasets::grid_dag(4, 4, 4))
        .unwrap();
    let (ref_a, prof_a) = Engine::new(&prog_a)
        .execute(&lin_a, &model_a.params, true)
        .unwrap();
    let (ref_b, prof_b) = Engine::new(&prog_b)
        .execute(&lin_b, &model_b.params, true)
        .unwrap();

    // Interleave two live engines, and recreate one mid-stream so a
    // fresh engine's kernels can land on a dropped engine's addresses.
    let mut ea = Engine::new(&prog_a);
    for round in 0..3 {
        let mut eb = Engine::new(&prog_b);
        for _ in 0..2 {
            let (out_a, pa) = ea.execute(&lin_a, &model_a.params, true).unwrap();
            let (out_b, pb) = eb.execute(&lin_b, &model_b.params, true).unwrap();
            for (id, t) in &ref_a {
                assert_eq!(&out_a[id], t, "model A diverged (round {round})");
            }
            for (id, t) in &ref_b {
                assert_eq!(&out_b[id], t, "model B diverged (round {round})");
            }
            assert_profiles_identical(&pa, &prof_a, "model A profile");
            assert_profiles_identical(&pb, &prof_b, "model B profile");
        }
    }
}

#[test]
fn engine_reuse_across_runs_is_stable() {
    // Cached compiled kernels / packed weights / scratch must not leak
    // state between runs or inputs.
    let model = treegru::tree_gru(8, LeafInit::Embedding);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let mut engine = Engine::new(&program);
    let mut baseline = Vec::new();
    for seed in 0..4u64 {
        let t = datasets::random_binary_tree(11, seed);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let (out, prof) = engine.execute(&lin, &model.params, true).unwrap();
        baseline.push((out[&model.output].clone(), prof.flops));
    }
    for seed in 0..4u64 {
        let t = datasets::random_binary_tree(11, seed);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let (out, prof) = engine.execute(&lin, &model.params, true).unwrap();
        assert_eq!(out[&model.output], baseline[seed as usize].0, "seed {seed}");
        assert_eq!(prof.flops, baseline[seed as usize].1, "seed {seed}");
    }
}

/// The runtime tiers' correctness bar: the direct-threaded closure
/// tier (the default), the pc dispatch loop (`threaded: false`) and the
/// AST-walking oracle (`ExecOptions { interp: true }`) must agree
/// **bit-for-bit** — outputs and complete `Profile`s — on every model,
/// both solo and through a depth-16 serving batch (where the plan
/// runtimes park/resume at super-wave flushes). Also asserts the
/// lowering is total (zero AST-fallback ops, no `ScalarStmt` escapes
/// ran) and that specialization actually happened: the threaded engine
/// reports a non-empty dispatch table, the pc engine reports none.
#[test]
fn plan_runtime_matches_interp_oracle_on_all_models() {
    let mut rng = Rng::new(0x61);
    let pc_opts = ExecOptions {
        threaded: false,
        ..ExecOptions::default()
    };
    let oracle_opts = ExecOptions {
        interp: true,
        ..ExecOptions::default()
    };
    for case in 0..3 {
        let h = rng.range_usize(3, 12);
        for model in models(h) {
            let program = model.lower(&RaSchedule::default()).unwrap();
            let mut threaded = Engine::new(&program);
            let mut pc = Engine::with_options(&program, pc_opts);
            let mut oracle = Engine::with_options(&program, oracle_opts);
            let ctx = format!("{} h={h} case={case}", model.name);

            let ps = pc.plan_stats();
            assert!(ps.plan_ops > 0, "{ctx}: kernels must lower to a plan");
            assert_eq!(
                ps.interp_fallback_stmts, 0,
                "{ctx}: the lowering must be total"
            );
            assert_eq!(ps.threaded_ops, 0, "{ctx}: pc engine must not specialize");
            assert!(
                threaded.plan_stats().threaded_ops > 0,
                "{ctx}: the default engine must carry a dispatch table"
            );

            // Solo.
            let structure = structure_for(&model, &mut rng);
            let lin = Linearizer::new().linearize(&structure).unwrap();
            let (out_t, prof_t) = threaded.execute(&lin, &model.params, true).unwrap();
            let (out_p, prof_p) = pc.execute(&lin, &model.params, true).unwrap();
            let (out_o, prof_o) = oracle.execute(&lin, &model.params, true).unwrap();
            for (id, t_o) in &out_o {
                assert_eq!(&out_p[id], t_o, "{ctx}: solo pc outputs bit-exact");
                assert_eq!(&out_t[id], t_o, "{ctx}: solo threaded outputs bit-exact");
            }
            assert_eq!(prof_p, prof_o, "{ctx}: solo pc profile identical");
            assert_eq!(prof_t, prof_o, "{ctx}: solo threaded profile identical");
            assert_eq!(pc.stats().interp_stmts, 0, "{ctx}: no AST escapes ran");
            assert_eq!(
                threaded.stats().interp_stmts,
                0,
                "{ctx}: no AST escapes ran"
            );

            // Depth-16 serving batch (mixed shapes and depths).
            let structures: Vec<RecStructure> =
                (0..16).map(|_| structure_for(&model, &mut rng)).collect();
            let lins: Vec<_> = structures
                .iter()
                .map(|s| Linearizer::new().linearize(s).unwrap())
                .collect();
            let refs: Vec<&_> = lins.iter().collect();
            let many_t = threaded.execute_many(&refs, &model.params, true).unwrap();
            let many_p = pc.execute_many(&refs, &model.params, true).unwrap();
            let many_o = oracle.execute_many(&refs, &model.params, true).unwrap();
            for (r, ((op_, pp), (oo, po))) in many_p.iter().zip(&many_o).enumerate() {
                for (id, t_o) in oo {
                    assert_eq!(&op_[id], t_o, "{ctx}: request {r} pc outputs bit-exact");
                    assert_eq!(
                        &many_t[r].0[id], t_o,
                        "{ctx}: request {r} threaded outputs bit-exact"
                    );
                }
                assert_eq!(pp, po, "{ctx}: request {r} pc profile identical");
                assert_eq!(
                    &many_t[r].1, po,
                    "{ctx}: request {r} threaded profile identical"
                );
            }
        }
    }
}

/// pc-based suspension: width-1 sequence waves force every request to
/// park at **every** wave depth (a parked request is just its program
/// counter plus loop records) and resume after each merged super-wave
/// flush — mixed-length sequences exercise requests dropping out at
/// different depths. Results must stay exactly those of uninterrupted
/// solo runs.
#[test]
fn pc_suspension_parks_mid_wave_and_resumes_exactly() {
    let h = 9;
    let model = seq::seq_lstm(h);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let mut engine = Engine::new(&program);

    let structures: Vec<RecStructure> = [7usize, 13, 4, 21]
        .iter()
        .enumerate()
        .map(|(i, &len)| datasets::sequence(len, 0x70 + i as u64))
        .collect();
    let lins: Vec<_> = structures
        .iter()
        .map(|s| Linearizer::new().linearize(s).unwrap())
        .collect();
    let refs: Vec<&_> = lins.iter().collect();
    let many = engine.execute_many(&refs, &model.params, true).unwrap();
    let stats = engine.stats();
    assert!(
        stats.super_gemms > 0,
        "width-1 waves must merge — otherwise nothing ever parked"
    );
    // The longest sequence (21 tokens -> 20 recursion steps) sets the
    // number of wave depths; each is one park + merged flush.
    assert!(
        stats.wave_gemms >= 20,
        "one merged launch per wave depth, got {}",
        stats.wave_gemms
    );
    for (r, (outputs, profile)) in many.iter().enumerate() {
        let (solo_out, solo_prof) = engine.execute(refs[r], &model.params, true).unwrap();
        assert_eq!(
            profile, &solo_prof,
            "request {r}: suspension must be invisible to the Profile"
        );
        for (id, t_s) in &solo_out {
            assert_eq!(&outputs[id], t_s, "request {r}: bit-exact outputs");
        }
    }
}

/// Reconfiguring a live engine must behave exactly like building a
/// fresh engine with the new options: lowering-relevant knobs
/// (`wave_gemm`, `gate_stacking`) rebuild the plans and drop
/// grouping-shaped caches, `threaded` rebuilds (or drops) the
/// specialized dispatch table, and runtime knobs (`bulk`,
/// `nonlinearity`, `min_wave_width`, `interp`) switch paths without
/// stale compiled state. Every knob — `fastdot` included, via the generic
/// configuration — is flipped on one engine whose caches were warmed
/// under the previous configuration.
#[test]
fn set_options_matches_fresh_engine_for_every_knob() {
    let model = treelstm::tree_lstm(10, LeafInit::Embedding);
    let program = model.lower(&RaSchedule::default()).unwrap();
    let tree = datasets::random_binary_tree(26, 0x81);
    let lin = Linearizer::new().linearize(&tree).unwrap();

    let flips: Vec<(&str, ExecOptions)> = vec![
        ("gate_stacking off", ExecOptions::unstacked()),
        ("wave_gemm off", ExecOptions::scalar()),
        ("fastdot off (generic)", ExecOptions::generic()),
        ("back to default", ExecOptions::default()),
        (
            "bulk off",
            ExecOptions {
                bulk: false,
                ..ExecOptions::default()
            },
        ),
        ("nonlinearity rational", ExecOptions::rational()),
        (
            "min_wave_width max",
            ExecOptions {
                min_wave_width: usize::MAX,
                ..ExecOptions::default()
            },
        ),
        (
            "interp oracle",
            ExecOptions {
                interp: true,
                ..ExecOptions::default()
            },
        ),
        (
            "threaded off (pc dispatch)",
            ExecOptions {
                threaded: false,
                ..ExecOptions::default()
            },
        ),
        (
            "threaded off, wave_gemm off",
            ExecOptions {
                threaded: false,
                ..ExecOptions::scalar()
            },
        ),
        ("default again", ExecOptions::default()),
    ];

    let mut live = Engine::new(&program);
    // Warm every cache under the initial configuration.
    live.execute(&lin, &model.params, true).unwrap();
    live.execute(&lin, &model.params, true).unwrap();

    for (name, opts) in flips {
        live.set_options(opts);
        let (out_l, prof_l) = live.execute(&lin, &model.params, true).unwrap();
        let live_stats = live.stats();

        let mut fresh = Engine::with_options(&program, opts);
        let (out_f, prof_f) = fresh.execute(&lin, &model.params, true).unwrap();
        let fresh_stats = fresh.stats();

        for (id, t_f) in &out_f {
            assert_eq!(&out_l[id], t_f, "{name}: outputs must be bit-equal");
        }
        assert_eq!(prof_l, prof_f, "{name}: profiles must be identical");
        // Strategy counters prove the live engine actually switched
        // paths instead of reusing stale compiled state (weight_packs
        // legitimately differs: the fresh engine packs, the live one
        // may reuse params-keyed packs — that cache is
        // options-independent by design).
        assert_eq!(
            live_stats.wave_gemms, fresh_stats.wave_gemms,
            "{name}: wave GEMM schedule must match a fresh engine"
        );
        assert_eq!(
            live_stats.stacked_groups, fresh_stats.stacked_groups,
            "{name}: stacking must match a fresh engine"
        );
        assert_eq!(
            live_stats.sites_batched, fresh_stats.sites_batched,
            "{name}: site serving must match a fresh engine"
        );
        assert_eq!(
            live_stats.fused_waves, fresh_stats.fused_waves,
            "{name}: fused epilogues must match a fresh engine"
        );
        assert_eq!(
            live_stats.narrow_waves_skipped, fresh_stats.narrow_waves_skipped,
            "{name}: min-width skips must match a fresh engine"
        );
        assert_eq!(
            live_stats.threaded_ops, fresh_stats.threaded_ops,
            "{name}: specialized dispatch table must match a fresh engine"
        );
        assert_eq!(
            live_stats.fused_scalar_runs, fresh_stats.fused_scalar_runs,
            "{name}: scalar-run fusion must match a fresh engine"
        );
    }
}

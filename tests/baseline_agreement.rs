//! Cross-crate agreement: the baseline frameworks (PyTorch-, DyNet-,
//! Cavs-, GRNN-like) and the Cortex compiled pipeline must produce the
//! same numbers on the same inputs — the evaluation compares execution
//! structure, never numerics.

use cortex::baselines::dynet::DynetOptions;
use cortex::baselines::{cavs, dynet, eager, grnn};
use cortex::models::{dagrnn, mvrnn, seq, treefc, treegru, treelstm, LeafInit, Model};
use cortex::prelude::*;

fn cortex_hidden(model: &Model, structure: &RecStructure) -> Vec<Vec<f32>> {
    let (out, lin) = model.infer(structure, &RaSchedule::default()).unwrap();
    let h: usize = out.shape().dims().iter().skip(1).product();
    structure
        .iter()
        .map(|n| {
            let id = lin.from_structure_id(n) as usize;
            out.as_slice()[id * h..(id + 1) * h].to_vec()
        })
        .collect()
}

fn assert_rows_close(a: &[Vec<f32>], b: &[Vec<f32>], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: node counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for (u, v) in x.iter().zip(y) {
            assert!((u - v).abs() < tol, "{what}: node {i}: {u} vs {v}");
        }
    }
}

fn sst_forest(n: usize, seed: u64) -> RecStructure {
    let corpus = cortex::ds::datasets::sentiment_treebank(n, seed);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    RecStructure::merge(&refs)
}

#[test]
fn all_frameworks_agree_on_tree_models() {
    let gpu = DeviceSpec::v100();
    for model in [
        treefc::tree_fc(8, LeafInit::Embedding),
        treegru::tree_gru(8, LeafInit::Embedding),
        treegru::simple_tree_gru(8, LeafInit::Embedding),
        treelstm::tree_lstm(8, LeafInit::Embedding),
        mvrnn::mv_rnn(6),
    ] {
        let t = sst_forest(2, 11);
        let ours = cortex_hidden(&model, &t);
        let e = eager::run(&model, &t, &gpu);
        assert_rows_close(&ours, &e.hidden, 1e-3, &format!("{} eager", model.name));
        let d = dynet::run(&model, &t, &gpu, DynetOptions::default());
        assert_rows_close(&ours, &d.hidden, 1e-3, &format!("{} dynet", model.name));
        let c = cavs::run(&model, &t, &gpu);
        assert_rows_close(&ours, &c.hidden, 1e-3, &format!("{} cavs", model.name));
    }
}

#[test]
fn all_frameworks_agree_on_dags() {
    let gpu = DeviceSpec::v100();
    let model = dagrnn::dag_rnn(8);
    let d = cortex::ds::datasets::batch_of(|s| cortex::ds::datasets::grid_dag(6, 6, s), 2, 12);
    let ours = cortex_hidden(&model, &d);
    let e = eager::run(&model, &d, &gpu);
    assert_rows_close(&ours, &e.hidden, 1e-3, "dagrnn eager");
    let dy = dynet::run(&model, &d, &gpu, DynetOptions::default());
    assert_rows_close(&ours, &dy.hidden, 1e-3, "dagrnn dynet");
    let c = cavs::run(&model, &d, &gpu);
    assert_rows_close(&ours, &c.hidden, 1e-3, "dagrnn cavs");
}

#[test]
fn grnn_agrees_on_sequences() {
    let gpu = DeviceSpec::v100();
    for model in [seq::seq_lstm(8), seq::seq_gru(8)] {
        let s = cortex::ds::datasets::batch_of(|x| cortex::ds::datasets::sequence(20, x), 3, 13);
        let ours = cortex_hidden(&model, &s);
        let g = grnn::run(&model, &s, &gpu);
        assert_rows_close(&ours, &g.hidden, 1e-3, &format!("{} grnn", model.name));
    }
}

#[test]
fn overhead_structure_matches_table_1() {
    // Table 1's qualitative comparison, verified quantitatively:
    // kernel fusion (launch counts), dynamic batching (wave widths) and
    // model persistence (parameter traffic).
    let gpu = DeviceSpec::v100();
    let model = treelstm::tree_lstm(16, LeafInit::Zero);
    let t = sst_forest(6, 14);
    let (result, _) = model.run(&t, &RaSchedule::default(), &gpu).unwrap();
    let e = eager::run(&model, &t, &gpu);
    let d = dynet::run(&model, &t, &gpu, DynetOptions::default());
    let c = cavs::run(&model, &t, &gpu);
    // Fusion: Cortex "Y" (1 fused kernel + leaf-ish), Cavs "Partial",
    // DyNet "N", PyTorch "N".
    assert!(result.profile.launches < c.profile.launches);
    assert!(c.profile.launches < d.profile.launches);
    assert!(d.profile.launches < e.profile.launches);
    // Dynamic batching: PyTorch alone is width-1.
    assert!(e.profile.waves.iter().all(|w| w.width == 1));
    assert!(result.profile.waves.iter().any(|w| w.width > 1));
    // Model persistence: only Cortex avoids re-reading parameters.
    assert!(result.profile.param_bytes_read < d.profile.param_bytes_read);
}

//! Property-based schedule-safety tests: no combination of Cortex's
//! scheduling primitives may change a model's outputs, on any input
//! structure. This is the compiler's core soundness contract.

use cortex::core::ra::{BarrierMode, FusionMode, LeafCheckMode, RaSchedule};
use cortex::models::{reference, treegru, treelstm, treernn, LeafInit};
use cortex::prelude::*;
use proptest::prelude::*;

/// Random schedule generator over the supported combination space.
fn any_schedule() -> impl Strategy<Value = RaSchedule> {
    (
        any::<bool>(), // dynamic_batch
        any::<bool>(), // specialize
        any::<bool>(), // fusion maximal?
        any::<bool>(), // persist
        any::<bool>(), // dense intermediates
        any::<bool>(), // leaf check by numbering?
        any::<bool>(), // conservative barriers
        prop::option::of(2usize..5), // peel factor
    )
        .prop_map(
            |(dynamic_batch, specialize, maximal, persist, dense, numbering, conservative, peel)| {
                let fusion = if maximal { FusionMode::Maximal } else { FusionMode::None };
                // Respect the lowering's documented constraints.
                let dynamic_batch = dynamic_batch || fusion == FusionMode::None;
                RaSchedule {
                    dynamic_batch,
                    specialize,
                    fusion,
                    persist,
                    dense_intermediates: dense,
                    leaf_check: if numbering {
                        LeafCheckMode::Numbering
                    } else {
                        LeafCheckMode::Load
                    },
                    barrier: if conservative {
                        BarrierMode::Conservative
                    } else {
                        BarrierMode::DependenceAware
                    },
                    peel,
                    ..RaSchedule::default()
                }
            },
        )
}

fn random_forest(trees: usize, leaves: usize, seed: u64) -> RecStructure {
    let parts: Vec<RecStructure> = (0..trees)
        .map(|i| cortex::ds::datasets::random_binary_tree(leaves, seed.wrapping_add(i as u64)))
        .collect();
    let refs: Vec<&RecStructure> = parts.iter().collect();
    RecStructure::merge(&refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_rnn_invariant_under_scheduling(
        schedule in any_schedule(),
        trees in 1usize..4,
        leaves in 2usize..12,
        seed in 0u64..1000,
    ) {
        let m = treernn::tree_rnn(6, LeafInit::Embedding);
        let f = random_forest(trees, leaves, seed);
        let want = reference::tree_rnn(&f, &m.params, 6, LeafInit::Embedding);
        let (out, lin) = m.infer(&f, &schedule).expect("supported schedule");
        for n in f.iter() {
            let id = lin.from_structure_id(n) as usize;
            for i in 0..6 {
                let g = out[[id, i]];
                let w = want[n.index()][i];
                prop_assert!((g - w).abs() < 1e-4, "node {n} elem {i}: {g} vs {w} under {schedule:?}");
            }
        }
    }

    #[test]
    fn tree_lstm_invariant_under_scheduling(
        schedule in any_schedule(),
        leaves in 2usize..10,
        seed in 0u64..1000,
    ) {
        let m = treelstm::tree_lstm(5, LeafInit::Zero);
        let f = random_forest(2, leaves, seed);
        let want = reference::tree_lstm(&f, &m.params, 5, LeafInit::Zero);
        let (out, lin) = m.infer(&f, &schedule).expect("supported schedule");
        for n in f.iter() {
            let id = lin.from_structure_id(n) as usize;
            for i in 0..5 {
                prop_assert!((out[[id, i]] - want.h[n.index()][i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn tree_gru_unroll_and_refactor_invariant(
        leaves in 2usize..10,
        seed in 0u64..1000,
        depth in 2usize..4,
        refactor in any::<bool>(),
    ) {
        let m = treegru::tree_gru(5, LeafInit::Embedding);
        let f = random_forest(2, leaves, seed);
        let want = reference::tree_gru(&f, &m.params, 5, LeafInit::Embedding, false);
        let schedule = if refactor {
            m.refactored_schedule()
        } else {
            RaSchedule { unroll: Some(depth), ..RaSchedule::default() }
        };
        let (out, lin) = m.infer(&f, &schedule).expect("supported schedule");
        for n in f.iter() {
            let id = lin.from_structure_id(n) as usize;
            for i in 0..5 {
                prop_assert!((out[[id, i]] - want[n.index()][i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn device_latency_is_monotone_in_counters(
        launches in 0u64..1000,
        extra in 1u64..500,
        barriers in 0u64..1000,
    ) {
        use cortex::backend::profile::Profile;
        let gpu = DeviceSpec::v100();
        let base = Profile { launches, barriers_global: barriers, ..Profile::default() };
        let more = Profile { launches: launches + extra, barriers_global: barriers, ..Profile::default() };
        prop_assert!(gpu.latency(&more).total_s > gpu.latency(&base).total_s);
    }
}

//! Randomized schedule-safety tests: no combination of Cortex's
//! scheduling primitives may change a model's outputs, on any input
//! structure. This is the compiler's core soundness contract.

use cortex::core::ra::{BarrierMode, FusionMode, LeafCheckMode, RaSchedule};
use cortex::models::{reference, treegru, treelstm, treernn, LeafInit};
use cortex::prelude::*;
use cortex_rng::Rng;

/// Random schedule over the supported combination space.
fn any_schedule(rng: &mut Rng) -> RaSchedule {
    let maximal = rng.bool();
    let fusion = if maximal {
        FusionMode::Maximal
    } else {
        FusionMode::None
    };
    // Respect the lowering's documented constraints.
    let dynamic_batch = rng.bool() || fusion == FusionMode::None;
    RaSchedule {
        dynamic_batch,
        specialize: rng.bool(),
        fusion,
        persist: rng.bool(),
        dense_intermediates: rng.bool(),
        leaf_check: if rng.bool() {
            LeafCheckMode::Numbering
        } else {
            LeafCheckMode::Load
        },
        barrier: if rng.bool() {
            BarrierMode::Conservative
        } else {
            BarrierMode::DependenceAware
        },
        peel: if rng.bool() {
            Some(rng.range_usize(2, 5))
        } else {
            None
        },
        ..RaSchedule::default()
    }
}

fn random_forest(trees: usize, leaves: usize, seed: u64) -> RecStructure {
    let parts: Vec<RecStructure> = (0..trees)
        .map(|i| cortex::ds::datasets::random_binary_tree(leaves, seed.wrapping_add(i as u64)))
        .collect();
    let refs: Vec<&RecStructure> = parts.iter().collect();
    RecStructure::merge(&refs)
}

#[test]
fn tree_rnn_invariant_under_scheduling() {
    let mut rng = Rng::new(0x41);
    for _ in 0..16 {
        let schedule = any_schedule(&mut rng);
        let trees = rng.range_usize(1, 4);
        let leaves = rng.range_usize(2, 12);
        let seed = rng.below_u64(1000);
        let m = treernn::tree_rnn(6, LeafInit::Embedding);
        let f = random_forest(trees, leaves, seed);
        let want = reference::tree_rnn(&f, &m.params, 6, LeafInit::Embedding);
        let (out, lin) = m.infer(&f, &schedule).expect("supported schedule");
        for n in f.iter() {
            let id = lin.from_structure_id(n) as usize;
            for i in 0..6 {
                let g = out[[id, i]];
                let w = want[n.index()][i];
                assert!(
                    (g - w).abs() < 1e-4,
                    "node {n} elem {i}: {g} vs {w} under {schedule:?}"
                );
            }
        }
    }
}

#[test]
fn tree_lstm_invariant_under_scheduling() {
    let mut rng = Rng::new(0x42);
    for _ in 0..16 {
        let schedule = any_schedule(&mut rng);
        let leaves = rng.range_usize(2, 10);
        let seed = rng.below_u64(1000);
        let m = treelstm::tree_lstm(5, LeafInit::Zero);
        let f = random_forest(2, leaves, seed);
        let want = reference::tree_lstm(&f, &m.params, 5, LeafInit::Zero);
        let (out, lin) = m.infer(&f, &schedule).expect("supported schedule");
        for n in f.iter() {
            let id = lin.from_structure_id(n) as usize;
            for i in 0..5 {
                assert!(
                    (out[[id, i]] - want.h[n.index()][i]).abs() < 1e-4,
                    "under {schedule:?}"
                );
            }
        }
    }
}

#[test]
fn tree_gru_unroll_and_refactor_invariant() {
    let mut rng = Rng::new(0x43);
    for _ in 0..16 {
        let leaves = rng.range_usize(2, 10);
        let seed = rng.below_u64(1000);
        let depth = rng.range_usize(2, 4);
        let refactor = rng.bool();
        let m = treegru::tree_gru(5, LeafInit::Embedding);
        let f = random_forest(2, leaves, seed);
        let want = reference::tree_gru(&f, &m.params, 5, LeafInit::Embedding, false);
        let schedule = if refactor {
            m.refactored_schedule()
        } else {
            RaSchedule {
                unroll: Some(depth),
                ..RaSchedule::default()
            }
        };
        let (out, lin) = m.infer(&f, &schedule).expect("supported schedule");
        for n in f.iter() {
            let id = lin.from_structure_id(n) as usize;
            for i in 0..5 {
                assert!((out[[id, i]] - want[n.index()][i]).abs() < 1e-4);
            }
        }
    }
}

#[test]
fn device_latency_is_monotone_in_counters() {
    use cortex::backend::profile::Profile;
    let mut rng = Rng::new(0x44);
    let gpu = DeviceSpec::v100();
    for _ in 0..32 {
        let launches = rng.below_u64(1000);
        let extra = rng.range_usize(1, 500) as u64;
        let barriers = rng.below_u64(1000);
        let base = Profile {
            launches,
            barriers_global: barriers,
            ..Profile::default()
        };
        let more = Profile {
            launches: launches + extra,
            barriers_global: barriers,
            ..Profile::default()
        };
        assert!(gpu.latency(&more).total_s > gpu.latency(&base).total_s);
    }
}

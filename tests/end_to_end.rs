//! End-to-end integration tests: every model × every meaningful schedule
//! combination, executed through the full pipeline (RA → lowering → ILIR
//! → linearization → execution) and checked against the pure-Rust
//! reference implementations.

use cortex::core::ra::{BarrierMode, FusionMode, LeafCheckMode, RaSchedule};
use cortex::models::{
    dagrnn, mvrnn, reference, seq, treefc, treegru, treelstm, treernn, verify, LeafInit, Model,
};
use cortex::prelude::*;

fn schedules() -> Vec<(&'static str, RaSchedule)> {
    vec![
        ("default", RaSchedule::default()),
        ("unoptimized", RaSchedule::unoptimized()),
        (
            "fused-unspecialized",
            RaSchedule {
                specialize: false,
                ..RaSchedule::default()
            },
        ),
        (
            "unbatched",
            RaSchedule {
                dynamic_batch: false,
                ..RaSchedule::default()
            },
        ),
        (
            "peeled",
            RaSchedule {
                peel: Some(4),
                ..RaSchedule::default()
            },
        ),
        (
            "conservative-barriers",
            RaSchedule {
                barrier: BarrierMode::Conservative,
                ..RaSchedule::default()
            },
        ),
        (
            "leaf-check-by-load",
            RaSchedule {
                specialize: false,
                leaf_check: LeafCheckMode::Load,
                ..RaSchedule::default()
            },
        ),
        (
            "no-dense-indexing",
            RaSchedule {
                dense_intermediates: false,
                ..RaSchedule::default()
            },
        ),
        (
            "unfused-unspecialized",
            RaSchedule {
                fusion: FusionMode::None,
                specialize: false,
                persist: false,
                dense_intermediates: false,
                ..RaSchedule::default()
            },
        ),
    ]
}

fn sst_forest(n: usize, seed: u64) -> RecStructure {
    let corpus = cortex::ds::datasets::sentiment_treebank(n, seed);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    RecStructure::merge(&refs)
}

fn check_all_schedules(model: &Model, structure: &RecStructure, want: &[Vec<f32>]) {
    for (name, schedule) in schedules() {
        let (out, lin) = model
            .infer(structure, &schedule)
            .unwrap_or_else(|e| panic!("{} under {name}: {e}", model.name));
        verify::compare_output(&out, &lin, structure, want, 1e-3)
            .unwrap_or_else(|msg| panic!("{} under {name}: {msg}", model.name));
    }
}

#[test]
fn tree_fc_all_schedules() {
    let m = treefc::tree_fc(16, LeafInit::Embedding);
    let t =
        cortex::ds::datasets::batch_of(|s| cortex::ds::datasets::perfect_binary_tree(4, s), 3, 1);
    let want = reference::tree_fc(&t, &m.params, 16, LeafInit::Embedding);
    check_all_schedules(&m, &t, &want);
}

#[test]
fn tree_rnn_all_schedules() {
    let m = treernn::tree_rnn(12, LeafInit::Embedding);
    let t = sst_forest(3, 2);
    let want = reference::tree_rnn(&t, &m.params, 12, LeafInit::Embedding);
    check_all_schedules(&m, &t, &want);
}

#[test]
fn tree_gru_all_schedules() {
    let m = treegru::tree_gru(12, LeafInit::Embedding);
    let t = sst_forest(3, 3);
    let want = reference::tree_gru(&t, &m.params, 12, LeafInit::Embedding, false);
    check_all_schedules(&m, &t, &want);
}

#[test]
fn tree_lstm_all_schedules() {
    let m = treelstm::tree_lstm(12, LeafInit::Embedding);
    let t = sst_forest(3, 4);
    let want = reference::tree_lstm(&t, &m.params, 12, LeafInit::Embedding);
    check_all_schedules(&m, &t, &want.h);
}

#[test]
fn mv_rnn_all_schedules() {
    let m = mvrnn::mv_rnn(8);
    let t = sst_forest(2, 5);
    let want = reference::mv_rnn(&t, &m.params, 8);
    check_all_schedules(&m, &t, &want.a);
}

#[test]
fn dag_rnn_all_schedules() {
    let m = dagrnn::dag_rnn(12);
    let d = cortex::ds::datasets::batch_of(|s| cortex::ds::datasets::grid_dag(5, 6, s), 3, 6);
    let want = reference::dag_rnn(&d, &m.params, 12);
    check_all_schedules(&m, &d, &want);
}

#[test]
fn sequences_all_schedules() {
    let m = seq::seq_lstm(12);
    let s = cortex::ds::datasets::batch_of(|x| cortex::ds::datasets::sequence(15, x), 4, 7);
    let want = reference::tree_lstm(&s, &m.params, 12, LeafInit::Embedding);
    check_all_schedules(&m, &s, &want.h);
}

#[test]
fn unroll_and_refactor_schedules() {
    // Tree-only schedules, checked separately (they reject DAGs).
    let m = treernn::tree_rnn(8, LeafInit::Embedding);
    let t = sst_forest(4, 8);
    let want = reference::tree_rnn(&t, &m.params, 8, LeafInit::Embedding);
    for block_local in [false, true] {
        let s = RaSchedule {
            unroll: Some(2),
            unroll_block_local: block_local,
            ..RaSchedule::default()
        };
        let (out, lin) = m.infer(&t, &s).unwrap();
        cortex::models::verify::compare_output(&out, &lin, &t, &want, 1e-4).unwrap();
    }
    let gm = treegru::simple_tree_gru(8, LeafInit::Embedding);
    let want = reference::tree_gru(&t, &gm.params, 8, LeafInit::Embedding, true);
    let (out, lin) = gm.infer(&t, &gm.refactored_schedule()).unwrap();
    cortex::models::verify::compare_output(&out, &lin, &t, &want, 1e-4).unwrap();
}

#[test]
fn rational_nonlinearities_stay_close_to_exact() {
    // Appendix A.5: the rational tanh/sigmoid approximations change
    // results by less than the documented bound end to end.
    let m = treelstm::tree_lstm(12, LeafInit::Embedding);
    let t = sst_forest(2, 9);
    let exact = RaSchedule::default();
    let rational = RaSchedule {
        nonlinearity: cortex::tensor::approx::NonlinearityMode::Rational,
        ..RaSchedule::default()
    };
    let (a, lin) = m.infer(&t, &exact).unwrap();
    let (b, _) = m.infer(&t, &rational).unwrap();
    let mut max_err = 0.0f32;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        max_err = max_err.max((x - y).abs());
    }
    let _ = lin;
    assert!(max_err > 0.0, "modes must actually differ");
    assert!(max_err < 5e-3, "approximation drift {max_err} too large");
}

#[test]
fn bounds_inference_validates_all_lowered_models() {
    use cortex::core::bounds::{check_program, ModelSizes};
    for model in [
        treefc::tree_fc(8, LeafInit::Embedding),
        treegru::tree_gru(8, LeafInit::Zero),
        treelstm::tree_lstm(8, LeafInit::Embedding),
        dagrnn::dag_rnn(8),
        mvrnn::mv_rnn(6),
    ] {
        let p = model.lower(&RaSchedule::default()).unwrap();
        let report = check_program(&p, ModelSizes::default())
            .unwrap_or_else(|e| panic!("{}: {e}", model.name));
        assert!(report.proven_in_bounds > 0, "{}", model.name);
    }
}

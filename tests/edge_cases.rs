//! Degenerate and adversarial inputs: the compiler and runtime must handle
//! structures at the boundaries of the recursion (single leaves, chains,
//! zero internal batches) and expose the documented resource trade-offs.

use cortex::core::ra::RaSchedule;
use cortex::models::{reference, treegru, treelstm, treernn, verify, LeafInit};
use cortex::prelude::*;

#[test]
fn single_leaf_tree_has_no_internal_batches() {
    // A one-token sentence: the recursion body never runs.
    let mut b = StructureBuilder::new(StructureKind::Tree);
    b.leaf(42);
    let t = b.finish().unwrap();
    let lin = Linearizer::new().linearize(&t).unwrap();
    assert_eq!(lin.num_internal(), 0);
    assert!(lin.internal_batches().is_empty());

    let m = treernn::tree_rnn(8, LeafInit::Embedding);
    let want = reference::tree_rnn(&t, &m.params, 8, LeafInit::Embedding);
    verify::assert_matches(&m, &t, &RaSchedule::default(), &want, 1e-6);
}

#[test]
fn forest_of_single_leaves() {
    // Batch of one-token sentences: leaf batch only, 10 roots.
    let mut b = StructureBuilder::new(StructureKind::Tree);
    for w in 0..10 {
        b.leaf(w);
    }
    let f = b.finish().unwrap();
    assert_eq!(f.roots().len(), 10);
    let m = treelstm::tree_lstm(6, LeafInit::Embedding);
    let want = reference::tree_lstm(&f, &m.params, 6, LeafInit::Embedding);
    verify::assert_matches(&m, &f, &RaSchedule::default(), &want.h, 1e-6);
}

#[test]
fn very_deep_sequences_do_not_overflow() {
    // 2000 steps: iterative linearization and execution must survive
    // (recursive implementations would blow the stack).
    let s = cortex::ds::datasets::sequence(2000, 0);
    let m = cortex::models::seq::seq_gru(4);
    let want = reference::tree_gru(&s, &m.params, 4, LeafInit::Embedding, false);
    verify::assert_matches(&m, &s, &RaSchedule::default(), &want, 1e-3);
}

#[test]
fn maximally_skewed_tree() {
    // A left-spine "tree" — every wavefront has exactly one internal node,
    // the worst case for dynamic batching.
    let mut b = StructureBuilder::new(StructureKind::Tree);
    let mut acc = b.leaf(0);
    for w in 1..40 {
        let leaf = b.leaf(w);
        acc = b.internal(&[acc, leaf]).unwrap();
    }
    let t = b.finish().unwrap();
    let lin = Linearizer::new().linearize(&t).unwrap();
    assert!(lin.internal_batches().iter().all(|b| b.len() == 1));

    let m = treernn::tree_rnn(6, LeafInit::Embedding);
    let want = reference::tree_rnn(&t, &m.params, 6, LeafInit::Embedding);
    verify::assert_matches(&m, &t, &RaSchedule::default(), &want, 1e-4);
}

#[test]
fn dense_indexing_trades_global_for_scratch_traffic() {
    // Fig. 5's point, measured: with dense intermediate indexing the gate
    // tensors live in scratchpad (small, iteration-space sized); without
    // it they are node-indexed global tensors.
    let m = treegru::tree_gru(16, LeafInit::Zero);
    let corpus = cortex::ds::datasets::sentiment_treebank(6, 3);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    let f = RecStructure::merge(&refs);
    let gpu = DeviceSpec::v100();

    let (dense, _) = m.run(&f, &RaSchedule::default(), &gpu).unwrap();
    let (sparse, _) = m
        .run(
            &f,
            &RaSchedule {
                dense_intermediates: false,
                ..RaSchedule::default()
            },
            &gpu,
        )
        .unwrap();
    assert!(dense.profile.scratch_allocated_bytes > 0);
    assert_eq!(sparse.profile.scratch_allocated_bytes, 0);
    assert!(
        dense.profile.scratch_allocated_bytes
            < sparse.profile.allocated_bytes - dense.profile.allocated_bytes
                + dense.profile.scratch_allocated_bytes,
        "scratch must be smaller than the node-indexed globals it replaces"
    );
    assert!(sparse.profile.global_bytes_read > dense.profile.global_bytes_read);
}

#[test]
fn zero_leaf_treelstm_skips_leaf_kernel_entirely() {
    // §4.3 constant propagation at full pipeline scope: with zero leaf
    // states the program has no leaf kernel and fewer launches.
    let zero = treelstm::tree_lstm(8, LeafInit::Zero);
    let emb = treelstm::tree_lstm(8, LeafInit::Embedding);
    let corpus = cortex::ds::datasets::sentiment_treebank(4, 4);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    let f = RecStructure::merge(&refs);
    let gpu = DeviceSpec::v100();
    let (z, _) = zero.run(&f, &RaSchedule::default(), &gpu).unwrap();
    let (e, _) = emb.run(&f, &RaSchedule::default(), &gpu).unwrap();
    assert!(z.profile.launches < e.profile.launches);
}

#[test]
fn sequences_of_length_one_work() {
    let s = cortex::ds::datasets::sequence(1, 5);
    let m = cortex::models::seq::seq_gru(4);
    let want = reference::tree_gru(&s, &m.params, 4, LeafInit::Embedding, false);
    verify::assert_matches(&m, &s, &RaSchedule::default(), &want, 1e-6);
}
